"""TLB-cached prime modulo computation (Section 3.1.1, last paragraph).

A physical address is ``page_number · page_size + page_offset``.  The
page-number contribution to the L2 index, ``(page_number ·
blocks_per_page) mod n_set``, is computed once on a TLB miss and stored
in the TLB entry.  On an L1 miss the cached value is added to the
block-granular page-offset bits and one narrow subtract&select yields
the final index — "much less than one clock cycle" of work on the
L1-miss path.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.hardware.subtract_select import SubtractSelectUnit
from repro.mathutil import largest_prime_below, log2_exact


@dataclass
class TlbStats:
    """Hit/miss counters for the modeled TLB."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class TlbCachedPrimeModulo:
    """Prime-modulo index unit whose page-level part is cached in a TLB.

    Args:
        n_sets_physical: power-of-two physical L2 set count.
        page_bytes: virtual-memory page size.
        block_bytes: L2 line size.
        tlb_entries: number of (fully associative, LRU) TLB entries.
        n_sets: prime set count; defaults per Table 1.
    """

    def __init__(
        self,
        n_sets_physical: int,
        page_bytes: int = 4096,
        block_bytes: int = 64,
        tlb_entries: int = 64,
        n_sets: int = None,
    ):
        if page_bytes < block_bytes:
            raise ValueError("page must be at least one cache block")
        if tlb_entries < 1:
            raise ValueError("TLB needs at least one entry")
        self.n_sets_physical = n_sets_physical
        self.index_bits = log2_exact(n_sets_physical)
        self.offset_bits = log2_exact(block_bytes)
        self.page_bits = log2_exact(page_bytes)
        self.n_sets = n_sets if n_sets is not None else largest_prime_below(n_sets_physical)
        self.blocks_per_page = page_bytes // block_bytes
        self.tlb_entries = tlb_entries
        self._tlb: "OrderedDict[int, int]" = OrderedDict()
        self.stats = TlbStats()
        # Cached page component < n_sets; offset component < blocks_per_page.
        self.selector = SubtractSelectUnit(
            self.n_sets, max_input=self.n_sets - 1 + self.blocks_per_page - 1
        )

    def _page_component(self, page_number: int) -> int:
        """Fetch (or compute and cache) the page-number modulo."""
        cached = self._tlb.get(page_number)
        if cached is not None:
            self.stats.hits += 1
            self._tlb.move_to_end(page_number)
            return cached
        self.stats.misses += 1
        # Off the critical path: performed while servicing the TLB miss.
        component = (page_number * self.blocks_per_page) % self.n_sets
        if len(self._tlb) >= self.tlb_entries:
            self._tlb.popitem(last=False)
            self.stats.evictions += 1
        self._tlb[page_number] = component
        return component

    def index_for_address(self, byte_address: int) -> int:
        """L2 set index for a byte address, via the TLB-cached path."""
        if byte_address < 0:
            raise ValueError("address must be non-negative")
        page_number = byte_address >> self.page_bits
        offset_blocks = (byte_address >> self.offset_bits) & (self.blocks_per_page - 1)
        return self.selector.reduce(self._page_component(page_number) + offset_blocks)

    def index_for_block(self, block_address: int) -> int:
        """L2 set index for a block address (convenience wrapper)."""
        return self.index_for_address(block_address << self.offset_bits)

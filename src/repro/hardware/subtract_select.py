"""The subtract&select unit of Figure 2.

Computes ``x mod n_set`` for a *small* ``x`` by feeding ``x``,
``x - n_set``, ``x - 2·n_set``, … into a selector that picks the
rightmost non-negative input.  This is the terminal stage of both the
iterative-linear and polynomial prime-modulo implementations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class SubtractSelectUnit:
    """Hardware model of the subtract&select stage.

    Args:
        modulus: the prime ``n_set`` being reduced by.
        max_input: largest value the surrounding datapath can present;
            fixes the number of subtractors/selector inputs in hardware.
    """

    modulus: int
    max_input: int
    uses: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.modulus < 2:
            raise ValueError(f"modulus must be >= 2, got {self.modulus}")
        if self.max_input < 0:
            raise ValueError("max_input must be non-negative")

    @property
    def n_inputs(self) -> int:
        """Selector inputs required: x, x-n, ... down to the largest
        multiple of the modulus not exceeding ``max_input``."""
        return self.max_input // self.modulus + 1

    @property
    def selector_shift_budget(self) -> int:
        """The ``t`` of Theorem 1: a selector with 2^t + 2 inputs lets each
        iterative-linear step absorb ``t`` extra address bits."""
        if self.n_inputs < 3:
            return 0
        return int(math.floor(math.log2(self.n_inputs - 2)))

    def reduce(self, value: int) -> int:
        """Select the rightmost non-negative among value - k·modulus."""
        if not 0 <= value <= self.max_input:
            raise ValueError(
                f"value {value} outside datapath range [0, {self.max_input}]"
            )
        self.uses += 1
        # Hardware computes all candidates in parallel; the arithmetic
        # result is exactly the modulo because the candidates cover the
        # full input range.
        return value - (value // self.modulus) * self.modulus

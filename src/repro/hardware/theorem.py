"""Theorem 1: iteration bound of the iterative linear method.

For a B-bit address, L-byte lines, prime ``n_set`` and physical set
count ``n_set_phys`` (Δ = n_set_phys − n_set), the number of Equation-3
applications needed before a subtract&select with ``2^t + 2`` inputs
can finish is::

    ceil( (B − log2 L − log2 n_set) / (t + log2 n_set_phys − log2 Δ) )

The paper's examples: a 32-bit machine with 2048 physical sets and 64 B
lines needs two iterations; a 64-bit machine needs six with a 3-input
selector and three with a 258-input selector.
"""

from __future__ import annotations

import math

from repro.mathutil import largest_prime_below, log2_exact


def selector_t(selector_inputs: int) -> int:
    """The ``t`` such that the selector has (at least) 2^t + 2 inputs."""
    if selector_inputs < 2:
        raise ValueError("selector needs at least 2 inputs")
    if selector_inputs < 3:
        return 0
    return int(math.floor(math.log2(selector_inputs - 2)))


def iterations_required(
    address_bits: int,
    block_bytes: int,
    n_sets_physical: int,
    n_sets: int = None,
    selector_inputs: int = 2,
) -> int:
    """Theorem 1's iteration count for the iterative linear method."""
    offset_bits = log2_exact(block_bytes)
    if n_sets is None:
        n_sets = largest_prime_below(n_sets_physical)
    delta = n_sets_physical - n_sets
    if delta <= 0:
        raise ValueError("n_sets must be below the physical set count")
    # The paper evaluates the logs at integer bit widths: log2(n_set) is
    # the index width (11 for 2039) and log2(Δ) is floor(log2 Δ) (3 for
    # 9) — this reproduces all three worked examples in Section 3.1.
    numerator = address_bits - offset_bits - n_sets.bit_length()
    if numerator <= 0:
        return 0
    denominator = (
        selector_t(selector_inputs)
        + log2_exact(n_sets_physical)
        - (delta.bit_length() - 1)
    )
    return math.ceil(numerator / denominator)

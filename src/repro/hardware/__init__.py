"""Bit-accurate models of the paper's fast prime-modulo hardware.

Everything here computes cache indices using only the operations the
paper's hardware uses — shifts (wired permutations), narrow adds, and
subtract&select stages — and is tested equivalent to true ``mod`` on
every input:

* :class:`SubtractSelectUnit` — Figure 2.
* :class:`IterativeLinearUnit` — Equation 3 / Theorem 1.
* :class:`PolynomialModUnit` — Equation 4 / Figures 3-4.
* :class:`TlbCachedPrimeModulo` — the TLB-cached variant of §3.1.1.
* :func:`iterations_required` — Theorem 1's bound.
* :mod:`repro.hardware.cost` — adder/latency cost estimates.
"""

from repro.hardware.cost import (
    HardwareCost,
    prime_displacement_cost,
    prime_modulo_iterative_cost,
    prime_modulo_polynomial_cost,
    traditional_cost,
    xor_cost,
)
from repro.hardware.iterative_linear import IterativeLinearUnit, StepCounts
from repro.hardware.polynomial import PolynomialModUnit, PolynomialStats
from repro.hardware.subtract_select import SubtractSelectUnit
from repro.hardware.theorem import iterations_required, selector_t
from repro.hardware.tlb import TlbCachedPrimeModulo, TlbStats

__all__ = [
    "HardwareCost",
    "IterativeLinearUnit",
    "PolynomialModUnit",
    "PolynomialStats",
    "StepCounts",
    "SubtractSelectUnit",
    "TlbCachedPrimeModulo",
    "TlbStats",
    "iterations_required",
    "prime_displacement_cost",
    "prime_modulo_iterative_cost",
    "prime_modulo_polynomial_cost",
    "selector_t",
    "traditional_cost",
    "xor_cost",
]

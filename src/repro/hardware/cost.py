"""Hardware-cost estimates for the indexing schemes (Section 3 claims).

Counts the narrow adders, shifts (free wired permutations), selector
inputs and an adder-stage latency estimate for each scheme, so the
ablation bench can reproduce the paper's qualitative claims: pDisp cost
is independent of machine width, the polynomial method is one step, and
the iterative-linear method trades latency for hardware.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.theorem import iterations_required
from repro.mathutil import largest_prime_below, log2_exact, ones_positions


@dataclass(frozen=True)
class HardwareCost:
    """Cost summary for one indexing scheme on one machine geometry.

    Attributes:
        scheme: indexing scheme name.
        adders: number of (index-width) add operations on the path.
        selector_inputs: fan-in of the subtract&select stage (0 = none).
        adder_stages: sequential adder stages (latency proxy; a
            carry-save tree of n addends needs ~ceil(log2 n) + 1 stages).
        width_dependent: whether cost grows with the machine address width.
    """

    scheme: str
    adders: int
    selector_inputs: int
    adder_stages: int
    width_dependent: bool


def _csa_stages(n_addends: int) -> int:
    """Adder stages to sum ``n_addends`` values (carry-save tree depth)."""
    if n_addends <= 1:
        return 0
    return math.ceil(math.log2(n_addends)) + 1


def traditional_cost(n_sets_physical: int) -> HardwareCost:
    """Bit selection only — zero arithmetic."""
    return HardwareCost("Base", adders=0, selector_inputs=0, adder_stages=0,
                        width_dependent=False)


def xor_cost(n_sets_physical: int) -> HardwareCost:
    """One row of XOR gates; counted as a single stage, no adders."""
    return HardwareCost("XOR", adders=0, selector_inputs=0, adder_stages=1,
                        width_dependent=False)


def prime_displacement_cost(
    n_sets_physical: int, displacement: int = 9
) -> HardwareCost:
    """Narrow truncated multiply-add: one addend per set bit in p, plus x."""
    n_addends = len(ones_positions(displacement)) + 1
    return HardwareCost(
        "pDisp",
        adders=n_addends - 1,
        selector_inputs=0,  # truncation, no modulo correction needed
        adder_stages=_csa_stages(n_addends),
        width_dependent=False,
    )


def prime_modulo_polynomial_cost(
    n_sets_physical: int,
    address_bits: int = 32,
    block_bytes: int = 64,
    n_sets: int = None,
) -> HardwareCost:
    """Polynomial method: one addend per tag chunk per Δ^j set bit, plus
    folded carries, then a 2-input subtract&select (Figure 4)."""
    index_bits = log2_exact(n_sets_physical)
    offset_bits = log2_exact(block_bytes)
    if n_sets is None:
        n_sets = largest_prime_below(n_sets_physical)
    delta = n_sets_physical - n_sets
    block_bits = address_bits - offset_bits
    n_chunks = max(0, math.ceil((block_bits - index_bits) / index_bits))
    n_addends = 1  # x itself
    power = 1
    for _ in range(n_chunks):
        power = (power * delta) % n_sets
        n_addends += max(1, len(ones_positions(power)))
    # One extra addend models the folded high-bit re-injection (Fig 3b).
    n_addends += 1
    return HardwareCost(
        "pMod/polynomial",
        adders=n_addends - 1,
        selector_inputs=2,
        adder_stages=_csa_stages(n_addends) + 1,  # +1 for the selector
        width_dependent=True,
    )


def prime_modulo_iterative_cost(
    n_sets_physical: int,
    address_bits: int = 32,
    block_bytes: int = 64,
    n_sets: int = None,
    selector_inputs: int = 3,
) -> HardwareCost:
    """Iterative linear method: Δ shift-add per iteration, serialized."""
    if n_sets is None:
        n_sets = largest_prime_below(n_sets_physical)
    delta = n_sets_physical - n_sets
    iters = iterations_required(
        address_bits, block_bytes, n_sets_physical, n_sets, selector_inputs
    )
    adds_per_iter = len(ones_positions(delta))  # Δ·T as shift-adds, + x merge
    return HardwareCost(
        "pMod/iterative",
        adders=iters * (adds_per_iter + 1),
        selector_inputs=selector_inputs,
        adder_stages=iters * (_csa_stages(adds_per_iter + 1)) + 1,
        width_dependent=True,
    )

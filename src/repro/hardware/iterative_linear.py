"""The iterative linear method of Section 3.1 (Equation 3).

Rewrites ``a ≡ Δ·T + x (mod n_set)`` where ``T`` and ``x`` split the
address at the index-bit boundary and ``Δ = n_set_phys - n_set``.  Each
application shrinks the operand; the multiplication by the tiny ``Δ``
is realized as shifts and adds.  After enough iterations the residue is
small and a subtract&select finishes the job.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.subtract_select import SubtractSelectUnit
from repro.mathutil import largest_prime_below, log2_exact, ones_positions


@dataclass
class StepCounts:
    """Operation counts for one index computation (hardware activity)."""

    iterations: int = 0
    shifts: int = 0
    adds: int = 0


class IterativeLinearUnit:
    """Bit-accurate model of the iterative-linear prime-modulo hardware.

    Args:
        n_sets_physical: power-of-two physical set count.
        address_bits: machine address width (B in Theorem 1).
        block_bytes: cache line size (L in Theorem 1).
        n_sets: prime set count; defaults to the largest prime below
            ``n_sets_physical``.
        selector_inputs: subtract&select fan-in; larger selectors absorb
            more bits per iteration (Theorem 1's ``2^t + 2`` form).
    """

    def __init__(
        self,
        n_sets_physical: int,
        address_bits: int = 32,
        block_bytes: int = 64,
        n_sets: int = None,
        selector_inputs: int = 2,
    ):
        self.n_sets_physical = n_sets_physical
        self.index_bits = log2_exact(n_sets_physical)
        self.offset_bits = log2_exact(block_bytes)
        self.address_bits = address_bits
        self.n_sets = n_sets if n_sets is not None else largest_prime_below(n_sets_physical)
        self.delta = n_sets_physical - self.n_sets
        if self.delta <= 0:
            raise ValueError("n_sets must be below the physical set count")
        if selector_inputs < 2:
            raise ValueError("selector needs at least 2 inputs")
        self._delta_shifts = ones_positions(self.delta)
        # The selector can absorb values up to selector_inputs * n_sets - 1.
        self.selector = SubtractSelectUnit(
            self.n_sets, max_input=selector_inputs * self.n_sets - 1
        )
        self.last_counts = StepCounts()

    @property
    def block_address_bits(self) -> int:
        """Width of the block address the unit reduces."""
        return self.address_bits - self.offset_bits

    def _times_delta(self, value: int, counts: StepCounts) -> int:
        """Multiply by Δ using only its shift-and-add decomposition."""
        total = 0
        for shift in self._delta_shifts:
            counts.shifts += 1 if shift else 0
            counts.adds += 1
            total += value << shift
        return total

    def compute(self, block_address: int) -> int:
        """Index of ``block_address`` using only shift/add/select steps."""
        if block_address < 0 or block_address >= (1 << self.block_address_bits):
            raise ValueError(
                f"block address {block_address} exceeds "
                f"{self.block_address_bits}-bit datapath"
            )
        counts = StepCounts()
        mask = self.n_sets_physical - 1
        value = block_address
        while value > self.selector.max_input:
            tag = value >> self.index_bits
            low = value & mask
            value = self._times_delta(tag, counts) + low
            counts.adds += 1
            counts.iterations += 1
        self.last_counts = counts
        return self.selector.reduce(value)

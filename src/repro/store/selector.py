"""Key→shard routing built from the paper's indexing functions.

A :class:`ShardSelector` wraps any :class:`~repro.hashing.base.
IndexingFunction` and routes store keys to shards exactly the way the
paper routes block addresses to cache sets.  The selector duck-types
the analysis surface of an indexing function (``index`` /
``index_array`` / ``n_sets`` / ``n_sets_physical``), so every metric in
:mod:`repro.hashing.analysis` — balance, concentration, sequence
invariance — accepts a selector unchanged.

Schemes (:data:`STORE_SCHEMES`):

* ``traditional`` — low bits of the key (power-of-two modulo).
* ``xor`` — tag-xor-index pseudo-random routing.
* ``pmod`` — modulo the largest prime below the shard count
  (:func:`repro.mathutil.largest_prime_below`); the pMod adapter.
* ``pdisp`` / ``pdisp19`` / ``pdisp31`` / ``pdisp37`` — prime
  displacement with the paper's p = 9 / 19 / 31 / 37 constants.
* ``keyed`` / ``keyed_pdisp`` — secret-keyed Mersenne-prime hashing and
  keyed prime displacement (:mod:`repro.hashing.keyed`), the defense
  against the black-box hash-cracking adversary; rotate the secret
  with :meth:`ShardSelector.rekeyed`.

Non-integer keys (str / bytes) are first folded to a stable 64-bit
integer with blake2b, so structured integer key streams keep their
structure (the whole point of the analysis) while arbitrary object keys
still route deterministically.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Union

import numpy as np

from repro.hashing import (
    IndexingFunction,
    KeyedDisplacementIndexing,
    KeyedMersenneIndexing,
    PrimeDisplacementIndexing,
    PrimeModuloIndexing,
    TraditionalIndexing,
    XorIndexing,
)
from repro.mathutil import is_power_of_two, is_prime

#: Keys a store accepts.
StoreKey = Union[int, str, bytes]

_KEY_MASK = (1 << 64) - 1


def canonical_key(key: StoreKey) -> int:
    """Fold a store key to the 64-bit integer the selector hashes.

    Integers pass through (masked to 64 bits, so negative keys are
    well-defined); str/bytes are digested with blake2b, which is stable
    across processes — unlike the builtin ``hash``.
    """
    if isinstance(key, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("bool is not a valid store key")
    if isinstance(key, int):
        return key & _KEY_MASK
    if isinstance(key, str):
        key = key.encode()
    if isinstance(key, bytes):
        digest = hashlib.blake2b(key, digest_size=8).digest()
        return int.from_bytes(digest, "little")
    raise TypeError(f"unsupported store key type: {type(key).__name__}")


class ShardSelector:
    """Routes store keys to shards through one indexing function.

    Attributes:
        indexing: the wrapped :class:`IndexingFunction`.
        scheme: the registry key this selector was built from.
        n_shards: number of *usable* shards (= ``indexing.n_sets``;
            below the physical count for pMod).
    """

    def __init__(self, indexing: IndexingFunction, scheme: str = None):
        self.indexing = indexing
        self.scheme = scheme or indexing.name
        self.name = indexing.name

    # -- routing -------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return self.indexing.n_sets

    @property
    def n_shards_physical(self) -> int:
        return self.indexing.n_sets_physical

    def shard(self, key: StoreKey) -> int:
        """Shard id for one key."""
        return self.indexing.index(canonical_key(key))

    def shard_array(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized routing of an integer key batch (the hot path)."""
        return self.indexing.index_array(np.asarray(keys, dtype=np.uint64))

    # -- repro.hashing.analysis compatibility --------------------------

    @property
    def n_sets(self) -> int:
        return self.indexing.n_sets

    @property
    def n_sets_physical(self) -> int:
        return self.indexing.n_sets_physical

    def index(self, block_address: int) -> int:
        return self.indexing.index(block_address)

    def index_array(self, block_addresses: np.ndarray) -> np.ndarray:
        return self.indexing.index_array(block_addresses)

    # -- keyed schemes --------------------------------------------------

    @property
    def key(self):
        """The secret key, or ``None`` for unkeyed schemes."""
        return getattr(self.indexing, "key", None)

    def rekeyed(self, key: int) -> "ShardSelector":
        """A selector over the same geometry under a fresh secret.

        Raises :class:`ValueError` for unkeyed schemes — rotating a
        public hash would silently provide no defense.
        """
        rekey = getattr(self.indexing, "rekeyed", None)
        if rekey is None:
            raise ValueError(
                f"scheme {self.scheme!r} is not keyed; only keyed "
                f"schemes can rotate secrets")
        return ShardSelector(rekey(int(key)), scheme=self.scheme)

    def __repr__(self) -> str:
        return (f"ShardSelector(scheme={self.scheme!r}, "
                f"n_shards={self.n_shards}/{self.n_shards_physical})")


def _pdisp_factory(displacement: int) -> Callable[[int], IndexingFunction]:
    def build(n_shards_physical: int) -> IndexingFunction:
        return PrimeDisplacementIndexing(n_shards_physical,
                                         displacement=displacement)

    return build


#: scheme key -> IndexingFunction factory taking the physical shard count.
STORE_SCHEMES: Dict[str, Callable[[int], IndexingFunction]] = {
    "traditional": TraditionalIndexing,
    "xor": XorIndexing,
    "pmod": PrimeModuloIndexing,
    "pdisp": _pdisp_factory(9),
    "pdisp19": _pdisp_factory(19),
    "pdisp31": _pdisp_factory(31),
    "pdisp37": _pdisp_factory(37),
    "keyed": KeyedMersenneIndexing,
    "keyed_pdisp": KeyedDisplacementIndexing,
}


def make_selector(scheme: str, n_shards_physical: int) -> ShardSelector:
    """Build a selector by scheme key over a power-of-two shard count.

    ``pmod`` selects :func:`~repro.mathutil.largest_prime_below` the
    physical count as its usable shard count, exactly as the paper's L2
    does with its set count.
    """
    try:
        factory = STORE_SCHEMES[scheme]
    except KeyError:
        known = ", ".join(sorted(STORE_SCHEMES))
        raise KeyError(f"unknown store scheme {scheme!r}; known: {known}") from None
    return ShardSelector(factory(n_shards_physical), scheme=scheme)


def make_selector_exact(scheme: str, n_shards: int) -> ShardSelector:
    """Build a selector whose *usable* shard count is exactly ``n_shards``.

    This is the construction path for runtime resizes along the prime
    ladder: ``pmod`` accepts any prime count directly (61, 67, 127, ...)
    by pairing it with the smallest covering power-of-two physical count,
    so ``next_prime``/``prev_prime`` moves land on exactly the requested
    shard count.  Every other scheme — and ``pmod`` given a power of two,
    which keeps :func:`make_selector`'s classic largest-prime-below
    behavior — requires a power-of-two count, because their index math is
    bit-mask based.
    """
    if n_shards < 2:
        raise ValueError(f"need at least 2 shards, got {n_shards}")
    if scheme in ("pmod", "keyed") and not is_power_of_two(n_shards):
        if not is_prime(n_shards):
            raise ValueError(
                f"{scheme} shard count must be prime (or a power of two "
                f"for the power-of-two fallback), got {n_shards}"
            )
        physical = 1 << n_shards.bit_length()
        if scheme == "keyed":
            return ShardSelector(
                KeyedMersenneIndexing(physical, n_sets=n_shards),
                scheme="keyed")
        return ShardSelector(
            PrimeModuloIndexing(physical, n_sets=n_shards), scheme="pmod")
    if not is_power_of_two(n_shards):
        raise ValueError(
            f"scheme {scheme!r} needs a power-of-two shard count, "
            f"got {n_shards}"
        )
    return make_selector(scheme, n_shards)


def available_selectors() -> List[str]:
    """Registered store scheme keys, sorted."""
    return sorted(STORE_SCHEMES)

"""One store shard: a capacity-bounded set-associative object segment.

A shard stores real key→value entries the way a cache stores blocks:
``capacity // assoc`` sets of ``assoc`` ways each, with victims chosen
by any :mod:`repro.cache.replacement` policy (LRU by default, exactly
the paper's conventional-cache policy).  When a full set receives a new
key, the policy's victim entry is evicted — the store is a *cache*, not
a database, and surfaces the eviction to the caller.

Intra-shard set placement uses a splitmix64 finalizer over the key, not
the raw key bits: the shard-*selection* scheme is the object of study,
the internal layout is not, and reusing the raw bits would let the
router's structure alias into every shard's sets.

Each shard owns one :class:`threading.Lock`; all mutating entry points
take it, so a :class:`~repro.store.engine.ShardedStore` is safe under
the concurrent replay driver with no global lock.
"""

from __future__ import annotations

import threading
from typing import Any, List, Optional, Tuple

from repro.cache.replacement import ReplacementPolicy, make_replacement

_M64 = (1 << 64) - 1

#: Sentinel for "no entry" distinct from None-as-a-stored-value.
_EMPTY = object()


def mix64(key: int) -> int:
    """splitmix64 finalizer; decorrelates intra-shard placement from
    the shard-selection hash."""
    z = (key + 0x9E3779B97F4A7C15) & _M64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _M64
    return (z ^ (z >> 31)) & _M64


class ShardStats:
    """Counters for one shard."""

    __slots__ = ("gets", "puts", "deletes", "hits", "misses", "evictions")

    def __init__(self) -> None:
        self.gets = 0
        self.puts = 0
        self.deletes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def accesses(self) -> int:
        return self.gets + self.puts + self.deletes

    @property
    def hit_rate(self) -> float:
        return self.hits / self.gets if self.gets else 0.0

    def snapshot(self) -> dict:
        return {
            "gets": self.gets, "puts": self.puts, "deletes": self.deletes,
            "hits": self.hits, "misses": self.misses,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:
        return (f"ShardStats(accesses={self.accesses}, hits={self.hits}, "
                f"misses={self.misses}, evictions={self.evictions})")


class Shard:
    """Set-associative key→value segment bounded at ``capacity`` entries.

    Args:
        capacity: maximum live entries (rounded down to a multiple of
            ``assoc``, minimum one set).
        assoc: ways per set.
        replacement: :func:`repro.cache.replacement.make_replacement`
            policy key (lru / plru / nru / fifo / random).
        shard_id: this shard's index, for reports.
    """

    def __init__(self, capacity: int, assoc: int = 8,
                 replacement: str = "lru", shard_id: int = 0):
        if capacity < 1 or assoc < 1:
            raise ValueError("capacity and assoc must be positive")
        self.shard_id = shard_id
        self.assoc = min(assoc, capacity)
        self.n_sets = max(1, capacity // self.assoc)
        self.capacity = self.n_sets * self.assoc
        self._keys: List[List[Optional[int]]] = [
            [None] * self.assoc for _ in range(self.n_sets)
        ]
        self._values: List[List[Any]] = [
            [_EMPTY] * self.assoc for _ in range(self.n_sets)
        ]
        self.policy: ReplacementPolicy = make_replacement(
            replacement, self.n_sets, self.assoc
        )
        self.stats = ShardStats()
        self.occupancy = 0
        self.lock = threading.Lock()

    def _set_index(self, key: int) -> int:
        return mix64(key) % self.n_sets

    # -- operations (thread-safe: each takes the shard lock) -----------

    def get(self, key: int, default: Any = None) -> Any:
        """Value stored under ``key``, or ``default`` on miss."""
        set_index = self._set_index(key)
        with self.lock:
            self.stats.gets += 1
            ways = self._keys[set_index]
            for way, resident in enumerate(ways):
                if resident == key:
                    self.stats.hits += 1
                    self.policy.on_hit(set_index, way)
                    return self._values[set_index][way]
            self.stats.misses += 1
            return default

    def put(self, key: int, value: Any) -> Optional[int]:
        """Insert or update ``key``; returns the evicted key, if any."""
        set_index = self._set_index(key)
        with self.lock:
            self.stats.puts += 1
            ways = self._keys[set_index]
            values = self._values[set_index]
            for way, resident in enumerate(ways):
                if resident == key:  # update in place
                    self.stats.hits += 1
                    values[way] = value
                    self.policy.on_hit(set_index, way)
                    return None
            self.stats.misses += 1
            evicted = None
            for way, resident in enumerate(ways):
                if resident is None:
                    break
            else:
                way = self.policy.victim(set_index)
                evicted = ways[way]
                self.stats.evictions += 1
                self.occupancy -= 1
            ways[way] = key
            values[way] = value
            self.occupancy += 1
            self.policy.on_fill(set_index, way)
            return evicted

    def delete(self, key: int) -> bool:
        """Drop ``key`` if present; returns whether it was stored."""
        set_index = self._set_index(key)
        with self.lock:
            self.stats.deletes += 1
            ways = self._keys[set_index]
            for way, resident in enumerate(ways):
                if resident == key:
                    self.stats.hits += 1
                    ways[way] = None
                    self._values[set_index][way] = _EMPTY
                    self.occupancy -= 1
                    return True
            self.stats.misses += 1
            return False

    def contains(self, key: int) -> bool:
        """True when ``key`` is stored (no stats or recency change)."""
        set_index = self._set_index(key)
        with self.lock:
            return key in self._keys[set_index]

    def __len__(self) -> int:
        return self.occupancy

    def items(self) -> List[Tuple[int, Any]]:
        """All live (key, value) pairs (for tests and debugging)."""
        with self.lock:
            return [
                (k, v)
                for key_row, value_row in zip(self._keys, self._values)
                for k, v in zip(key_row, value_row)
                if k is not None
            ]

    def __repr__(self) -> str:
        return (f"Shard(id={self.shard_id}, capacity={self.capacity}, "
                f"assoc={self.assoc}, occupancy={self.occupancy})")

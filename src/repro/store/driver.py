"""Concurrent traffic replay against a :class:`ShardedStore`.

The driver splits a request stream across a thread pool (the store
serializes per shard, not globally, so disjoint-shard requests proceed
in parallel) and reports what a serving system reports: wall time,
throughput, hit rate, and the *tail* per-shard load — the metric a
badly balanced selector hurts first, because the hottest shard's lock
is the whole store's ceiling.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

from repro.store.engine import ShardedStore, StoreTelemetry
from repro.store.traffic import Request


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of one traffic replay."""

    n_requests: int
    workers: int
    elapsed_s: float
    throughput_rps: float
    telemetry: StoreTelemetry

    def as_dict(self) -> Dict[str, Any]:
        return {
            "n_requests": self.n_requests,
            "workers": self.workers,
            "elapsed_s": self.elapsed_s,
            "throughput_rps": self.throughput_rps,
            "telemetry": self.telemetry.as_dict(),
        }


def _serve(store: ShardedStore, requests: Sequence[Request]) -> None:
    get, put, delete = store.get, store.put, store.delete
    for request in requests:
        if request.op == "get":
            get(request.key)
        elif request.op == "put":
            put(request.key, request.value)
        elif request.op == "delete":
            delete(request.key)
        else:
            raise ValueError(f"unknown request op {request.op!r}")


def replay(store: ShardedStore, requests: Sequence[Request],
           workers: int = 1) -> ReplayReport:
    """Serve ``requests`` through ``store`` and snapshot the outcome.

    ``workers <= 1`` replays in-process (deterministic order — what the
    experiments use); larger values split the stream into ``workers``
    contiguous chunks served concurrently.  Shard routing, and hence
    balance, is identical either way; only interleaving (and therefore
    concentration and eviction order) can differ under concurrency.
    """
    requests = list(requests)
    start = time.perf_counter()
    if workers <= 1 or len(requests) < 2:
        _serve(store, requests)
    else:
        chunk = -(-len(requests) // workers)  # ceil division
        parts = [requests[i:i + chunk] for i in range(0, len(requests), chunk)]
        with ThreadPoolExecutor(max_workers=len(parts)) as pool:
            for future in [pool.submit(_serve, store, part) for part in parts]:
                future.result()
    elapsed = time.perf_counter() - start
    return ReplayReport(
        n_requests=len(requests),
        workers=max(1, workers),
        elapsed_s=elapsed,
        throughput_rps=len(requests) / elapsed if elapsed > 0 else 0.0,
        telemetry=store.telemetry(),
    )

"""Concurrent traffic replay against a :class:`ShardedStore`.

The driver splits a request stream across a thread pool (the store
serializes per shard, not globally, so disjoint-shard requests proceed
in parallel) and reports what a serving system reports: wall time,
throughput, hit rate, and the *tail* per-shard load — the metric a
badly balanced selector hurts first, because the hottest shard's lock
is the whole store's ceiling.

Each worker chunk's wall time is recorded individually
(``chunk_wall_s``), so a straggler — one chunk whose keys collapse
onto a hot shard and serialize behind its lock — is attributable
instead of averaged away; ``chunk_skew`` (slowest / mean) is the
one-number summary the store experiment table shows.  With
observability enabled the chunk times also land on the
``store.replay.chunk_s`` registry histogram.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.obs import get_journal, get_registry, trace_span
from repro.store.engine import ShardedStore, StoreTelemetry
from repro.store.traffic import Request


class ReplayError(RuntimeError):
    """One replay chunk failed; carries the failure's full context.

    Serial and thread-pool replay raise identically: the *first*
    failing chunk (by chunk index, i.e. stream order) wins, wrapped
    with the chunk index, the absolute request index in the original
    stream, the request's op/key and — when the key still routes — the
    shard it was headed for.  The original exception rides along as
    ``__cause__``.
    """

    def __init__(self, message: str, *, chunk_index: int, request_index: int,
                 op: str, key, shard: Optional[int] = None):
        super().__init__(message)
        self.chunk_index = chunk_index
        self.request_index = request_index
        self.op = op
        self.key = key
        self.shard = shard


def chunk_skew(chunk_wall_s: Sequence[float]) -> float:
    """Slowest chunk over mean chunk time (1.0 = perfectly even).

    NaN-free: an empty or degenerate list reports 1.0, the no-skew
    value, so tables and JSON stay clean.
    """
    times = [t for t in chunk_wall_s if t > 0]
    if not times:
        return 1.0
    return max(times) * len(times) / sum(times)


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of one traffic replay."""

    n_requests: int
    workers: int
    elapsed_s: float
    throughput_rps: float
    telemetry: StoreTelemetry
    chunk_wall_s: List[float] = field(default_factory=list)

    @property
    def chunk_skew(self) -> float:
        return chunk_skew(self.chunk_wall_s)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "n_requests": self.n_requests,
            "workers": self.workers,
            "elapsed_s": self.elapsed_s,
            "throughput_rps": self.throughput_rps,
            "chunk_wall_s": list(self.chunk_wall_s),
            "chunk_skew": self.chunk_skew,
            "telemetry": self.telemetry.as_dict(),
        }


def _serve(store: ShardedStore, requests: Sequence[Request],
           chunk_index: int = 0, offset: int = 0) -> float:
    """Serve one chunk; returns its wall time in seconds.

    Any per-request failure is re-raised as :class:`ReplayError` with
    the chunk index and the request's absolute stream index, so a
    failure inside a thread-pool worker is attributable instead of
    surfacing as a bare traceback from an anonymous chunk.
    """
    start = time.perf_counter()
    get, put, delete = store.get, store.put, store.delete
    for i, request in enumerate(requests):
        try:
            if request.op == "get":
                get(request.key)
            elif request.op == "put":
                put(request.key, request.value)
            elif request.op == "delete":
                delete(request.key)
            else:
                raise ValueError(f"unknown request op {request.op!r}")
        except Exception as exc:
            try:
                shard: Optional[int] = store.shard_for(request.key)
            except Exception:
                shard = None  # the key itself may be what's broken
            where = f"shard {shard}" if shard is not None else "unroutable"
            get_journal().emit("store.replay.error", chunk=chunk_index,
                               request=offset + i, op=request.op,
                               shard=shard, error=f"{type(exc).__name__}: "
                                                  f"{exc}")
            raise ReplayError(
                f"replay chunk {chunk_index} failed at request "
                f"{offset + i} ({request.op!r} key={request.key!r}, "
                f"{where}): {exc}",
                chunk_index=chunk_index, request_index=offset + i,
                op=request.op, key=request.key, shard=shard) from exc
    return time.perf_counter() - start


def replay(store: ShardedStore, requests: Sequence[Request],
           workers: int = 1) -> ReplayReport:
    """Serve ``requests`` through ``store`` and snapshot the outcome.

    ``workers <= 1`` replays in-process (deterministic order — what the
    experiments use); larger values split the stream into ``workers``
    contiguous chunks served concurrently.  Shard routing, and hence
    balance, is identical either way; only interleaving (and therefore
    concentration and eviction order) can differ under concurrency.
    """
    requests = list(requests)
    start = time.perf_counter()
    with trace_span("replay", scheme=store.scheme, requests=len(requests),
                    workers=max(1, workers)):
        if workers <= 1 or len(requests) < 2:
            chunk_wall_s = [_serve(store, requests)]
        else:
            chunk = -(-len(requests) // workers)  # ceil division
            parts = [(index, offset, requests[offset:offset + chunk])
                     for index, offset
                     in enumerate(range(0, len(requests), chunk))]
            with ThreadPoolExecutor(max_workers=len(parts)) as pool:
                futures = [pool.submit(_serve, store, part, index, offset)
                           for index, offset, part in parts]
                # Drain every future before raising: a bare
                # `future.result()` loop would leave later chunks'
                # exceptions unobserved (and which chunk raised would
                # depend on thread scheduling).  Collect all outcomes,
                # then surface the first failure in stream order.
                outcomes = []
                for future in futures:
                    try:
                        outcomes.append((future.result(), None))
                    except Exception as exc:  # noqa: BLE001
                        outcomes.append((None, exc))
                errors = [exc for _, exc in outcomes if exc is not None]
                if errors:
                    raise errors[0]
                chunk_wall_s = [wall for wall, _ in outcomes]
    elapsed = time.perf_counter() - start
    registry = get_registry()
    if registry.enabled:
        hist = registry.histogram("store.replay.chunk_s",
                                  scheme=store.scheme)
        for wall in chunk_wall_s:
            hist.observe(wall)
    return ReplayReport(
        n_requests=len(requests),
        workers=max(1, workers),
        elapsed_s=elapsed,
        throughput_rps=len(requests) / elapsed if elapsed > 0 else 0.0,
        telemetry=store.telemetry(),
        chunk_wall_s=chunk_wall_s,
    )

"""Epoch-versioned routing tables and the prime shard-count ladder.

A :class:`RoutingTable` is one *immutable* generation of the key→shard
mapping: ``(scheme, n_shards, epoch_id)`` plus the set of quarantined
shards routed around.  Mutating the mapping — resizing along the prime
ladder, swapping schemes, quarantining a stalled shard — never edits a
table; it derives a successor with ``epoch_id + 1``.  That versioning is
what makes online resharding safe: a :class:`~repro.store.engine.
ShardedStore` can hold the *new* table next to the *old* one during
migration (reads consult new-then-old, writes land on the new epoch),
and the serving layer can detect "the routing I bound my batch queues
to is stale" with one integer comparison.

The **ladder** functions keep resizes on the shard counts the paper's
argument needs: ``pmod`` moves prime→prime through
:func:`repro.mathutil.next_prime` / :func:`repro.mathutil.prev_prime`
(61 → 67 → 71 ...), while the bit-mask schemes (traditional, XOR,
pDisp) move power-of-two→power-of-two — each scheme grows along the
count geometry its index math requires.

Quarantined shards are re-routed deterministically: a key whose primary
shard is quarantined walks ``(primary + 1, primary + 2, ...) mod
n_shards`` to the first healthy shard, so re-routing is stable across
processes and cheap to vectorize (quarantine is the rare case; the fast
path is untouched while the quarantine set is empty).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import FrozenSet, Iterable, List

import numpy as np

from repro.mathutil import is_power_of_two, next_prime, prev_prime
from repro.store.selector import (
    STORE_SCHEMES,
    ShardSelector,
    StoreKey,
    make_selector_exact,
)

__all__ = [
    "RoutingTable",
    "ladder_down",
    "ladder_up",
    "normalize_shard_count",
    "prime_capable",
]


def prime_capable(scheme: str) -> bool:
    """Whether ``scheme`` routes over arbitrary prime shard counts.

    ``pmod`` is a plain modulo and ``keyed`` ends in one, so any prime
    works; the other schemes mask/XOR index bits and need a power of
    two.
    """
    return scheme in ("pmod", "keyed")


def normalize_shard_count(scheme: str, n_shards: int) -> int:
    """Snap ``n_shards`` onto ``scheme``'s ladder (never downward).

    Prime-capable schemes get the smallest prime >= the request;
    power-of-two schemes the smallest covering power of two.  A count
    already on the ladder passes through unchanged.
    """
    if n_shards < 2:
        raise ValueError(f"need at least 2 shards, got {n_shards}")
    if prime_capable(scheme):
        from repro.mathutil import is_prime

        return n_shards if is_prime(n_shards) else next_prime(n_shards)
    if is_power_of_two(n_shards):
        return n_shards
    return 1 << n_shards.bit_length()


def ladder_up(scheme: str, n_shards: int) -> int:
    """The next rung above ``n_shards`` on ``scheme``'s ladder."""
    if prime_capable(scheme):
        return next_prime(n_shards)
    return max(2, 1 << n_shards.bit_length())


def ladder_down(scheme: str, n_shards: int) -> int:
    """The rung below ``n_shards``; raises ValueError at the bottom."""
    if prime_capable(scheme):
        down = prev_prime(n_shards)
        if down < 2:  # pragma: no cover - prev_prime never returns < 2
            raise ValueError(f"no ladder rung below {n_shards}")
        return down
    if n_shards <= 2:
        raise ValueError(f"no ladder rung below {n_shards} shards")
    return 1 << (n_shards - 1).bit_length() - 1


@dataclass(frozen=True)
class RoutingTable:
    """One immutable epoch of key→shard routing.

    Attributes:
        scheme: shard-selection scheme key (:data:`~repro.store.
            selector.STORE_SCHEMES`).
        epoch_id: monotonically increasing generation number; every
            derived table (resize, scheme swap, quarantine change)
            increments it.
        selector: the wrapped :class:`ShardSelector` doing the hashing.
        quarantined: shard ids routed *around* — keys whose primary
            shard is quarantined probe linearly to the next healthy
            shard.
    """

    scheme: str
    epoch_id: int
    selector: ShardSelector
    quarantined: FrozenSet[int] = field(default_factory=frozenset)

    def __post_init__(self):
        if self.epoch_id < 0:
            raise ValueError("epoch_id must be >= 0")
        bad = [s for s in self.quarantined
               if not 0 <= s < self.n_shards]
        if bad:
            raise ValueError(
                f"quarantined shards {sorted(bad)} outside "
                f"[0, {self.n_shards})")
        if len(self.quarantined) >= self.n_shards:
            raise ValueError("cannot quarantine every shard")

    # -- construction ---------------------------------------------------

    @classmethod
    def create(cls, scheme: str, n_shards: int,
               epoch_id: int = 0) -> "RoutingTable":
        """Epoch-``epoch_id`` table for ``scheme`` over ``n_shards``.

        Power-of-two counts go through :func:`~repro.store.selector.
        make_selector` semantics (``pmod`` uses the largest prime
        below, the paper's construction); prime counts are honored
        exactly for prime-capable schemes.
        """
        if scheme not in STORE_SCHEMES:
            known = ", ".join(sorted(STORE_SCHEMES))
            raise KeyError(
                f"unknown store scheme {scheme!r}; known: {known}")
        selector = make_selector_exact(scheme, n_shards)
        return cls(scheme=scheme, epoch_id=epoch_id, selector=selector)

    # -- derivation (always a new epoch) --------------------------------

    def resized(self, n_shards: int) -> "RoutingTable":
        """Successor table over ``n_shards`` (quarantine cleared: the
        new epoch gets a fresh shard fleet)."""
        selector = make_selector_exact(self.scheme, n_shards)
        return RoutingTable(scheme=self.scheme, epoch_id=self.epoch_id + 1,
                            selector=selector)

    def reschemed(self, scheme: str, n_shards: int = None) -> "RoutingTable":
        """Successor table under a different scheme (same target count
        unless overridden; the count is re-normalized onto the new
        scheme's ladder)."""
        if scheme not in STORE_SCHEMES:
            known = ", ".join(sorted(STORE_SCHEMES))
            raise KeyError(
                f"unknown store scheme {scheme!r}; known: {known}")
        target = normalize_shard_count(
            scheme, n_shards if n_shards is not None else self.n_shards)
        selector = make_selector_exact(scheme, target)
        return RoutingTable(scheme=scheme, epoch_id=self.epoch_id + 1,
                            selector=selector)

    def rekeyed(self, key: int) -> "RoutingTable":
        """Successor table under a fresh secret (keyed schemes only).

        Same scheme and shard count — only the secret changes, so the
        key→shard map is scrambled while capacity stays put.  Like
        :meth:`resized`, the quarantine set is cleared: the new epoch
        gets a fresh fleet and re-routes from scratch.
        """
        selector = self.selector.rekeyed(key)
        return RoutingTable(scheme=self.scheme, epoch_id=self.epoch_id + 1,
                            selector=selector)

    def with_quarantined(self, shard_ids: Iterable[int]) -> "RoutingTable":
        """Successor table with ``shard_ids`` added to the quarantine
        set (same selector — quarantine re-routes, it does not rehash)."""
        merged = frozenset(self.quarantined) | frozenset(
            int(s) for s in shard_ids)
        if merged == self.quarantined:
            return self
        return replace(self, epoch_id=self.epoch_id + 1, quarantined=merged)

    def without_quarantined(self,
                            shard_ids: Iterable[int] = None) -> "RoutingTable":
        """Successor table healing some (default: all) quarantined
        shards."""
        if shard_ids is None:
            healed: FrozenSet[int] = frozenset()
        else:
            healed = frozenset(self.quarantined) - frozenset(
                int(s) for s in shard_ids)
        if healed == self.quarantined:
            return self
        return replace(self, epoch_id=self.epoch_id + 1, quarantined=healed)

    def grown(self) -> "RoutingTable":
        """Successor one ladder rung up (prime ladder for pmod)."""
        return self.resized(ladder_up(self.scheme, self.n_shards))

    def shrunk(self) -> "RoutingTable":
        """Successor one ladder rung down."""
        return self.resized(ladder_down(self.scheme, self.n_shards))

    # -- routing --------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return self.selector.n_shards

    @property
    def n_shards_physical(self) -> int:
        return self.selector.n_shards_physical

    def _reroute(self, primary: int) -> int:
        """First healthy shard on the probe walk from ``primary``."""
        shard = primary
        for _ in range(self.n_shards):
            if shard not in self.quarantined:
                return shard
            shard = (shard + 1) % self.n_shards
        raise RuntimeError(  # pragma: no cover - guarded in __post_init__
            "all shards quarantined")

    def shard(self, key: StoreKey) -> int:
        """Shard id ``key`` routes to under this epoch."""
        primary = self.selector.shard(key)
        if not self.quarantined:
            return primary
        return self._reroute(primary)

    def shard_array(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized routing; quarantine fixup applies only to the
        (rare) keys whose primary shard is quarantined."""
        primaries = self.selector.shard_array(keys)
        if not self.quarantined:
            return primaries
        out = primaries.copy()
        hit = np.isin(out, np.fromiter(self.quarantined, dtype=np.int64))
        for i in np.flatnonzero(hit):
            out[i] = self._reroute(int(out[i]))
        return out

    def healthy_shards(self) -> List[int]:
        """Shard ids currently receiving traffic."""
        return [s for s in range(self.n_shards)
                if s not in self.quarantined]

    def describe(self) -> dict:
        """JSON-friendly summary (journal / artifact payloads)."""
        return {
            "scheme": self.scheme,
            "epoch_id": self.epoch_id,
            "n_shards": self.n_shards,
            "n_shards_physical": self.n_shards_physical,
            "quarantined": sorted(self.quarantined),
        }

    def __repr__(self) -> str:
        quarantine = (f", quarantined={sorted(self.quarantined)}"
                      if self.quarantined else "")
        return (f"RoutingTable(scheme={self.scheme!r}, "
                f"epoch={self.epoch_id}, n_shards={self.n_shards}"
                f"{quarantine})")

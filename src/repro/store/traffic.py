"""Request-stream generators for the store: the paper's pathological
address patterns, re-expressed as key traffic.

Three families, all deterministic under a seed:

* :func:`zipfian_traffic` — hot-key skew: a few keys absorb most
  requests (the classic serving workload).  Shard *selection* cannot fix
  per-key hotness, but a good scheme keeps the non-hot mass spread.
* :func:`strided_traffic` — batch jobs walking a keyspace at a fixed
  stride, the software analogue of the Figure 5/6 sweeps.  Even strides
  are exactly the streams that collapse power-of-two modulo routing.
* :func:`power_of_two_traffic` — keys aligned to a power-of-two
  boundary (page-, slab- or bucket-aligned object ids); the pattern the
  paper's motivating examples (Section 1) are built from.

Each generator returns a list of :class:`Request`; :func:`request_keys`
extracts the key array for vectorized, store-free analysis through a
:class:`~repro.store.selector.ShardSelector`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

#: Request operations understood by the replay driver.
OPS = ("get", "put", "delete")


@dataclass(frozen=True)
class Request:
    """One store request: ``op`` applied to ``key`` (value for puts)."""

    op: str
    key: int
    value: Optional[int] = None


def _assemble(keys: np.ndarray, put_fraction: float, delete_fraction: float,
              rng: np.random.Generator) -> List[Request]:
    """Mix gets/puts/deletes over a key stream.

    Every key's *first* appearance is forced to a put so gets have
    something to hit; afterwards ops are drawn iid from the mix.
    """
    if not 0.0 <= put_fraction <= 1.0 or not 0.0 <= delete_fraction <= 1.0:
        raise ValueError("op fractions must be within [0, 1]")
    if put_fraction + delete_fraction > 1.0:
        raise ValueError("put_fraction + delete_fraction must be <= 1")
    draws = rng.random(len(keys))
    seen = set()
    requests: List[Request] = []
    for i, key in enumerate(keys):
        key = int(key)
        if key not in seen or draws[i] < put_fraction:
            seen.add(key)
            requests.append(Request("put", key, value=i))
        elif draws[i] < put_fraction + delete_fraction:
            seen.discard(key)
            requests.append(Request("delete", key))
        else:
            requests.append(Request("get", key))
    return requests


def zipfian_traffic(n_requests: int, n_keys: int = 4096, alpha: float = 1.1,
                    key_stride: int = 1, base: int = 0, seed: int = 0,
                    put_fraction: float = 0.1,
                    delete_fraction: float = 0.0) -> List[Request]:
    """Hot-key traffic: ranks drawn Zipf(alpha) over a shuffled keyspace."""
    if n_requests <= 0 or n_keys <= 0:
        raise ValueError("n_requests and n_keys must be positive")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    rng = np.random.default_rng(seed)
    weights = 1.0 / np.arange(1, n_keys + 1, dtype=np.float64) ** alpha
    ranks = rng.choice(n_keys, size=n_requests, p=weights / weights.sum())
    # Shuffle rank -> key so the hot keys are not numerically adjacent.
    key_of_rank = rng.permutation(n_keys).astype(np.uint64)
    keys = np.uint64(base) + key_of_rank[ranks] * np.uint64(key_stride)
    return _assemble(keys, put_fraction, delete_fraction, rng)


def strided_traffic(n_requests: int, stride: int = 64,
                    working_set: int = 4096, base: int = 0, seed: int = 0,
                    put_fraction: float = 0.1,
                    delete_fraction: float = 0.0) -> List[Request]:
    """Batch walk: cyclic sweep over ``working_set`` keys ``stride`` apart."""
    if n_requests <= 0 or working_set <= 0:
        raise ValueError("n_requests and working_set must be positive")
    if stride <= 0:
        raise ValueError("stride must be positive")
    rng = np.random.default_rng(seed)
    positions = np.arange(n_requests, dtype=np.uint64) % np.uint64(working_set)
    keys = np.uint64(base) + positions * np.uint64(stride)
    return _assemble(keys, put_fraction, delete_fraction, rng)


def power_of_two_traffic(n_requests: int, alignment: int = 512,
                         n_objects: int = 512, base: int = 0, seed: int = 0,
                         put_fraction: float = 0.1,
                         delete_fraction: float = 0.0) -> List[Request]:
    """Aligned-object traffic: every key a multiple of ``alignment``."""
    if n_requests <= 0 or n_objects <= 0:
        raise ValueError("n_requests and n_objects must be positive")
    if alignment < 1 or alignment & (alignment - 1):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    rng = np.random.default_rng(seed)
    objects = rng.integers(0, n_objects, size=n_requests, dtype=np.uint64)
    keys = np.uint64(base) + objects * np.uint64(alignment)
    return _assemble(keys, put_fraction, delete_fraction, rng)


#: pattern key -> generator(n_requests, seed=, **kwargs).
TRAFFIC_PATTERNS: Dict[str, Callable[..., List[Request]]] = {
    "zipfian": zipfian_traffic,
    "strided": strided_traffic,
    "pow2": power_of_two_traffic,
}


def make_traffic(pattern: str, n_requests: int, seed: int = 0,
                 **kwargs) -> List[Request]:
    """Generate a named traffic pattern (zipfian / strided / pow2)."""
    try:
        generator = TRAFFIC_PATTERNS[pattern]
    except KeyError:
        known = ", ".join(sorted(TRAFFIC_PATTERNS))
        raise KeyError(f"unknown traffic pattern {pattern!r}; known: {known}") from None
    return generator(n_requests, seed=seed, **kwargs)


def available_patterns() -> List[str]:
    """Registered traffic pattern keys, sorted."""
    return sorted(TRAFFIC_PATTERNS)


def request_keys(requests: List[Request]) -> np.ndarray:
    """The key stream as a uint64 array (for vectorized shard analysis)."""
    return np.fromiter((r.key for r in requests), dtype=np.uint64,
                       count=len(requests))

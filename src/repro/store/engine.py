"""The store front end: epoch routing, per-shard segments, telemetry.

:class:`ShardedStore` is the piece that turns the paper's indexing
functions into a serving system: every ``get``/``put``/``delete`` routes
its key through the current :class:`~repro.store.routing.RoutingTable`
epoch, lands on one lock-guarded :class:`~repro.store.shard.Shard`, and
appends the chosen shard id to a bounded telemetry window.  From that
observed shard-access stream the store computes, live, the paper's two
quality metrics via :mod:`repro.hashing.analysis`:

* **balance** (Eq. 1) over the per-shard access histogram — how evenly
  the traffic spread across shards;
* **concentration** (Eq. 2) over the shard-access *sequence* — whether
  the stream burst-hammers individual shards.

Those are exactly the numbers the strided sweeps of Figures 5 and 6
report for L2 sets, here measured on real served traffic.

**Online resharding.**  The routing table is swappable at runtime:
:meth:`ShardedStore.begin_reshard` installs a successor epoch with a
fresh shard fleet while keeping the previous epoch's shards readable.
During migration the store runs *dual-epoch*:

* reads consult the new epoch first and fall through to the old one,
  promoting any hit into the new epoch (so hot keys migrate themselves);
* writes land only on the new epoch, and erase the key from the old one
  so a later delete can never be undone by a stale old-epoch copy;
* deletes apply to both epochs.

:meth:`ShardedStore.commit_reshard` retires the old epoch once the
:class:`~repro.store.migrate.Migrator` has drained it.  Quarantining
(:meth:`ShardedStore.quarantine`) swaps in a same-shards successor
table that routes around the named shards — keys resident there become
cache misses, the store stays up.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, Iterable, List, NamedTuple, Optional

import numpy as np

from repro.hashing.analysis import balance_from_counts, concentration_from_sets
from repro.obs import HeavyHitterTracker, MetricsRegistry, get_journal, \
    get_registry
from repro.store.routing import RoutingTable
from repro.store.selector import ShardSelector, StoreKey, canonical_key
from repro.store.shard import Shard

#: Default shard-access window the telemetry metrics are computed over.
DEFAULT_TELEMETRY_WINDOW = 1 << 16

#: How many heavy-hitter keys the observed store tracks (space-saving
#: top-K; O(K) memory regardless of traffic).
DEFAULT_HOT_KEYS = 8

#: Sentinel distinguishing "not stored" from a stored ``None``.
_MISS = object()


class _EpochState(NamedTuple):
    """One atomic snapshot of the store's routing generation(s).

    Swapped as a unit under the epoch lock; the serving path reads the
    attribute once and works off a consistent (table, shards, old)
    view without taking the lock.
    """

    table: RoutingTable
    shards: List[Shard]
    old_table: Optional[RoutingTable]
    old_shards: Optional[List[Shard]]


@dataclass(frozen=True)
class StoreTelemetry:
    """One snapshot of a store's health and hashing quality.

    ``balance`` is NaN until the store has served at least one request;
    ``concentration`` is 0.0 on an ideal (or empty) stream, matching
    the analysis-layer conventions.
    """

    scheme: str
    n_shards: int
    accesses: int
    gets: int
    hits: int
    misses: int
    evictions: int
    occupancy: int
    capacity: int
    hit_rate: float
    balance: float
    concentration: float
    tail_load: float  #: max per-shard accesses / ideal per-shard share
    epoch: int = 0
    shard_accesses: List[int] = field(default_factory=list)
    #: Space-saving top-K routed keys (``{"key","count","error","where"}``
    #: rows, heaviest first); empty while the store is unobserved.
    top_keys: List[Dict[str, Any]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable payload (artifact / benchmark friendly)."""
        return {
            "scheme": self.scheme,
            "n_shards": self.n_shards,
            "accesses": self.accesses,
            "gets": self.gets,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "occupancy": self.occupancy,
            "capacity": self.capacity,
            "hit_rate": self.hit_rate,
            "balance": self.balance,
            "concentration": self.concentration,
            "tail_load": self.tail_load,
            "epoch": self.epoch,
            "shard_accesses": list(self.shard_accesses),
            "top_keys": list(self.top_keys),
        }


class ShardedStore:
    """Sharded, capacity-bounded, thread-safe in-memory object store.

    Args:
        n_shards: power-of-two physical shard count; ``pmod`` uses the
            largest prime below it, leaving the rest idle (Table 1's
            fragmentation, transplanted to shards).  Exact prime counts
            are reachable at runtime through :meth:`begin_reshard` with
            a prime-ladder :class:`RoutingTable`.
        scheme: shard-selection scheme key from
            :data:`~repro.store.selector.STORE_SCHEMES`.
        shard_capacity: max entries per shard.
        assoc: ways per shard set.
        replacement: per-set eviction policy key.
        telemetry_window: how many recent shard accesses the
            concentration metric is computed over (bounded so telemetry
            cost stays O(window), not O(traffic)).
        routing: explicit starting :class:`RoutingTable`; overrides
            ``scheme``/``n_shards`` when given.
    """

    def __init__(self, n_shards: int = 64, scheme: str = "pmod",
                 shard_capacity: int = 512, assoc: int = 8,
                 replacement: str = "lru",
                 telemetry_window: int = DEFAULT_TELEMETRY_WINDOW,
                 registry: Optional[MetricsRegistry] = None,
                 routing: Optional[RoutingTable] = None):
        table = (routing if routing is not None
                 else RoutingTable.create(scheme, n_shards))
        self._shard_capacity = shard_capacity
        self._assoc = assoc
        self._replacement = replacement
        self._epoch_lock = threading.Lock()
        self._state = _EpochState(table, self._build_shards(table.n_shards),
                                  None, None)
        self._window: deque = deque(maxlen=telemetry_window)
        self._window_lock = threading.Lock()
        # Registry instruments are resolved per epoch; with the
        # registry disabled they are all the shared null instrument and
        # the `_observed` flag keeps the serving path free of even the
        # per-request perf_counter calls.
        self._registry = get_registry() if registry is None else registry
        self._observed = self._registry.enabled
        # Heavy-hitter tracking rides the observed path only, so the
        # unobserved serving path stays free of the sketch update.
        self._hitters = (HeavyHitterTracker(k=DEFAULT_HOT_KEYS)
                         if self._observed else None)
        self._bind_instruments()

    def _build_shards(self, n_shards: int) -> List[Shard]:
        return [
            Shard(self._shard_capacity, assoc=self._assoc,
                  replacement=self._replacement, shard_id=i)
            for i in range(n_shards)
        ]

    def _bind_instruments(self) -> None:
        """(Re)resolve registry handles for the current epoch's scheme
        and shard count; called at construction and on every epoch
        swap so per-shard series always match the live fleet."""
        state = self._state
        scheme_name = state.table.scheme
        self._op_latency = {
            op: self._registry.histogram("store.op.latency_s",
                                         scheme=scheme_name, op=op)
            for op in ("get", "put", "delete")
        }
        self._shard_latency = [
            self._registry.histogram("store.shard.latency_s",
                                     scheme=scheme_name, shard=i)
            for i in range(state.table.n_shards)
        ]
        self._shard_occupancy = [
            self._registry.gauge("store.shard.occupancy",
                                 scheme=scheme_name, shard=i)
            for i in range(state.table.n_shards)
        ]
        self._request_counter = self._registry.counter(
            "store.requests", scheme=scheme_name)
        self._registry.gauge("store.epoch", scheme=scheme_name).set(
            state.table.epoch_id)

    # -- routing -------------------------------------------------------

    @property
    def routing(self) -> RoutingTable:
        """The current (newest) routing epoch."""
        return self._state.table

    @property
    def selector(self) -> ShardSelector:
        """The current epoch's selector (analysis-surface compatible)."""
        return self._state.table.selector

    @property
    def shards(self) -> List[Shard]:
        """The current epoch's shard fleet."""
        return self._state.shards

    @property
    def scheme(self) -> str:
        return self._state.table.scheme

    @property
    def n_shards(self) -> int:
        return self._state.table.n_shards

    @property
    def epoch(self) -> int:
        """The current routing epoch id (monotonic across reshards)."""
        return self._state.table.epoch_id

    @property
    def migrating(self) -> bool:
        """Whether an old epoch is still live behind the current one."""
        return self._state.old_shards is not None

    def shard_for(self, key: StoreKey) -> int:
        """Shard id ``key`` routes to under the current epoch (no
        access recorded)."""
        return self._state.table.shard(key)

    def _record(self, state: _EpochState, shard_id: int, op: str,
                elapsed_s: float) -> None:
        """Feed one served request into the registry series."""
        self._request_counter.inc()
        self._op_latency[op].observe(elapsed_s)
        if shard_id < len(self._shard_latency):
            self._shard_latency[shard_id].observe(elapsed_s)
            self._shard_occupancy[shard_id].set(
                state.shards[shard_id].occupancy)

    # -- operations ----------------------------------------------------

    def _get(self, state: _EpochState, shard_id: int,
             canonical: int) -> Any:
        """Dual-epoch read: new epoch first, then the old one with
        promotion (the hit moves to the new epoch so it is never read
        from the old fleet again)."""
        value = state.shards[shard_id].get(canonical, _MISS)
        if value is _MISS and state.old_shards is not None:
            old_id = state.old_table.shard(canonical)
            value = state.old_shards[old_id].get(canonical, _MISS)
            if value is not _MISS:
                state.shards[shard_id].put(canonical, value)
                state.old_shards[old_id].delete(canonical)
        return value

    def get(self, key: StoreKey, default: Any = None) -> Any:
        state = self._state
        canonical = canonical_key(key)
        shard_id = state.table.shard(canonical)
        with self._window_lock:
            self._window.append(shard_id)
        if not self._observed:
            value = self._get(state, shard_id, canonical)
            return default if value is _MISS else value
        self._hitters.offer(key, shard_id)
        start = perf_counter()
        value = self._get(state, shard_id, canonical)
        self._record(state, shard_id, "get", perf_counter() - start)
        return default if value is _MISS else value

    def _put(self, state: _EpochState, shard_id: int, canonical: int,
             value: Any) -> Optional[int]:
        """Dual-epoch write: the new epoch owns the key from here on;
        the old copy is erased so it cannot resurrect after a delete."""
        evicted = state.shards[shard_id].put(canonical, value)
        if state.old_shards is not None:
            state.old_shards[state.old_table.shard(canonical)].delete(
                canonical)
        return evicted

    def put(self, key: StoreKey, value: Any) -> Optional[int]:
        """Store ``value``; returns the evicted (canonical) key, if any."""
        state = self._state
        canonical = canonical_key(key)
        shard_id = state.table.shard(canonical)
        with self._window_lock:
            self._window.append(shard_id)
        if not self._observed:
            return self._put(state, shard_id, canonical, value)
        self._hitters.offer(key, shard_id)
        start = perf_counter()
        evicted = self._put(state, shard_id, canonical, value)
        self._record(state, shard_id, "put", perf_counter() - start)
        return evicted

    def _delete(self, state: _EpochState, shard_id: int,
                canonical: int) -> bool:
        """Dual-epoch delete: both generations must forget the key."""
        deleted = state.shards[shard_id].delete(canonical)
        if state.old_shards is not None:
            old_deleted = state.old_shards[
                state.old_table.shard(canonical)].delete(canonical)
            deleted = deleted or old_deleted
        return deleted

    def delete(self, key: StoreKey) -> bool:
        state = self._state
        canonical = canonical_key(key)
        shard_id = state.table.shard(canonical)
        with self._window_lock:
            self._window.append(shard_id)
        if not self._observed:
            return self._delete(state, shard_id, canonical)
        self._hitters.offer(key, shard_id)
        start = perf_counter()
        deleted = self._delete(state, shard_id, canonical)
        self._record(state, shard_id, "delete", perf_counter() - start)
        return deleted

    def contains(self, key: StoreKey) -> bool:
        state = self._state
        canonical = canonical_key(key)
        if state.shards[state.table.shard(canonical)].contains(canonical):
            return True
        if state.old_shards is not None:
            return state.old_shards[
                state.old_table.shard(canonical)].contains(canonical)
        return False

    def __len__(self) -> int:
        state = self._state
        total = sum(shard.occupancy for shard in state.shards)
        if state.old_shards is not None:
            total += sum(shard.occupancy for shard in state.old_shards)
        return total

    @property
    def capacity(self) -> int:
        state = self._state
        total = sum(shard.capacity for shard in state.shards)
        if state.old_shards is not None:
            total += sum(shard.capacity for shard in state.old_shards)
        return total

    # -- epoch management ----------------------------------------------

    def begin_reshard(self, table: RoutingTable) -> RoutingTable:
        """Install ``table`` as the new routing epoch with a fresh shard
        fleet; the previous epoch stays readable until
        :meth:`commit_reshard`.

        Raises RuntimeError while a migration is already in flight and
        ValueError unless ``table`` advances the epoch id.
        """
        with self._epoch_lock:
            state = self._state
            if state.old_shards is not None:
                raise RuntimeError(
                    "reshard already in flight; commit it before starting "
                    "another")
            if table.epoch_id <= state.table.epoch_id:
                raise ValueError(
                    f"new epoch {table.epoch_id} must advance past "
                    f"current epoch {state.table.epoch_id}")
            self._state = _EpochState(table, self._build_shards(
                table.n_shards), state.table, state.shards)
            with self._window_lock:
                self._window.clear()
            self._bind_instruments()
        get_journal().emit(
            "reshard.start",
            epoch=table.epoch_id,
            scheme=table.scheme,
            n_shards=table.n_shards,
            from_epoch=state.table.epoch_id,
            from_scheme=state.table.scheme,
            from_n_shards=state.table.n_shards,
        )
        return table

    def commit_reshard(self) -> int:
        """Retire the old epoch; returns how many keys it still held
        (left-behind keys become cache misses — the migrator drains the
        backlog to zero before committing)."""
        with self._epoch_lock:
            state = self._state
            if state.old_shards is None:
                raise RuntimeError("no reshard in flight")
            left_behind = sum(s.occupancy for s in state.old_shards)
            self._state = _EpochState(state.table, state.shards, None, None)
        get_journal().emit(
            "reshard.commit",
            epoch=state.table.epoch_id,
            scheme=state.table.scheme,
            n_shards=state.table.n_shards,
            left_behind=left_behind,
        )
        return left_behind

    def migration_backlog(self) -> int:
        """Keys still resident in the old epoch (0 when not migrating)."""
        state = self._state
        if state.old_shards is None:
            return 0
        return sum(shard.occupancy for shard in state.old_shards)

    def migrate_keys(self, max_keys: int) -> int:
        """Move up to ``max_keys`` entries from the old epoch into the
        current one; returns how many were moved (i.e. removed from the
        old fleet).  A key the new epoch already holds is *not*
        overwritten — a write that raced ahead of the migrator wins —
        but its old copy is still dropped.
        """
        if max_keys < 1:
            raise ValueError(f"max_keys must be positive, got {max_keys}")
        state = self._state
        if state.old_shards is None:
            return 0
        moved = 0
        for old_shard in state.old_shards:
            if moved >= max_keys:
                break
            for canonical, value in old_shard.items():
                if moved >= max_keys:
                    break
                new_shard = state.shards[state.table.shard(canonical)]
                if not new_shard.contains(canonical):
                    new_shard.put(canonical, value)
                old_shard.delete(canonical)
                moved += 1
        return moved

    def wipe(self) -> None:
        """Drop every entry and all per-shard stats: crash-loss
        simulation (the process restarted; the routing configuration
        survived, the contents did not).  Any in-flight reshard's old
        epoch is discarded with the data."""
        with self._epoch_lock:
            state = self._state
            self._state = _EpochState(
                state.table, self._build_shards(state.table.n_shards),
                None, None)
            with self._window_lock:
                self._window.clear()
            self._bind_instruments()

    def quarantine(self, shard_ids: Iterable[int]) -> RoutingTable:
        """Route around ``shard_ids``: swap in a same-fleet successor
        epoch whose table probes past the quarantined shards.  Keys
        resident on them become cache misses until healed — the store
        keeps serving throughout."""
        with self._epoch_lock:
            state = self._state
            table = state.table.with_quarantined(shard_ids)
            if table is state.table:
                return table
            self._state = _EpochState(table, state.shards,
                                      state.old_table, state.old_shards)
            self._bind_instruments()
        return table

    def heal(self, shard_ids: Optional[Iterable[int]] = None) -> RoutingTable:
        """Lift the quarantine on ``shard_ids`` (all of them by
        default); same-fleet successor epoch, like :meth:`quarantine`."""
        with self._epoch_lock:
            state = self._state
            table = state.table.without_quarantined(shard_ids)
            if table is state.table:
                return table
            self._state = _EpochState(table, state.shards,
                                      state.old_table, state.old_shards)
            self._bind_instruments()
        return table

    # -- telemetry -----------------------------------------------------

    def shard_access_counts(self) -> np.ndarray:
        """Lifetime accesses per shard (the observed histogram; current
        epoch only — each epoch's quality is judged on its own traffic)."""
        return np.array([shard.stats.accesses for shard in self.shards],
                        dtype=np.int64)

    def balance(self) -> float:
        """Balance (Eq. 1) of the lifetime shard-access histogram."""
        counts = self.shard_access_counts()
        if counts.sum() == 0:
            return math.nan
        return balance_from_counts(counts)

    def concentration(self) -> float:
        """Concentration (Eq. 2) over the recent shard-access window."""
        with self._window_lock:
            window = np.array(self._window, dtype=np.int64)
        return concentration_from_sets(window, self.n_shards)

    def heavy_hitters(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """Space-saving top-K routed keys with their last shard
        (heaviest first); empty while the store is unobserved.  This is
        the per-key view the aggregate Eq. 1 / Eq. 2 gauges smear away
        — a concentration alarm can name the keys causing the pileup."""
        if self._hitters is None:
            return []
        return self._hitters.top(n)

    def telemetry(self) -> StoreTelemetry:
        """Snapshot every counter plus the two paper metrics."""
        state = self._state
        counts = self.shard_access_counts()
        accesses = int(counts.sum())
        gets = sum(s.stats.gets for s in state.shards)
        hits = sum(s.stats.hits for s in state.shards)
        misses = sum(s.stats.misses for s in state.shards)
        evictions = sum(s.stats.evictions for s in state.shards)
        occupancy = len(self)
        n_shards = state.table.n_shards
        ideal_share = accesses / n_shards if accesses else 0.0
        telemetry = StoreTelemetry(
            scheme=state.table.scheme,
            n_shards=n_shards,
            accesses=accesses,
            gets=gets,
            hits=hits,
            misses=misses,
            evictions=evictions,
            occupancy=occupancy,
            capacity=self.capacity,
            hit_rate=hits / accesses if accesses else 0.0,
            balance=self.balance(),
            concentration=self.concentration(),
            tail_load=float(counts.max() / ideal_share) if ideal_share else 0.0,
            epoch=state.table.epoch_id,
            shard_accesses=counts.tolist(),
            top_keys=self.heavy_hitters(),
        )
        if self._observed:
            self._publish_telemetry(telemetry)
        return telemetry

    def _publish_telemetry(self, telemetry: StoreTelemetry) -> None:
        """Mirror one snapshot onto the registry as labeled gauges —
        the continuous-observation form of the inline Eq. 1 / Eq. 2
        numbers (each snapshot updates the series in place)."""
        labels = {"scheme": telemetry.scheme}
        for name, value in (
            ("store.balance", telemetry.balance),
            ("store.concentration", telemetry.concentration),
            ("store.tail_load", telemetry.tail_load),
            ("store.hit_rate", telemetry.hit_rate),
            ("store.occupancy", telemetry.occupancy),
            ("store.evictions", telemetry.evictions),
        ):
            self._registry.gauge(name, **labels).set(value)

    def __repr__(self) -> str:
        migrating = ", migrating" if self.migrating else ""
        return (f"ShardedStore(scheme={self.scheme!r}, "
                f"n_shards={self.n_shards}, epoch={self.epoch}, "
                f"occupancy={len(self)}/{self.capacity}{migrating})")

"""The store front end: routing, per-shard segments, live telemetry.

:class:`ShardedStore` is the piece that turns the paper's indexing
functions into a serving system: every ``get``/``put``/``delete`` routes
its key through a :class:`~repro.store.selector.ShardSelector`, lands on
one lock-guarded :class:`~repro.store.shard.Shard`, and appends the
chosen shard id to a bounded telemetry window.  From that observed
shard-access stream the store computes, live, the paper's two quality
metrics via :mod:`repro.hashing.analysis`:

* **balance** (Eq. 1) over the per-shard access histogram — how evenly
  the traffic spread across shards;
* **concentration** (Eq. 2) over the shard-access *sequence* — whether
  the stream burst-hammers individual shards.

Those are exactly the numbers the strided sweeps of Figures 5 and 6
report for L2 sets, here measured on real served traffic.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional

import numpy as np

from repro.hashing.analysis import balance_from_counts, concentration_from_sets
from repro.obs import MetricsRegistry, get_registry
from repro.store.selector import ShardSelector, StoreKey, canonical_key, make_selector
from repro.store.shard import Shard

#: Default shard-access window the telemetry metrics are computed over.
DEFAULT_TELEMETRY_WINDOW = 1 << 16


@dataclass(frozen=True)
class StoreTelemetry:
    """One snapshot of a store's health and hashing quality.

    ``balance`` is NaN until the store has served at least one request;
    ``concentration`` is 0.0 on an ideal (or empty) stream, matching
    the analysis-layer conventions.
    """

    scheme: str
    n_shards: int
    accesses: int
    gets: int
    hits: int
    misses: int
    evictions: int
    occupancy: int
    capacity: int
    hit_rate: float
    balance: float
    concentration: float
    tail_load: float  #: max per-shard accesses / ideal per-shard share
    shard_accesses: List[int] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable payload (artifact / benchmark friendly)."""
        return {
            "scheme": self.scheme,
            "n_shards": self.n_shards,
            "accesses": self.accesses,
            "gets": self.gets,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "occupancy": self.occupancy,
            "capacity": self.capacity,
            "hit_rate": self.hit_rate,
            "balance": self.balance,
            "concentration": self.concentration,
            "tail_load": self.tail_load,
            "shard_accesses": list(self.shard_accesses),
        }


class ShardedStore:
    """Sharded, capacity-bounded, thread-safe in-memory object store.

    Args:
        n_shards: power-of-two physical shard count; ``pmod`` uses the
            largest prime below it, leaving the rest idle (Table 1's
            fragmentation, transplanted to shards).
        scheme: shard-selection scheme key from
            :data:`~repro.store.selector.STORE_SCHEMES`.
        shard_capacity: max entries per shard.
        assoc: ways per shard set.
        replacement: per-set eviction policy key.
        telemetry_window: how many recent shard accesses the
            concentration metric is computed over (bounded so telemetry
            cost stays O(window), not O(traffic)).
    """

    def __init__(self, n_shards: int = 64, scheme: str = "pmod",
                 shard_capacity: int = 512, assoc: int = 8,
                 replacement: str = "lru",
                 telemetry_window: int = DEFAULT_TELEMETRY_WINDOW,
                 registry: Optional[MetricsRegistry] = None):
        self.selector: ShardSelector = make_selector(scheme, n_shards)
        self.shards: List[Shard] = [
            Shard(shard_capacity, assoc=assoc, replacement=replacement,
                  shard_id=i)
            for i in range(self.selector.n_shards)
        ]
        self._window: deque = deque(maxlen=telemetry_window)
        self._window_lock = threading.Lock()
        # Registry instruments are resolved once here; with the
        # registry disabled they are all the shared null instrument and
        # the `_observed` flag keeps the serving path free of even the
        # per-request perf_counter calls.
        self._registry = get_registry() if registry is None else registry
        self._observed = self._registry.enabled
        scheme_name = self.selector.scheme
        self._op_latency = {
            op: self._registry.histogram("store.op.latency_s",
                                         scheme=scheme_name, op=op)
            for op in ("get", "put", "delete")
        }
        self._shard_latency = [
            self._registry.histogram("store.shard.latency_s",
                                     scheme=scheme_name, shard=i)
            for i in range(self.selector.n_shards)
        ]
        self._shard_occupancy = [
            self._registry.gauge("store.shard.occupancy",
                                 scheme=scheme_name, shard=i)
            for i in range(self.selector.n_shards)
        ]
        self._request_counter = self._registry.counter(
            "store.requests", scheme=scheme_name)

    # -- routing -------------------------------------------------------

    @property
    def scheme(self) -> str:
        return self.selector.scheme

    @property
    def n_shards(self) -> int:
        return self.selector.n_shards

    def shard_for(self, key: StoreKey) -> int:
        """Shard id ``key`` routes to (no access recorded)."""
        return self.selector.shard(key)

    def _route(self, key: StoreKey) -> tuple:
        canonical = canonical_key(key)
        shard_id = self.selector.indexing.index(canonical)
        with self._window_lock:
            self._window.append(shard_id)
        return self.shards[shard_id], canonical

    def _record(self, shard: Shard, op: str, elapsed_s: float) -> None:
        """Feed one served request into the registry series."""
        self._request_counter.inc()
        self._op_latency[op].observe(elapsed_s)
        self._shard_latency[shard.shard_id].observe(elapsed_s)
        self._shard_occupancy[shard.shard_id].set(shard.occupancy)

    # -- operations ----------------------------------------------------

    def get(self, key: StoreKey, default: Any = None) -> Any:
        shard, canonical = self._route(key)
        if not self._observed:
            return shard.get(canonical, default)
        start = perf_counter()
        value = shard.get(canonical, default)
        self._record(shard, "get", perf_counter() - start)
        return value

    def put(self, key: StoreKey, value: Any) -> Optional[int]:
        """Store ``value``; returns the evicted (canonical) key, if any."""
        shard, canonical = self._route(key)
        if not self._observed:
            return shard.put(canonical, value)
        start = perf_counter()
        evicted = shard.put(canonical, value)
        self._record(shard, "put", perf_counter() - start)
        return evicted

    def delete(self, key: StoreKey) -> bool:
        shard, canonical = self._route(key)
        if not self._observed:
            return shard.delete(canonical)
        start = perf_counter()
        deleted = shard.delete(canonical)
        self._record(shard, "delete", perf_counter() - start)
        return deleted

    def contains(self, key: StoreKey) -> bool:
        canonical = canonical_key(key)
        return self.shards[self.selector.indexing.index(canonical)].contains(
            canonical
        )

    def __len__(self) -> int:
        return sum(shard.occupancy for shard in self.shards)

    @property
    def capacity(self) -> int:
        return sum(shard.capacity for shard in self.shards)

    # -- telemetry -----------------------------------------------------

    def shard_access_counts(self) -> np.ndarray:
        """Lifetime accesses per shard (the observed histogram)."""
        return np.array([shard.stats.accesses for shard in self.shards],
                        dtype=np.int64)

    def balance(self) -> float:
        """Balance (Eq. 1) of the lifetime shard-access histogram."""
        counts = self.shard_access_counts()
        if counts.sum() == 0:
            return math.nan
        return balance_from_counts(counts)

    def concentration(self) -> float:
        """Concentration (Eq. 2) over the recent shard-access window."""
        with self._window_lock:
            window = np.array(self._window, dtype=np.int64)
        return concentration_from_sets(window, self.n_shards)

    def telemetry(self) -> StoreTelemetry:
        """Snapshot every counter plus the two paper metrics."""
        counts = self.shard_access_counts()
        accesses = int(counts.sum())
        gets = sum(s.stats.gets for s in self.shards)
        hits = sum(s.stats.hits for s in self.shards)
        misses = sum(s.stats.misses for s in self.shards)
        evictions = sum(s.stats.evictions for s in self.shards)
        occupancy = len(self)
        ideal_share = accesses / self.n_shards if accesses else 0.0
        telemetry = StoreTelemetry(
            scheme=self.scheme,
            n_shards=self.n_shards,
            accesses=accesses,
            gets=gets,
            hits=hits,
            misses=misses,
            evictions=evictions,
            occupancy=occupancy,
            capacity=self.capacity,
            hit_rate=hits / accesses if accesses else 0.0,
            balance=self.balance(),
            concentration=self.concentration(),
            tail_load=float(counts.max() / ideal_share) if ideal_share else 0.0,
            shard_accesses=counts.tolist(),
        )
        if self._observed:
            self._publish_telemetry(telemetry)
        return telemetry

    def _publish_telemetry(self, telemetry: StoreTelemetry) -> None:
        """Mirror one snapshot onto the registry as labeled gauges —
        the continuous-observation form of the inline Eq. 1 / Eq. 2
        numbers (each snapshot updates the series in place)."""
        labels = {"scheme": self.scheme}
        for name, value in (
            ("store.balance", telemetry.balance),
            ("store.concentration", telemetry.concentration),
            ("store.tail_load", telemetry.tail_load),
            ("store.hit_rate", telemetry.hit_rate),
            ("store.occupancy", telemetry.occupancy),
            ("store.evictions", telemetry.evictions),
        ):
            self._registry.gauge(name, **labels).set(value)

    def __repr__(self) -> str:
        return (f"ShardedStore(scheme={self.scheme!r}, "
                f"n_shards={self.n_shards}, occupancy={len(self)}/"
                f"{self.capacity})")

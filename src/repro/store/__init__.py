"""`repro.store` — a sharded in-memory object store routed by the
paper's indexing functions.

The rest of the package *analyzes* hashing functions against simulated
cache addresses; this subsystem *serves requests* through them.  A
:class:`ShardSelector` adapts any :mod:`repro.hashing` scheme into a
key→shard router (prime shard counts for pMod, the paper's p = 9/19/31/37
displacement constants for pDisp); each shard is a capacity-bounded
set-associative segment (:class:`Shard`) evicting through
:mod:`repro.cache.replacement` policies; :class:`ShardedStore` fronts
them with ``get``/``put``/``delete``, per-shard and global statistics,
and live balance (Eq. 1) / concentration (Eq. 2) telemetry computed by
:mod:`repro.hashing.analysis` over the observed shard-access stream.

:mod:`repro.store.traffic` generates the request streams the paper's
argument is about — hot-key Zipfian, strided batch walks, and
power-of-two-aligned keys — and :mod:`repro.store.driver` replays them
concurrently (one lock per shard) and reports throughput and tail
per-shard load.
"""

from repro.store.driver import ReplayError, ReplayReport, replay
from repro.store.engine import ShardedStore, StoreTelemetry
from repro.store.migrate import DEFAULT_MOVE_BUDGET, MigrationReport, Migrator
from repro.store.routing import (
    RoutingTable,
    ladder_down,
    ladder_up,
    normalize_shard_count,
    prime_capable,
)
from repro.store.selector import (
    STORE_SCHEMES,
    ShardSelector,
    available_selectors,
    make_selector,
    make_selector_exact,
)
from repro.store.shard import Shard, ShardStats
from repro.store.traffic import (
    Request,
    TRAFFIC_PATTERNS,
    available_patterns,
    make_traffic,
    power_of_two_traffic,
    request_keys,
    strided_traffic,
    zipfian_traffic,
)

__all__ = [
    "DEFAULT_MOVE_BUDGET",
    "MigrationReport",
    "Migrator",
    "Request",
    "ReplayError",
    "ReplayReport",
    "RoutingTable",
    "STORE_SCHEMES",
    "Shard",
    "ShardSelector",
    "ShardStats",
    "ShardedStore",
    "StoreTelemetry",
    "TRAFFIC_PATTERNS",
    "available_patterns",
    "available_selectors",
    "ladder_down",
    "ladder_up",
    "make_selector",
    "make_selector_exact",
    "make_traffic",
    "normalize_shard_count",
    "power_of_two_traffic",
    "prime_capable",
    "replay",
    "request_keys",
    "strided_traffic",
    "zipfian_traffic",
]

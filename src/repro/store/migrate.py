"""Incremental key migration between routing epochs.

A :class:`Migrator` drains a :class:`~repro.store.engine.ShardedStore`'s
old epoch into the current one in bounded chunks while the store keeps
serving.  Each :meth:`Migrator.step` moves at most ``budget`` keys — the
in-flight move budget the reshard contract promises — and emits one
``reshard.migrate_chunk`` journal event, so an operator (or the
remediation controller's post-mortem) can replay exactly how the
migration progressed.  :meth:`Migrator.run` loops steps until the
backlog is empty, then commits the reshard, retiring the old fleet.

The migrator never overwrites a key the new epoch already holds: a
write that landed after :meth:`~repro.store.engine.ShardedStore.
begin_reshard` is newer than any old-epoch copy, so the racing copy is
dropped rather than moved (see
:meth:`~repro.store.engine.ShardedStore.migrate_keys`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.obs import MetricsRegistry, get_journal, get_registry
from repro.store.engine import ShardedStore

#: Default per-chunk move budget.
DEFAULT_MOVE_BUDGET = 64


@dataclass
class MigrationReport:
    """Outcome of one full :meth:`Migrator.run`."""

    epoch: int  #: epoch migrated *into*
    scheme: str
    moved: int  #: keys moved out of the old epoch
    chunks: int  #: migrate_chunk steps taken
    peak_in_flight: int  #: largest single-chunk move count observed
    budget: int
    left_behind: int  #: keys the commit retired unmigrated (0 on success)
    chunk_sizes: List[int] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "scheme": self.scheme,
            "moved": self.moved,
            "chunks": self.chunks,
            "peak_in_flight": self.peak_in_flight,
            "budget": self.budget,
            "left_behind": self.left_behind,
            "chunk_sizes": list(self.chunk_sizes),
        }


class Migrator:
    """Bounded-budget incremental migrator for one store's reshard.

    Args:
        store: the store whose in-flight reshard to drain.
        budget: max keys moved per :meth:`step` — the in-flight bound.
        registry: metrics registry (process-global by default); moved
            keys count into the ``store.migrated_keys`` counter.
    """

    def __init__(self, store: ShardedStore,
                 budget: int = DEFAULT_MOVE_BUDGET,
                 registry: Optional[MetricsRegistry] = None):
        if budget < 1:
            raise ValueError(f"budget must be positive, got {budget}")
        self.store = store
        self.budget = budget
        self.moved = 0
        self.chunks = 0
        self.peak_in_flight = 0
        self.chunk_sizes: List[int] = []
        self._registry = get_registry() if registry is None else registry

    def step(self) -> int:
        """Move one chunk (≤ ``budget`` keys); returns the move count.

        A no-op (returning 0) when the store is not migrating or the
        backlog is already empty.
        """
        if not self.store.migrating:
            return 0
        moved = self.store.migrate_keys(self.budget)
        if moved == 0:
            return 0
        self.moved += moved
        self.chunks += 1
        self.peak_in_flight = max(self.peak_in_flight, moved)
        self.chunk_sizes.append(moved)
        self._registry.counter("store.migrated_keys",
                               scheme=self.store.scheme).inc(moved)
        get_journal().emit(
            "reshard.migrate_chunk",
            epoch=self.store.epoch,
            scheme=self.store.scheme,
            moved=moved,
            total_moved=self.moved,
            remaining=self.store.migration_backlog(),
            budget=self.budget,
        )
        return moved

    def run(self, max_chunks: Optional[int] = None) -> MigrationReport:
        """Drain the backlog chunk by chunk, then commit the reshard.

        ``max_chunks`` bounds the loop for tests; when it is hit with
        backlog remaining, the reshard is committed anyway and the
        leftovers are reported (they become cache misses).
        """
        if not self.store.migrating:
            raise RuntimeError("store has no reshard in flight")
        while self.store.migration_backlog() > 0:
            if max_chunks is not None and self.chunks >= max_chunks:
                break
            self.step()
        left_behind = self.store.commit_reshard()
        return MigrationReport(
            epoch=self.store.epoch,
            scheme=self.store.scheme,
            moved=self.moved,
            chunks=self.chunks,
            peak_in_flight=self.peak_in_flight,
            budget=self.budget,
            left_behind=left_behind,
            chunk_sizes=list(self.chunk_sizes),
        )

    def __repr__(self) -> str:
        return (f"Migrator(budget={self.budget}, moved={self.moved}, "
                f"chunks={self.chunks}, backlog="
                f"{self.store.migration_backlog()})")

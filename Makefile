# Convenience targets for the prime-indexing reproduction.

PYTHON ?= python
JOBS ?= 4
SCALE ?= 1.0
CACHE_DIR ?= .repro-cache

.PHONY: install test verify bench store-bench obs-check serve-check serve-bench health-check trace-check reshard-check reshard-bench cluster-check cluster-bench adversary-check adversary-bench fed-check fed-bench bench-check bench-trend dash eval figures report examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# The tier-1 gate: full suite, stop at first failure, quiet output —
# then the bench-regression gate over the recorded BENCH_* trajectory
# (check-only: `make bench-check` is the target that appends history).
verify:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q
	PYTHONPATH=src $(PYTHON) -m repro.experiments.reshard --check
	PYTHONPATH=src $(PYTHON) -m repro.experiments.cluster --check
	PYTHONPATH=src $(PYTHON) -m repro.experiments.adversary --check
	PYTHONPATH=src $(PYTHON) -m repro.experiments.federation --check
	$(MAKE) trace-check
	PYTHONPATH=src $(PYTHON) -m repro.obs.benchguard --no-update

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Sharded-store replay benchmark; writes BENCH_store.json at the root.
store-bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_store_sharding.py --benchmark-only

# Observability gate: the obs test suite plus the guard that the
# disabled registry adds <2% to fastsim.simulate_misses (writes
# BENCH_obs.json at the root).
obs-check:
	PYTHONPATH=src $(PYTHON) -m pytest tests/obs -q
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_obs_overhead.py -q -s

# Serving gate: the serve test suite plus the two-phase smoke load
# (all-ok at low rate, explicit rejects with full accounting under
# overload); exits nonzero on any contract violation.
serve-check:
	PYTHONPATH=src $(PYTHON) -m pytest tests/serve -q
	PYTHONPATH=src $(PYTHON) -m repro.serve.smoke

# Serving benchmark: closed-loop throughput + per-scheme open-loop
# tail latency; writes BENCH_serve.json at the root.
serve-bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_serve.py -q -s

# Health gate: the SLO burn-rate fault drill + hash-quality drift
# drill; exits nonzero unless every watchdog check holds.
health-check:
	PYTHONPATH=src $(PYTHON) -m repro.experiments.health --check

# Tracing gate: the serving drill with request tracing on (per-scheme
# stage decompositions must explain >=90% of measured wall time), the
# cluster drill likewise, and the health drill's SLO page must leave a
# journaled flight dump with a complete slow-trace waterfall.
trace-check:
	PYTHONPATH=src $(PYTHON) -m repro.experiments.serving --trace --check --scale 0.25
	PYTHONPATH=src $(PYTHON) -m repro.experiments.cluster --trace --check --scale 0.25
	PYTHONPATH=src $(PYTHON) -m repro.experiments.health --check --scale 0.5

# Reshard gate: live prime-ladder resize under zipfian traffic; exits
# nonzero unless the reshard contract holds (zero key loss, bounded
# in-flight moves, Figure 5 ordering preserved post-resize).
reshard-check:
	PYTHONPATH=src $(PYTHON) -m repro.experiments.reshard --check

# Online-reshard benchmark: migration drain rate + during-migration
# throughput; writes BENCH_reshard.json at the root.
reshard-bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_reshard.py -q -s

# Cluster gate: multi-node drill — kill the hottest node under live
# zipfian traffic, serve through the outage on quorum reads, recover
# with bounded re-replication; exits nonzero unless the cluster
# contract holds (zero key loss, no failed reads during the outage,
# budgeted drain chunks, Figure 5 ordering on the composed map).
cluster-check:
	PYTHONPATH=src $(PYTHON) -m repro.experiments.cluster --check

# Cluster benchmark: healthy-ring replicated-op throughput, during-
# loss rps and simulated p99, re-replication drain rate; writes
# BENCH_cluster.json at the root.
cluster-bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_cluster.py -q -s

# Attack/defense drill: black-box cracks per scheme, hostile-trace
# page, keyed rotation; exits nonzero unless the adversary contract
# holds (exact linear recovery, >=5x prime probe cost, zero-loss
# rotation back to green).
adversary-check:
	PYTHONPATH=src $(PYTHON) -m repro.experiments.adversary --check

# Attack-economics benchmark: probes-to-crack per scheme and wall-time
# from adversarial page to journaled mitigation; writes
# BENCH_adversary.json at the root.
adversary-bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_adversary.py -q -s

# Federation drill: cluster-wide quantile merging, federated-vs-local
# paging, TSDB retention, scrape overhead; exits nonzero unless every
# contract check holds.
fed-check:
	PYTHONPATH=src $(PYTHON) -m repro.experiments.federation --check

# Telemetry-plane benchmark: scrape sweep rate, merge cost per series,
# TSDB append throughput; writes BENCH_fed.json at the root.
fed-bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_fed.py -q -s

# Bench-regression gate: compare the current BENCH_*.json headline
# metrics against the BENCH_history.json trajectory (median of prior
# runs, noise floor, Mann-Kendall trend pass over the full series);
# clean runs append themselves to the history.
bench-check:
	PYTHONPATH=src $(PYTHON) -m repro.obs.benchguard

# Theil-Sen slope table for every BENCH_history series (read-only).
bench-trend:
	PYTHONPATH=src $(PYTHON) -m repro.obs.benchguard --trend-table

# Render the health dashboard (self-contained HTML) from whatever
# BENCH_*.json / history live at the root.
dash:
	PYTHONPATH=src $(PYTHON) -m repro.obs.dash --bench-root . --out dashboard.html

# Regenerate every registered table/figure through the uniform
# registry CLI, persisting results under $(CACHE_DIR) so re-runs are
# incremental; artifacts land in artifacts/<name>.json.
figures:
	@mkdir -p artifacts
	@set -e; for exp in $$(PYTHONPATH=src $(PYTHON) -m repro.experiments list | cut -d' ' -f1); do \
		echo "== $$exp"; \
		PYTHONPATH=src $(PYTHON) -m repro.experiments $$exp \
			--scale $(SCALE) --jobs $(JOBS) --cache-dir $(CACHE_DIR) \
			--artifact artifacts/$$exp.json >/dev/null; \
	done
	@echo "artifacts written to artifacts/"

# Full-scale regeneration of every paper table and figure (~minutes).
eval:
	$(PYTHON) examples/paper_evaluation.py --scale 1.0

# Machine-generated markdown report (reduced scale for quick turnaround).
report:
	$(PYTHON) -m repro.reporting.report --scale 0.5 > report.md

examples:
	for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache report.md \
		.repro-cache artifacts dashboard.html
	find . -name __pycache__ -type d -exec rm -rf {} +

# Convenience targets for the prime-indexing reproduction.

PYTHON ?= python

.PHONY: install test bench eval report examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Full-scale regeneration of every paper table and figure (~minutes).
eval:
	$(PYTHON) examples/paper_evaluation.py --scale 1.0

# Machine-generated markdown report (reduced scale for quick turnaround).
report:
	$(PYTHON) -m repro.reporting.report --scale 0.5 > report.md

examples:
	for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache report.md
	find . -name __pycache__ -type d -exec rm -rf {} +

"""Tests for the four single-hash indexing functions."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.hashing import (
    PrimeDisplacementIndexing,
    PrimeModuloIndexing,
    TraditionalIndexing,
    XorIndexing,
    available_indexings,
    make_indexing,
)

ADDRS = st.integers(min_value=0, max_value=2**32 - 1)


@pytest.fixture(params=["traditional", "xor", "pmod", "pdisp"])
def indexing(request):
    return make_indexing(request.param, 2048)


class TestCommonContract:
    def test_registry_lists_all_functions(self):
        assert available_indexings() == [
            "gf2", "keyed", "keyed_pdisp", "multiplicative", "pdisp",
            "pmod", "traditional", "xor", "xorfold",
        ]

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError, match="unknown indexing"):
            make_indexing("nope", 2048)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            TraditionalIndexing(2039)

    def test_index_in_range(self, indexing):
        for addr in (0, 1, 2047, 2048, 123456789, 2**31 - 1):
            assert 0 <= indexing.index(addr) < indexing.n_sets

    def test_vectorized_matches_scalar(self, indexing):
        rng = np.random.default_rng(7)
        addrs = rng.integers(0, 2**32, size=4096, dtype=np.uint64)
        vec = indexing.index_array(addrs)
        scalar = [indexing.index(int(a)) for a in addrs]
        assert vec.tolist() == scalar

    def test_deterministic(self, indexing):
        assert indexing.index(987654321) == indexing.index(987654321)

    def test_repr_mentions_geometry(self, indexing):
        assert "2048" in repr(indexing)


class TestTraditional:
    def test_is_low_bits(self):
        trad = TraditionalIndexing(2048)
        assert trad.index(0x12345) == 0x12345 % 2048

    def test_no_fragmentation(self):
        assert TraditionalIndexing(2048).fragmentation == 0.0

    @given(ADDRS)
    def test_equals_modulo(self, addr):
        assert TraditionalIndexing(1024).index(addr) == addr % 1024


class TestXor:
    def test_tag_xor_index(self):
        xor = XorIndexing(16)
        # a = t|x with t=0b0011, x=0b0101 -> 0b0110
        assert xor.index((0b0011 << 4) | 0b0101) == 0b0110

    def test_paper_pathological_stride(self):
        """Paper Section 3.3: s = n_set - 1 = 15 with 16 sets maps the
        sweep onto sets 0, 15, 15, 15, ..."""
        xor = XorIndexing(16)
        sets = [xor.index(i * 15) for i in range(16)]
        assert sets[0] == 0
        assert all(s == 15 for s in sets[1 : 16]) is False or sets.count(15) > 8
        # the distribution is degenerate: far fewer than 16 distinct sets
        assert len(set(sets)) < 8

    @given(ADDRS)
    def test_same_set_iff_tagxor_matches(self, addr):
        xor = XorIndexing(2048)
        t = (addr >> 11) & 2047
        x = addr & 2047
        assert xor.index(addr) == t ^ x


class TestPrimeModulo:
    def test_default_prime_table1(self):
        for phys, prime in [(256, 251), (2048, 2039), (8192, 8191)]:
            assert PrimeModuloIndexing(phys).n_sets == prime

    def test_delta(self):
        assert PrimeModuloIndexing(2048).delta == 9

    def test_explicit_n_sets(self):
        pm = PrimeModuloIndexing(2048, n_sets=2047)
        assert pm.n_sets == 2047

    def test_invalid_n_sets(self):
        with pytest.raises(ValueError):
            PrimeModuloIndexing(2048, n_sets=4096)
        with pytest.raises(ValueError):
            PrimeModuloIndexing(2048, n_sets=0)

    def test_fragmentation_paper_values(self):
        assert PrimeModuloIndexing(2048).fragmentation == pytest.approx(9 / 2048)
        assert PrimeModuloIndexing(8192).fragmentation == pytest.approx(1 / 8192)

    @given(ADDRS)
    def test_equals_true_modulo(self, addr):
        assert PrimeModuloIndexing(2048).index(addr) == addr % 2039

    def test_never_uses_fragmented_sets(self):
        pm = PrimeModuloIndexing(2048)
        rng = np.random.default_rng(3)
        addrs = rng.integers(0, 2**32, size=100000, dtype=np.uint64)
        assert int(pm.index_array(addrs).max()) < 2039


class TestPrimeDisplacement:
    def test_default_constant_is_nine(self):
        assert PrimeDisplacementIndexing(2048).displacement == 9

    def test_rejects_even_displacement(self):
        with pytest.raises(ValueError, match="odd"):
            PrimeDisplacementIndexing(2048, displacement=10)

    def test_formula(self):
        pd = PrimeDisplacementIndexing(2048, displacement=9)
        addr = (37 << 11) | 123
        assert pd.index(addr) == (9 * 37 + 123) % 2048

    def test_depends_only_on_truncated_tag(self):
        """p·T mod 2^k depends only on T mod 2^k — this is why the paper
        can implement pDisp with a *narrow truncated* multiply-add
        regardless of machine address width (Section 3.2)."""
        pd = PrimeDisplacementIndexing(2048, displacement=9)
        a = (37 << 11) | 123
        b = a + (1 << 22)  # adds a multiple of 2^11 to the tag
        assert pd.index(a) == pd.index(b)

    def test_distinguishes_tags_in_low_chunk(self):
        pd = PrimeDisplacementIndexing(2048, displacement=9)
        a = (37 << 11) | 123
        b = (38 << 11) | 123  # same x, tag differs by 1 -> set differs by 9
        assert pd.index(b) == (pd.index(a) + 9) % 2048

    @given(ADDRS, st.sampled_from([9, 19, 31, 37]))
    def test_formula_property(self, addr, p):
        pd = PrimeDisplacementIndexing(2048, displacement=p)
        assert pd.index(addr) == (p * (addr >> 11) + (addr & 2047)) % 2048

    def test_bijective_within_tag_group(self):
        """For a fixed tag, displacement is a permutation of the sets."""
        pd = PrimeDisplacementIndexing(256)
        tag = 77
        sets = {pd.index((tag << 8) | x) for x in range(256)}
        assert len(sets) == 256

"""Tests for the skewed-cache bank hashing families."""

import pytest
from hypothesis import given, strategies as st

from repro.hashing import (
    PAPER_BANK_DISPLACEMENTS,
    SkewedPrimeDisplacementFamily,
    SkewedXorFamily,
)
from repro.mathutil import circular_shift_left

ADDRS = st.integers(min_value=0, max_value=2**32 - 1)


class TestFamilyContract:
    @pytest.fixture(params=[SkewedXorFamily, SkewedPrimeDisplacementFamily])
    def family(self, request):
        return request.param(2048, 4)

    def test_indices_in_range(self, family):
        for addr in (0, 1, 2047, 123456789):
            for idx in family.indices(addr):
                assert 0 <= idx < 2048

    def test_indices_length_matches_banks(self, family):
        assert len(family.indices(42)) == 4

    def test_bank_out_of_range(self, family):
        with pytest.raises(IndexError):
            family.bank_index(4, 0)
        with pytest.raises(IndexError):
            family.bank_index(-1, 0)

    def test_rejects_single_bank(self):
        with pytest.raises(ValueError, match="at least 2 banks"):
            SkewedXorFamily(2048, 1)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError, match="power of two"):
            SkewedXorFamily(2039, 4)


class TestSkewedXor:
    def test_bank0_is_plain_xor(self):
        fam = SkewedXorFamily(2048, 4)
        addr = (0b10000000001 << 11) | 0b00000000111
        assert fam.bank_index(0, addr) == 0b10000000001 ^ 0b00000000111

    def test_banks_use_rotated_tag(self):
        fam = SkewedXorFamily(2048, 4)
        addr = (0b10000000001 << 11) | 0b00000000111
        for bank in range(4):
            expected = circular_shift_left(0b10000000001, bank, 11) ^ 0b00000000111
            assert fam.bank_index(bank, addr) == expected

    @given(ADDRS)
    def test_interbank_dispersion_exists(self, addr):
        """Conflicting in every bank simultaneously should be rare: for a
        random second address that matches bank 0, it typically differs
        somewhere else.  Weak check: the four bank indices of one address
        are not all equal unless tag rotation is degenerate."""
        fam = SkewedXorFamily(2048, 4)
        idx = fam.indices(addr)
        tag = (addr >> 11) & 2047
        if tag not in (0, 2047):  # rotation-invariant tags are the exceptions
            assert len(set(idx)) > 1 or tag == 0


class TestSkewedPrimeDisplacement:
    def test_paper_constants(self):
        fam = SkewedPrimeDisplacementFamily(2048, 4)
        assert fam.displacements == (9, 19, 31, 37)
        assert PAPER_BANK_DISPLACEMENTS == (9, 19, 31, 37)

    def test_formula_per_bank(self):
        fam = SkewedPrimeDisplacementFamily(2048, 4)
        addr = (55 << 11) | 99
        for bank, p in enumerate((9, 19, 31, 37)):
            assert fam.bank_index(bank, addr) == (p * 55 + 99) % 2048

    def test_rejects_even_constant(self):
        with pytest.raises(ValueError, match="odd"):
            SkewedPrimeDisplacementFamily(2048, 2, displacements=(9, 10))

    def test_rejects_duplicate_constants(self):
        with pytest.raises(ValueError, match="distinct"):
            SkewedPrimeDisplacementFamily(2048, 2, displacements=(9, 9))

    def test_rejects_too_few_constants(self):
        with pytest.raises(ValueError, match="need 4"):
            SkewedPrimeDisplacementFamily(2048, 4, displacements=(9, 19))

    def test_custom_constants(self):
        fam = SkewedPrimeDisplacementFamily(1024, 2, displacements=(3, 5))
        addr = (7 << 10) | 1
        assert fam.bank_index(0, addr) == (3 * 7 + 1) % 1024
        assert fam.bank_index(1, addr) == (5 * 7 + 1) % 1024

    @given(ADDRS)
    def test_banks_disagree_for_most_addresses(self, addr):
        """Blocks mapping to the same set in one bank should usually map
        to different sets in another — the point of skewing."""
        fam = SkewedPrimeDisplacementFamily(2048, 4)
        tag = addr >> 11
        # Displacement differences are all 2·odd, so banks can only
        # fully agree when tag ≡ 0 (mod 1024).
        if tag % 1024 != 0:
            idx = fam.indices(addr)
            assert len(set(idx)) > 1

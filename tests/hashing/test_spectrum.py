"""Tests for the stride-spectrum analysis."""

import numpy as np
import pytest

from repro.hashing import (
    recommend_indexing,
    score_indexings,
    stride_spectrum,
)
from repro.trace import strided_stream


def blocks_of(stream):
    return np.asarray(stream, dtype=np.uint64) >> np.uint64(6)


class TestStrideSpectrum:
    def test_pure_stride_detected(self):
        blocks = blocks_of(strided_stream(0, 64 * 7, 1000))
        spectrum = stride_spectrum(blocks)
        assert spectrum[0].stride == 7
        assert spectrum[0].weight == pytest.approx(1.0)

    def test_mixed_strides_weighted(self):
        a = blocks_of(strided_stream(0, 64 * 2, 901))
        b = blocks_of(strided_stream(1 << 20, 64 * 5, 101))
        blocks = np.concatenate([a, b])
        spectrum = stride_spectrum(blocks)
        strides = {c.stride: c.weight for c in spectrum}
        assert strides[2] > strides[5] > 0.05

    def test_zero_deltas_ignored(self):
        blocks = np.array([5, 5, 5, 6, 6, 7], dtype=np.uint64)
        spectrum = stride_spectrum(blocks)
        assert all(c.stride > 0 for c in spectrum)

    def test_short_stream(self):
        assert stride_spectrum(np.array([1], dtype=np.uint64)) == []

    def test_constant_stream(self):
        assert stride_spectrum(np.full(10, 3, dtype=np.uint64)) == []

    def test_min_weight_cutoff(self):
        a = blocks_of(strided_stream(0, 64, 10000))
        b = blocks_of(strided_stream(1 << 24, 64 * 3, 5))
        spectrum = stride_spectrum(np.concatenate([a, b]), min_weight=0.01)
        assert all(c.weight >= 0.01 for c in spectrum)


class TestScoring:
    def test_empty_spectrum_is_neutral(self):
        scores = score_indexings([])
        assert all(v == 1.0 for v in scores.values())

    def test_power_of_two_stride_flags_traditional(self):
        blocks = blocks_of(strided_stream(0, 64 * 2048, 2000))
        spectrum = stride_spectrum(blocks)
        scores = score_indexings(spectrum)
        assert scores["traditional"] > 100
        assert scores["pmod"] < 1.2

    def test_unit_stride_everyone_fine(self):
        blocks = blocks_of(strided_stream(0, 64, 5000))
        scores = score_indexings(stride_spectrum(blocks))
        assert all(v < 1.2 for v in scores.values())


class TestRecommendation:
    def test_recommends_traditional_for_odd_strides(self):
        blocks = blocks_of(strided_stream(0, 64 * 3, 5000))
        assert recommend_indexing(blocks) == "traditional"

    def test_recommends_a_rehash_for_set_aliasing(self):
        """Any of the alternative hashes handles a pure set-alias
        stride; the predictor must not pick traditional."""
        blocks = blocks_of(strided_stream(0, 64 * 2048, 3000))
        assert recommend_indexing(blocks) != "traditional"

    def test_recommends_rehash_for_tree(self):
        from repro.workloads import get_workload
        trace = get_workload("bt").trace(scale=0.05, seed=0)
        rec = recommend_indexing(trace.block_addresses(64))
        assert rec in ("pmod", "pdisp", "xor")

"""Tests for the keyed (secret) indexing functions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hashing import (
    MERSENNE_PRIME,
    KeyedDisplacementIndexing,
    KeyedMersenneIndexing,
    XorIndexing,
    derive_constants,
    make_indexing,
    mersenne_fold,
    sequence_invariance_violations,
    strided_addresses,
)

KEYS = (0, 1, 0xDEADBEEF, 0x9E3779B97F4A7C15, 2**64 - 1)


class TestDeriveConstants:
    @pytest.mark.parametrize("key", KEYS)
    def test_bounds(self, key):
        a, b = derive_constants(key)
        assert 0 < a < MERSENNE_PRIME
        assert a % 2 == 1
        assert 0 <= b < MERSENNE_PRIME

    def test_related_keys_yield_unrelated_constants(self):
        """blake2b whitening: k and k+1 must not produce nearby
        multipliers an attacker could extrapolate between."""
        a0, b0 = derive_constants(100)
        a1, b1 = derive_constants(101)
        assert a0 != a1 and b0 != b1
        assert abs(a0 - a1) > 1 << 32

    def test_deterministic(self):
        assert derive_constants(42) == derive_constants(42)


class TestMersenneFold:
    @pytest.mark.parametrize("value", [
        0, 1, MERSENNE_PRIME - 1, MERSENNE_PRIME, MERSENNE_PRIME + 1,
        (1 << 122) - 1, MERSENNE_PRIME**2,
    ])
    def test_edge_values(self, value):
        assert mersenne_fold(value) == value % MERSENNE_PRIME

    @settings(max_examples=200, deadline=None)
    @given(st.integers(min_value=0, max_value=(1 << 122) - 1))
    def test_matches_modulo(self, value):
        assert mersenne_fold(value) == value % MERSENNE_PRIME


class TestKeyedMersenne:
    def test_matches_naive_bigint_hash(self):
        """The 31-bit-split uint64 vector path computes exactly
        ``((a·x + b) mod p) mod n_set`` — checked against unbounded
        Python integers."""
        fn = KeyedMersenneIndexing(2048, key=0xDEADBEEF)
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 2**64, size=4096, dtype=np.uint64)
        expected = [
            ((fn.multiplier * (int(a) % MERSENNE_PRIME) + fn.offset)
             % MERSENNE_PRIME) % fn.n_sets
            for a in addrs
        ]
        assert fn.index_array(addrs).tolist() == expected

    @pytest.mark.parametrize("key", KEYS)
    def test_vectorized_matches_scalar_for_every_key(self, key):
        fn = KeyedMersenneIndexing(256, key=key)
        rng = np.random.default_rng(3)
        addrs = rng.integers(0, 2**64, size=2048, dtype=np.uint64)
        assert fn.index_array(addrs).tolist() == [
            fn.index(int(a)) for a in addrs
        ]

    def test_exact_prime_set_count(self):
        fn = KeyedMersenneIndexing(64, n_sets=61)
        assert fn.n_sets == 61
        addrs = np.arange(100_000, dtype=np.uint64)
        sets = fn.index_array(addrs)
        assert sets.min() >= 0 and sets.max() < 61

    def test_rejects_bad_set_count(self):
        with pytest.raises(ValueError, match="n_sets"):
            KeyedMersenneIndexing(64, n_sets=65)


class TestKeyedDisplacement:
    @pytest.mark.parametrize("key", KEYS)
    def test_vectorized_matches_scalar_for_every_key(self, key):
        fn = KeyedDisplacementIndexing(2048, key=key)
        rng = np.random.default_rng(5)
        addrs = rng.integers(0, 2**64, size=2048, dtype=np.uint64)
        assert fn.index_array(addrs).tolist() == [
            fn.index(int(a)) for a in addrs
        ]

    def test_displacement_is_odd(self):
        """Odd d is invertible mod 2^b — the precondition for pDisp's
        Property 2 argument to carry over to the keyed variant."""
        for key in KEYS:
            assert KeyedDisplacementIndexing(512, key=key).displacement % 2 == 1

    def test_property2_partial_invariance(self):
        """Section 3 Property 2: the keyed displacement keeps pDisp's
        partial sequence invariance — far fewer violations than XOR on
        the paper's strided sequences, for any secret."""
        xor = XorIndexing(2048)
        addrs = strided_addresses(3, 20000)
        v_xor = sequence_invariance_violations(xor, addrs)
        for key in (1, 0xDEADBEEF):
            kd = KeyedDisplacementIndexing(2048, key=key)
            assert sequence_invariance_violations(kd, addrs) < v_xor


class TestRekeying:
    @pytest.mark.parametrize("scheme", ["keyed", "keyed_pdisp"])
    def test_rekeyed_preserves_geometry(self, scheme):
        fn = make_indexing(scheme, 1024)
        fresh = fn.rekeyed(12345)
        assert type(fresh) is type(fn)
        assert fresh.n_sets == fn.n_sets
        assert fresh.n_sets_physical == fn.n_sets_physical
        assert fresh.key == 12345

    def test_rekeyed_preserves_exact_prime_count(self):
        fn = KeyedMersenneIndexing(64, n_sets=61)
        assert fn.rekeyed(7).n_sets == 61

    @pytest.mark.parametrize("scheme", ["keyed", "keyed_pdisp"])
    def test_fresh_key_scrambles_the_map(self, scheme):
        """Rotation's whole value: under a new secret most addresses
        land elsewhere, so a learned key->shard table goes stale."""
        fn = make_indexing(scheme, 256)
        fresh = fn.rekeyed(987654321)
        addrs = np.arange(1 << 14, dtype=np.uint64)
        moved = np.count_nonzero(
            fn.index_array(addrs) != fresh.index_array(addrs))
        assert moved > (1 << 14) * 0.9

    @pytest.mark.parametrize("scheme", ["keyed", "keyed_pdisp"])
    def test_same_key_same_map(self, scheme):
        fn = make_indexing(scheme, 256)
        clone = fn.rekeyed(fn.key)
        addrs = np.arange(4096, dtype=np.uint64)
        assert np.array_equal(fn.index_array(addrs),
                              clone.index_array(addrs))

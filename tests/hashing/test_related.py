"""Tests for the related-work hashing functions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hashing import (
    GF2PolynomialIndexing,
    MultiplicativeIndexing,
    XorFoldIndexing,
    balance,
    concentration,
    make_indexing,
    strided_addresses,
)

ADDRS = st.integers(min_value=0, max_value=2**32 - 1)


@pytest.fixture(params=[XorFoldIndexing, GF2PolynomialIndexing,
                        MultiplicativeIndexing])
def indexing(request):
    return request.param(2048)


class TestCommonContract:
    def test_registered(self):
        for key in ("xorfold", "gf2", "multiplicative"):
            assert make_indexing(key, 2048).n_sets == 2048

    def test_index_in_range(self, indexing):
        for addr in (0, 1, 2047, 2048, 123456789, 2**31 - 1):
            assert 0 <= indexing.index(addr) < 2048

    def test_vectorized_matches_scalar(self, indexing):
        rng = np.random.default_rng(23)
        addrs = rng.integers(0, 2**32, size=2048, dtype=np.uint64)
        assert indexing.index_array(addrs).tolist() == \
            [indexing.index(int(a)) for a in addrs]

    def test_no_fragmentation(self, indexing):
        assert indexing.fragmentation == 0.0


class TestXorFold:
    def test_folds_all_chunks(self):
        xf = XorFoldIndexing(2048)
        addr = (5 << 22) | (7 << 11) | 9
        assert xf.index(addr) == 5 ^ 7 ^ 9

    def test_rejects_narrow_address(self):
        with pytest.raises(ValueError):
            XorFoldIndexing(2048, address_bits=4)

    @given(ADDRS)
    def test_low_bits_identity_for_small_addresses(self, addr):
        xf = XorFoldIndexing(2048)
        if addr < 2048:
            assert xf.index(addr) == addr


class TestGF2Polynomial:
    def test_linear_over_gf2(self):
        """H(a ^ b) == H(a) ^ H(b): the defining property."""
        gf = GF2PolynomialIndexing(2048)
        rng = np.random.default_rng(3)
        for a, b in rng.integers(0, 2**30, size=(200, 2)):
            assert gf.index(int(a) ^ int(b)) == gf.index(int(a)) ^ gf.index(int(b))

    def test_identity_below_degree(self):
        gf = GF2PolynomialIndexing(2048)
        for a in (0, 1, 1000, 2047):
            assert gf.index(a) == a

    def test_reduction_at_degree(self):
        """x^11 mod (x^11 + x^2 + 1) = x^2 + 1."""
        gf = GF2PolynomialIndexing(2048)
        assert gf.index(2048) == 0b101

    def test_custom_polynomial(self):
        gf = GF2PolynomialIndexing(16, polynomial=0b0011)  # x^4 + x + 1
        assert gf.index(16) == 0b0011

    def test_missing_default_polynomial(self):
        with pytest.raises(ValueError, match="irreducible"):
            GF2PolynomialIndexing(2 ** 20)

    def test_balance_good_on_power_of_two_strides(self):
        gf = GF2PolynomialIndexing(2048)
        for s in (2, 4, 512, 2048):
            assert balance(gf, strided_addresses(s, 32768)) < 1.1

    def test_not_sequence_invariant_hence_nonzero_concentration(self):
        gf = GF2PolynomialIndexing(2048)
        assert concentration(gf, strided_addresses(3, 20000)) > 0


class TestMultiplicative:
    def test_rejects_even_multiplier(self):
        with pytest.raises(ValueError):
            MultiplicativeIndexing(2048, multiplier=2)

    def test_spreads_sequential_addresses(self):
        mult = MultiplicativeIndexing(2048)
        sets = {mult.index(a) for a in range(2048)}
        assert len(sets) > 1500  # near-uniform scatter

    def test_balance_near_ideal_for_unit_stride(self):
        mult = MultiplicativeIndexing(2048)
        assert balance(mult, strided_addresses(1, 32768)) < 1.2

    @given(ADDRS)
    def test_matches_manual_formula(self, addr):
        mult = MultiplicativeIndexing(2048)
        expected = ((addr * 0x9E3779B97F4A7C15) % (1 << 64)) >> 53
        assert mult.index(addr) == expected


class TestPathologyComparison:
    def test_none_of_them_is_sequence_invariant(self):
        """Section 6's point: the pseudo-random family trades the
        concentration guarantee away; pMod keeps it."""
        from repro.hashing import PrimeModuloIndexing, is_sequence_invariant
        addrs = strided_addresses(5, 20000)
        assert is_sequence_invariant(PrimeModuloIndexing(2048), addrs)
        for cls in (XorFoldIndexing, GF2PolynomialIndexing,
                    MultiplicativeIndexing):
            assert not is_sequence_invariant(cls(2048), addrs), cls.__name__

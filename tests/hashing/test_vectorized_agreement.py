"""Scalar vs numpy-vectorized agreement for every registered scheme.

The store's hot path (and the Figure 5/6 sweeps) run exclusively on
``index_array``; the cache models run exclusively on scalar ``index``.
This property test pins the two paths together for *every* registered
indexing function, across geometries, on randomized address batches
with fixed seeds — so a vectorization bug in any scheme fails loudly
instead of skewing a figure.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hashing import available_indexings, make_indexing

GEOMETRIES = (16, 256, 2048, 8192)
SEEDS = (0, 7, 1234)

# gf2 precomputes one XOR column per address bit (default 32), so the
# shared address space for the cross-scheme sweep is 32-bit.
MAX_ADDRESS = 2**32 - 1


@pytest.mark.parametrize("key", available_indexings())
@pytest.mark.parametrize("n_sets_physical", GEOMETRIES)
def test_vectorized_matches_scalar_on_random_batches(key, n_sets_physical):
    indexing = make_indexing(key, n_sets_physical)
    for seed in SEEDS:
        rng = np.random.default_rng(seed)
        addrs = rng.integers(0, MAX_ADDRESS, size=2048, dtype=np.uint64)
        vectorized = indexing.index_array(addrs)
        scalar = np.fromiter((indexing.index(int(a)) for a in addrs),
                             dtype=np.int64, count=len(addrs))
        assert np.array_equal(vectorized, scalar), (
            f"{key} @ {n_sets_physical} sets: vectorized path diverged"
        )
        assert vectorized.min() >= 0
        assert vectorized.max() < indexing.n_sets


@pytest.mark.parametrize("key", available_indexings())
def test_vectorized_matches_scalar_on_edge_addresses(key):
    """Boundary addresses: zeros, set-count multiples, max-bit patterns."""
    indexing = make_indexing(key, 2048)
    edges = np.array(
        [0, 1, 2047, 2048, 2049, 2**31 - 1, 2**31, 2**32 - 1,
         2039 * 12345],
        dtype=np.uint64,
    )
    assert indexing.index_array(edges).tolist() == [
        indexing.index(int(a)) for a in edges
    ]


@settings(max_examples=50, deadline=None)
@given(
    key=st.sampled_from(available_indexings()),
    addrs=st.lists(st.integers(min_value=0, max_value=MAX_ADDRESS),
                   min_size=1, max_size=64),
)
def test_vectorized_matches_scalar_property(key, addrs):
    indexing = make_indexing(key, 256)
    batch = np.array(addrs, dtype=np.uint64)
    assert indexing.index_array(batch).tolist() == [
        indexing.index(a) for a in addrs
    ]

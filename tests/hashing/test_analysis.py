"""Tests for balance, concentration, sequence invariance, uniformity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hashing import (
    PrimeDisplacementIndexing,
    PrimeModuloIndexing,
    TraditionalIndexing,
    XorIndexing,
    access_counts,
    balance,
    balance_from_counts,
    concentration,
    concentration_from_sets,
    is_sequence_invariant,
    reuse_distances,
    sequence_invariance_violations,
    strided_addresses,
    uniformity,
)


class TestStridedAddresses:
    def test_basic(self):
        assert strided_addresses(3, 4, base=10).tolist() == [10, 13, 16, 19]

    def test_rejects_zero_stride(self):
        with pytest.raises(ValueError):
            strided_addresses(0, 10)

    def test_rejects_non_positive_count(self):
        with pytest.raises(ValueError):
            strided_addresses(1, 0)


class TestBalance:
    def test_perfectly_even_counts_is_near_one(self):
        counts = np.full(2048, 16)
        assert balance_from_counts(counts) == pytest.approx(1.0, abs=0.07)

    def test_degenerate_counts_is_large(self):
        counts = np.zeros(2048)
        counts[0] = 2048 * 16
        assert balance_from_counts(counts) > 100

    def test_empty_counts_rejected(self):
        with pytest.raises(ValueError):
            balance_from_counts(np.array([]))

    def test_zero_accesses_rejected(self):
        with pytest.raises(ValueError):
            balance_from_counts(np.zeros(16))

    def test_traditional_unit_stride_ideal(self):
        trad = TraditionalIndexing(2048)
        assert balance(trad, strided_addresses(1, 65536)) == pytest.approx(1.0, abs=0.05)

    def test_traditional_even_stride_bad(self):
        """Paper Property 1: gcd(s, n_set) > 1 ruins the balance."""
        trad = TraditionalIndexing(2048)
        assert balance(trad, strided_addresses(2, 65536)) > 1.5
        assert balance(trad, strided_addresses(512, 65536)) > 100

    def test_pmod_good_on_even_strides(self):
        pm = PrimeModuloIndexing(2048)
        for s in (2, 4, 8, 512, 1024):
            assert balance(pm, strided_addresses(s, 65536)) == pytest.approx(1.0, abs=0.05)

    def test_pmod_fails_only_at_multiples_of_prime(self):
        pm = PrimeModuloIndexing(2048)
        assert balance(pm, strided_addresses(2039, 65536)) > 100
        assert balance(pm, strided_addresses(2 * 2039, 65536)) > 100

    def test_pdisp_good_on_even_strides(self):
        pd = PrimeDisplacementIndexing(2048)
        for s in (2, 4, 16, 256):
            assert balance(pd, strided_addresses(s, 65536)) == pytest.approx(1.0, abs=0.05)

    def test_xor_pathological_stride(self):
        """s = n_set - 1 degenerates XOR indexing (paper Section 3.3)."""
        xor = XorIndexing(2048)
        assert balance(xor, strided_addresses(2047, 65536)) > 10


class TestReuseDistances:
    def test_round_robin(self):
        sets = np.array([0, 1, 2, 0, 1, 2])
        assert sorted(reuse_distances(sets).tolist()) == [3, 3, 3]

    def test_single_access(self):
        assert len(reuse_distances(np.array([5]))) == 0

    def test_no_reuse(self):
        assert len(reuse_distances(np.array([0, 1, 2, 3]))) == 0

    def test_burst(self):
        sets = np.array([7, 7, 7])
        assert reuse_distances(sets).tolist() == [1, 1]


class TestConcentration:
    def test_ideal_round_robin_is_zero(self):
        sets = np.tile(np.arange(16), 100)
        assert concentration_from_sets(sets, 16) == 0.0

    def test_burst_pattern_is_positive(self):
        sets = np.repeat(np.arange(16), 100)
        assert concentration_from_sets(sets, 16) > 0

    def test_no_distances_is_zero(self):
        assert concentration_from_sets(np.array([1, 2, 3]), 16) == 0.0

    def test_traditional_odd_stride_ideal(self):
        trad = TraditionalIndexing(2048)
        for s in (1, 3, 5, 7, 2047):
            assert concentration(trad, strided_addresses(s, 30000)) == 0.0

    def test_traditional_even_stride_bad(self):
        trad = TraditionalIndexing(2048)
        assert concentration(trad, strided_addresses(2, 30000)) > 100

    def test_pmod_ideal_on_almost_all_strides(self):
        pm = PrimeModuloIndexing(2048)
        for s in (1, 2, 3, 4, 8, 100, 512, 2047):
            assert concentration(pm, strided_addresses(s, 30000)) == pytest.approx(
                0.0, abs=1e-9
            ), f"stride {s}"

    def test_xor_never_ideal_for_nonunit_strides(self):
        xor = XorIndexing(2048)
        assert concentration(xor, strided_addresses(3, 30000)) > 0


class TestSequenceInvariance:
    def test_traditional_is_invariant(self):
        trad = TraditionalIndexing(2048)
        for s in (1, 2, 3, 6, 2047):
            assert is_sequence_invariant(trad, strided_addresses(s, 20000))

    def test_pmod_is_invariant(self):
        pm = PrimeModuloIndexing(2048)
        for s in (1, 2, 3, 6, 2047):
            assert is_sequence_invariant(pm, strided_addresses(s, 20000))

    def test_xor_is_not_invariant(self):
        xor = XorIndexing(2048)
        assert sequence_invariance_violations(xor, strided_addresses(3, 20000)) > 0

    def test_pdisp_is_partially_invariant(self):
        """Paper: all but one set per subsequence keep the implication, so
        violations exist but are far rarer than XOR's."""
        pd = PrimeDisplacementIndexing(2048)
        xor = XorIndexing(2048)
        addrs = strided_addresses(3, 20000)
        v_pd = sequence_invariance_violations(pd, addrs)
        v_xor = sequence_invariance_violations(xor, addrs)
        assert v_pd < v_xor

    def test_short_sequence_trivially_invariant(self):
        xor = XorIndexing(2048)
        assert is_sequence_invariant(xor, strided_addresses(3, 2))

    @settings(max_examples=25)
    @given(st.integers(min_value=1, max_value=5000))
    def test_modulo_functions_invariant_for_any_stride(self, s):
        pm = PrimeModuloIndexing(1024)
        assert is_sequence_invariant(pm, strided_addresses(s, 5000))


class TestUniformity:
    def test_uniform_counts(self):
        rep = uniformity(np.full(2048, 100))
        assert rep.ratio == 0.0
        assert not rep.non_uniform

    def test_concentrated_counts(self):
        counts = np.zeros(2048)
        counts[:100] = 1000
        rep = uniformity(counts)
        assert rep.non_uniform

    def test_threshold_is_paper_half(self):
        assert uniformity(np.full(4, 1)).threshold == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            uniformity(np.array([]))

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            uniformity(np.zeros(16))


class TestAccessCounts:
    def test_counts_sum_to_accesses(self):
        pm = PrimeModuloIndexing(2048)
        addrs = strided_addresses(7, 10000)
        counts = access_counts(pm, addrs)
        assert counts.sum() == 10000
        assert len(counts) == 2039

    def test_traditional_counts_length(self):
        trad = TraditionalIndexing(2048)
        assert len(access_counts(trad, strided_addresses(1, 100))) == 2048

"""Tests for inter-bank dispersion and conflict diagnosis."""

import numpy as np
import pytest

from repro.hashing import (
    PrimeModuloIndexing,
    SkewedPrimeDisplacementFamily,
    SkewedXorFamily,
    TraditionalIndexing,
    inter_bank_dispersion,
    top_conflict_sets,
)
from repro.hashing.base import BankIndexingFamily


class _DegenerateFamily(BankIndexingFamily):
    """Every bank uses the same hash: zero dispersion by construction."""

    name = "degenerate"

    def bank_index(self, bank, block_address):
        return block_address % self.n_sets_per_bank


class TestInterBankDispersion:
    def test_skewed_families_disperse(self):
        for family in (SkewedXorFamily(2048, 4),
                       SkewedPrimeDisplacementFamily(2048, 4)):
            report = inter_bank_dispersion(family, n_samples=20000)
            assert report.pairs_tested > 50
            assert report.disperses, type(family).__name__

    def test_degenerate_family_does_not(self):
        report = inter_bank_dispersion(_DegenerateFamily(256, 4),
                                       n_samples=20000)
        assert report.same_set_pair_rate == 1.0
        assert not report.disperses

    def test_deterministic(self):
        fam = SkewedXorFamily(512, 2)
        a = inter_bank_dispersion(fam, n_samples=5000, seed=3)
        b = inter_bank_dispersion(fam, n_samples=5000, seed=3)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            inter_bank_dispersion(SkewedXorFamily(512, 2), n_samples=1)


class TestTopConflictSets:
    def test_identifies_the_crowded_set(self):
        trad = TraditionalIndexing(64)
        # 10 blocks aliasing set 5, plus background.
        aliases = np.array([5 + 64 * i for i in range(10)], dtype=np.uint64)
        background = np.arange(1000, dtype=np.uint64)
        blocks = np.concatenate([np.tile(aliases, 20), background])
        groups = top_conflict_sets(trad, blocks, top=1)
        assert groups[0].set_index == 5
        assert groups[0].pressure >= 10
        assert set(groups[0].blocks) >= set(int(a) for a in aliases)

    def test_blocks_ranked_by_access_count(self):
        trad = TraditionalIndexing(64)
        blocks = np.array([3] * 10 + [67] * 5 + [131] * 1, dtype=np.uint64)
        groups = top_conflict_sets(trad, blocks, top=1)
        assert groups[0].blocks == (3, 67, 131)

    def test_respects_top_and_listing_caps(self):
        trad = TraditionalIndexing(64)
        blocks = np.arange(6400, dtype=np.uint64)
        groups = top_conflict_sets(trad, blocks, top=3, max_blocks_listed=4)
        assert len(groups) == 3
        assert all(len(g.blocks) <= 4 for g in groups)

    def test_prime_modulo_flattens_tree_pressure(self):
        """The diagnosis view of Figure 13: Base's hottest set carries
        an order of magnitude more distinct blocks than pMod's."""
        from repro.workloads import get_workload
        trace = get_workload("tree").trace(scale=0.1, seed=0)
        blocks = trace.block_addresses(64)
        base_top = top_conflict_sets(TraditionalIndexing(2048), blocks,
                                     top=1, max_blocks_listed=1000)[0]
        pmod_top = top_conflict_sets(PrimeModuloIndexing(2048), blocks,
                                     top=1, max_blocks_listed=1000)[0]
        assert base_top.pressure > 4 * pmod_top.pressure

    def test_validation(self):
        with pytest.raises(ValueError):
            top_conflict_sets(TraditionalIndexing(64),
                              np.arange(4, dtype=np.uint64), top=0)

"""Experiment registry: artifacts, schema conformance, rendering."""

import json

import pytest

from repro.engine import (
    ARTIFACT_SCHEMA_VERSION,
    ExperimentContext,
    RunConfig,
    SimulationEngine,
    all_experiment_names,
    get_experiment,
    render_artifact,
    run_experiment,
    validate_artifact,
)
from repro.experiments import EXPERIMENT_MODULES


def make_context(scale=0.05, cache_dir=None, **params):
    engine = SimulationEngine(RunConfig(scale=scale), cache_dir=cache_dir)
    return ExperimentContext(engine=engine, params=params)


class TestRegistry:
    def test_every_module_registers(self):
        names = all_experiment_names()
        assert set(names) == set(EXPERIMENT_MODULES)

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="fragmentation"):
            get_experiment("nonesuch")

    def test_analysis_only_experiments_flagged(self):
        for name in ("fragmentation", "qualitative", "machine",
                     "stride_sweep"):
            assert not get_experiment(name).uses_simulation
        assert get_experiment("summary").uses_simulation


def check_envelope(artifact, name):
    validate_artifact(artifact)
    assert artifact["schema_version"] == ARTIFACT_SCHEMA_VERSION
    assert artifact["experiment"] == name
    assert artifact["title"] == get_experiment(name).title
    # the whole artifact must survive a JSON round trip unchanged
    assert json.loads(json.dumps(artifact)) == artifact


class TestArtifacts:
    def test_analysis_experiments_conform(self):
        ctx = make_context(n_addresses=256, stride_limit=16, max_stride=16)
        for name in ("fragmentation", "machine", "qualitative",
                     "stride_sweep"):
            artifact = run_experiment(name, ctx)
            check_envelope(artifact, name)
            assert render_artifact(artifact)

    def test_simulation_experiment_conforms(self):
        artifact = run_experiment("miss_distribution", make_context())
        check_envelope(artifact, "miss_distribution")
        assert "tree" in render_artifact(artifact)

    def test_params_recorded_in_config(self):
        ctx = make_context(workload="lu")
        artifact = run_experiment("miss_distribution", ctx)
        assert artifact["config"]["params"] == {"workload": "lu"}
        assert artifact["data"]["workload"] == "lu"

    def test_reloaded_artifact_renders_identically(self, tmp_path):
        artifact = run_experiment("fragmentation", make_context())
        path = tmp_path / "artifact.json"
        path.write_text(json.dumps(artifact))
        reloaded = json.loads(path.read_text())
        assert render_artifact(reloaded) == render_artifact(artifact)

    def test_validate_rejects_bad_artifacts(self):
        artifact = run_experiment("fragmentation", make_context())
        with pytest.raises(ValueError, match="missing keys"):
            validate_artifact({k: v for k, v in artifact.items()
                               if k != "data"})
        with pytest.raises(ValueError, match="schema"):
            validate_artifact({**artifact, "schema_version": 999})


class TestCachedArtifacts:
    def test_cold_and_warm_artifacts_identical(self, tmp_path, monkeypatch):
        cold = run_experiment(
            "miss_distribution", make_context(cache_dir=tmp_path))

        # a warm run must not touch the hierarchy at all
        import repro.experiments.miss_distribution as md
        def boom(*a, **k):
            raise AssertionError("warm run re-simulated")
        monkeypatch.setattr(md, "_measure", boom)

        warm = run_experiment(
            "miss_distribution", make_context(cache_dir=tmp_path))
        assert warm == cold

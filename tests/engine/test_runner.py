"""SimulationEngine: memoization, persistence, trace sharing, grids."""

import pytest

from repro.engine import RunConfig, SimulationEngine
from repro.experiments.common import ResultStore

CONFIG = RunConfig(scale=0.05)


class TestSingleCell:
    def test_matches_result_store(self):
        engine = SimulationEngine(CONFIG)
        store = ResultStore(CONFIG)
        assert engine.result("tree", "pmod") == store.result("tree", "pmod")

    def test_memoizes_in_memory(self):
        engine = SimulationEngine(CONFIG)
        first = engine.result("lu", "base")
        second = engine.result("lu", "base")
        assert first is second
        assert engine.sim_count == 1

    def test_speedup_and_miss_ratio(self):
        engine = SimulationEngine(CONFIG)
        assert engine.speedup("tree", "pmod") > 0
        assert engine.miss_ratio("tree", "pmod") > 0


class TestPersistence:
    def test_warm_cache_runs_zero_simulations(self, tmp_path, monkeypatch):
        cold = SimulationEngine(CONFIG, cache_dir=tmp_path)
        cold.run_grid(["lu", "tree"], ["base", "pmod"])
        assert cold.sim_count == 4

        calls = []
        import repro.engine.runner as runner
        real = runner.simulate_scheme

        def counting(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(runner, "simulate_scheme", counting)
        warm = SimulationEngine(CONFIG, cache_dir=tmp_path)
        grid = warm.run_grid(["lu", "tree"], ["base", "pmod"])
        assert calls == []
        assert warm.sim_count == 0
        assert grid == {
            cell: cold._results[cell] for cell in grid
        }

    def test_cold_and_warm_results_identical(self, tmp_path):
        cold = SimulationEngine(CONFIG, cache_dir=tmp_path)
        original = cold.result("mcf", "pdisp")
        warm = SimulationEngine(CONFIG, cache_dir=tmp_path)
        assert warm.result("mcf", "pdisp") == original

    def test_config_change_invalidates(self, tmp_path):
        SimulationEngine(CONFIG, cache_dir=tmp_path).result("lu", "base")
        other = SimulationEngine(RunConfig(scale=0.08), cache_dir=tmp_path)
        other.result("lu", "base")
        assert other.sim_count == 1  # different key -> fresh simulation

    def test_preload_persists(self, tmp_path):
        source = SimulationEngine(CONFIG)
        results = source.run_grid(["lu"], ["base"])
        sink = SimulationEngine(CONFIG, cache_dir=tmp_path)
        sink.preload(results)
        fresh = SimulationEngine(CONFIG, cache_dir=tmp_path)
        assert fresh.result("lu", "base") == results[("lu", "base")]
        assert fresh.sim_count == 0


class TestTraceSharing:
    def test_each_trace_generated_once(self):
        engine = SimulationEngine(CONFIG)
        engine.run_grid(["lu", "tree"], ["base", "pmod", "xor"])
        assert engine.traces.build_counts["lu"] == 1
        assert engine.traces.build_counts["tree"] == 1

    def test_single_cells_share_the_grid_trace(self):
        engine = SimulationEngine(CONFIG)
        engine.run_grid(["lu"], ["base"])
        engine.result("lu", "pmod")
        assert engine.traces.build_counts["lu"] == 1


class TestParallel:
    def test_parallel_equals_serial(self, tmp_path):
        serial = SimulationEngine(CONFIG)
        parallel = SimulationEngine(CONFIG, jobs=2)
        workloads, schemes = ["lu", "tree", "mcf"], ["base", "pmod"]
        expected = serial.run_grid(workloads, schemes)
        actual = parallel.run_grid(workloads, schemes)
        assert actual == expected

    def test_parallel_fills_the_persistent_cache(self, tmp_path):
        engine = SimulationEngine(CONFIG, cache_dir=tmp_path, jobs=2)
        engine.run_grid(["lu", "tree"], ["base"])
        warm = SimulationEngine(CONFIG, cache_dir=tmp_path)
        warm.run_grid(["lu", "tree"], ["base"])
        assert warm.sim_count == 0

"""SimulationKey: fingerprint stability and invalidation."""

import dataclasses

from repro.cpu import MachineConfig
from repro.engine import (
    RunConfig,
    SimulationKey,
    machine_fingerprint,
)


class TestFingerprint:
    def test_stable_across_instances(self):
        config = RunConfig(scale=0.5, seed=3)
        a = SimulationKey.for_run("tree", "pmod", config)
        b = SimulationKey.for_run("tree", "pmod", config)
        assert a == b
        assert a.fingerprint() == b.fingerprint()
        assert a.stem == b.stem

    def test_every_field_invalidates(self):
        base = SimulationKey.for_run("tree", "pmod", RunConfig())
        variants = [
            SimulationKey.for_run("bt", "pmod", RunConfig()),
            SimulationKey.for_run("tree", "base", RunConfig()),
            SimulationKey.for_run("tree", "pmod", RunConfig(scale=0.5)),
            SimulationKey.for_run("tree", "pmod", RunConfig(seed=1)),
            SimulationKey.for_run(
                "tree", "pmod", RunConfig(skew_replacement="nrunrw")),
            dataclasses.replace(base, schema=base.schema + 1),
        ]
        fingerprints = {v.fingerprint() for v in variants}
        assert base.fingerprint() not in fingerprints
        assert len(fingerprints) == len(variants)

    def test_machine_config_invalidates(self):
        default = machine_fingerprint()
        tweaked = dataclasses.replace(MachineConfig.paper_default(),
                                      issue_width=4)
        assert machine_fingerprint(tweaked) != default
        base = SimulationKey.for_run("tree", "pmod", RunConfig())
        other = SimulationKey.for_run("tree", "pmod", RunConfig(),
                                      machine=tweaked)
        assert base.fingerprint() != other.fingerprint()

    def test_stem_is_filesystem_safe(self):
        key = SimulationKey.for_run("tree", "skw+pdisp", RunConfig())
        assert "/" not in key.stem
        assert key.stem.startswith("tree--skw+pdisp--")

"""ResultCache: persistence, verification, npz sidecars."""

import dataclasses
import json

import numpy as np

from repro.cpu import ExecutionResult
from repro.engine import (
    RESULT_SCHEMA_VERSION,
    ResultCache,
    RunConfig,
    SimulationKey,
)


def make_result(**overrides):
    fields = dict(
        workload="tree", scheme="pmod", busy=400.0, other_stalls=100.0,
        memory_stall=734.5, l1_misses=50, l2_accesses=80, l2_misses=10,
        dram_row_hits=6, dram_row_misses=4,
    )
    fields.update(overrides)
    return ExecutionResult(**fields)


KEY = SimulationKey.for_run("tree", "pmod", RunConfig(scale=0.1))


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        original = make_result()
        cache.put(KEY, original)
        assert cache.writes == 1
        loaded = ResultCache(tmp_path).get(KEY)
        assert loaded == original

    def test_miss_on_absent(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(KEY) is None
        assert cache.misses == 1

    def test_schema_versioned_directory(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(KEY, make_result())
        assert path.parent.name == f"v{RESULT_SCHEMA_VERSION}"

    def test_stored_key_verified_on_load(self, tmp_path):
        """A same-named entry whose embedded key disagrees is a miss."""
        cache = ResultCache(tmp_path)
        path = cache.put(KEY, make_result())
        payload = json.loads(path.read_text())
        payload["key"]["seed"] = 999
        path.write_text(json.dumps(payload))
        assert ResultCache(tmp_path).get(KEY) is None

    def test_corrupt_entry_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(KEY, make_result())
        path.write_text("{not json")
        assert ResultCache(tmp_path).get(KEY) is None

    def test_corrupt_entry_is_discarded(self, tmp_path):
        """Unreadable JSON is deleted so the next run rewrites it."""
        cache = ResultCache(tmp_path)
        path = cache.put(KEY, make_result())
        path.write_text("{not json")
        ResultCache(tmp_path).get(KEY)
        assert not path.exists()

    def test_truncated_entry_is_miss_and_discarded(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(KEY, make_result())
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        fresh = ResultCache(tmp_path)
        assert fresh.get(KEY) is None
        assert fresh.misses == 1
        assert not path.exists()

    def test_wrong_result_shape_is_miss_and_discarded(self, tmp_path):
        """Valid JSON whose result fields don't match ExecutionResult."""
        cache = ResultCache(tmp_path)
        path = cache.put(KEY, make_result())
        payload = json.loads(path.read_text())
        payload["result"] = {"busy": 1.0, "bogus_field": 2.0}
        path.write_text(json.dumps(payload))
        assert ResultCache(tmp_path).get(KEY) is None
        assert not path.exists()

    def test_non_dict_entry_is_miss_and_discarded(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(KEY, make_result())
        path.write_text(json.dumps([1, 2, 3]))
        assert ResultCache(tmp_path).get(KEY) is None
        assert not path.exists()

    def test_mismatched_key_entry_is_kept(self, tmp_path):
        """A well-formed entry for a *different* key must survive."""
        cache = ResultCache(tmp_path)
        path = cache.put(KEY, make_result())
        payload = json.loads(path.read_text())
        payload["key"]["seed"] = 999
        path.write_text(json.dumps(payload))
        assert ResultCache(tmp_path).get(KEY) is None
        assert path.exists()

    def test_config_change_separates_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        other = SimulationKey.for_run("tree", "pmod", RunConfig(scale=0.2))
        cache.put(KEY, make_result())
        cache.put(other, make_result(busy=9.0))
        assert len(list(cache.root.glob("*.json"))) == 2
        assert cache.get(KEY).busy != cache.get(other).busy

    def test_no_tmp_files_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, make_result())
        assert not list(cache.root.glob("*.tmp*"))


class TestPayloadEntries:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_payload(KEY, {"balance": 1.5, "shards": [3, 2, 1]})
        loaded = ResultCache(tmp_path).get_payload(KEY)
        assert loaded == {"balance": 1.5, "shards": [3, 2, 1]}

    def test_absent_is_none(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get_payload(KEY) is None
        assert cache.misses == 1

    def test_does_not_collide_with_result_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, make_result())
        cache.put_payload(KEY, {"kind": "payload"})
        fresh = ResultCache(tmp_path)
        assert fresh.get(KEY) == make_result()
        assert fresh.get_payload(KEY) == {"kind": "payload"}

    def test_corrupt_payload_is_miss_and_discarded(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put_payload(KEY, {"ok": True})
        path.write_text("!!")
        assert ResultCache(tmp_path).get_payload(KEY) is None
        assert not path.exists()

    def test_stored_key_verified(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put_payload(KEY, {"ok": True})
        payload = json.loads(path.read_text())
        payload["key"]["scale"] = 123.0
        path.write_text(json.dumps(payload))
        assert ResultCache(tmp_path).get_payload(KEY) is None


class TestArraySidecars:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        counts = np.arange(2048, dtype=np.int64)
        cache.put_arrays(KEY, set_misses=counts)
        loaded = ResultCache(tmp_path).get_arrays(KEY)
        assert np.array_equal(loaded["set_misses"], counts)

    def test_absent_is_none(self, tmp_path):
        assert ResultCache(tmp_path).get_arrays(KEY) is None

    def test_truncated_npz_is_miss_and_discarded(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put_arrays(KEY, set_misses=np.arange(64))
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        fresh = ResultCache(tmp_path)
        assert fresh.get_arrays(KEY) is None
        assert fresh.misses == 1
        assert not path.exists()

    def test_garbage_npz_is_miss_and_discarded(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put_arrays(KEY, set_misses=np.arange(64))
        path.write_bytes(b"definitely not a zip archive")
        assert ResultCache(tmp_path).get_arrays(KEY) is None
        assert not path.exists()

    def test_shares_stem_with_json_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        json_path = cache.put(KEY, make_result())
        npz_path = cache.put_arrays(KEY, set_misses=np.zeros(4))
        assert json_path.stem == npz_path.stem

"""Tests for repro.mathutil.primes."""

import pytest
from hypothesis import given, strategies as st

from repro.mathutil import (
    is_mersenne_prime,
    is_prime,
    largest_prime_below,
    mersenne_primes_below,
    next_prime,
    prev_prime,
    primes_below,
)
from repro.mathutil.primes import (
    LADDER_INPUT_BOUND,
    MILLER_RABIN_DETERMINISTIC_BOUND,
)


class TestIsPrime:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41):
            assert is_prime(p)

    def test_small_composites(self):
        for n in (0, 1, 4, 6, 8, 9, 10, 15, 21, 25, 27, 33, 49):
            assert not is_prime(n)

    def test_negative(self):
        assert not is_prime(-7)

    def test_paper_table1_primes(self):
        # Every n_set in Table 1 is prime.
        for p in (251, 509, 1021, 2039, 4093, 8191, 16381):
            assert is_prime(p)

    def test_large_carmichael_number(self):
        # 561 = 3 * 11 * 17 is the smallest Carmichael number.
        assert not is_prime(561)
        assert not is_prime(1105)

    def test_large_prime(self):
        assert is_prime(2**31 - 1)  # Mersenne prime M31

    def test_large_composite(self):
        assert not is_prime((2**31 - 1) * (2**13 - 1))

    @given(st.integers(min_value=2, max_value=5000))
    def test_matches_trial_division(self, n):
        trial = all(n % d for d in range(2, int(n**0.5) + 1))
        assert is_prime(n) == trial


class TestPrevNextPrime:
    def test_prev_prime_basic(self):
        assert prev_prime(10) == 7
        assert prev_prime(8) == 7
        assert prev_prime(3) == 2

    def test_prev_prime_of_prime_is_strictly_below(self):
        assert prev_prime(7) == 5

    @pytest.mark.parametrize("n", [2, 1, 0, -10])
    def test_prev_prime_error_at_or_below_two(self, n):
        """There is no prime below 3's predecessor — including zero and
        negative inputs, which a buggy ladder walk could produce."""
        with pytest.raises(ValueError, match="no prime below"):
            prev_prime(n)

    def test_prev_prime_smallest_valid_input(self):
        assert prev_prime(3) == 2

    def test_next_prime_basic(self):
        assert next_prime(1) == 2
        assert next_prime(2) == 3
        assert next_prime(10) == 11
        assert next_prime(13) == 17

    @given(st.integers(min_value=3, max_value=100000))
    def test_prev_prime_is_prime_and_maximal(self, n):
        p = prev_prime(n)
        assert is_prime(p)
        assert p < n
        assert all(not is_prime(q) for q in range(p + 1, n))


class TestLadderBounds:
    """The ladder functions refuse inputs they cannot certify.

    Shard and set counts are 64-bit everywhere in this codebase; past
    2**64 the fixed Miller-Rabin witness set stops being a proof, so
    the ladder raises loudly instead of returning an unproven "prime".
    """

    def test_next_prime_at_the_bound_is_exact(self):
        # 2**64 itself is accepted; the next prime above it is known.
        assert next_prime(LADDER_INPUT_BOUND) == 2**64 + 13

    def test_prev_prime_at_the_bound_is_exact(self):
        assert prev_prime(LADDER_INPUT_BOUND) == 2**64 - 59

    def test_next_prime_beyond_the_bound_raises(self):
        with pytest.raises(ValueError, match="input bound"):
            next_prime(LADDER_INPUT_BOUND + 1)

    def test_prev_prime_beyond_the_bound_raises(self):
        with pytest.raises(ValueError, match="input bound"):
            prev_prime(LADDER_INPUT_BOUND + 1)

    def test_is_prime_beyond_deterministic_bound_raises(self):
        with pytest.raises(ValueError, match="Miller-Rabin"):
            is_prime(MILLER_RABIN_DETERMINISTIC_BOUND)

    def test_is_prime_just_below_deterministic_bound_answers(self):
        # The last certifiable integer still gets a verdict, not an
        # error (it is composite: divisible by 3).
        assert is_prime(MILLER_RABIN_DETERMINISTIC_BOUND - 1) is False


class TestLargestPrimeBelow:
    def test_paper_table1(self):
        """Table 1 of the paper, verbatim."""
        expected = {
            256: 251,
            512: 509,
            1024: 1021,
            2048: 2039,
            4096: 4093,
            8192: 8191,
            16384: 16381,
        }
        for phys, prime in expected.items():
            assert largest_prime_below(phys) == prime

    def test_rejects_tiny_caches(self):
        with pytest.raises(ValueError):
            largest_prime_below(2)


class TestPrimesBelow:
    def test_empty(self):
        assert primes_below(2) == []
        assert primes_below(0) == []

    def test_small(self):
        assert primes_below(20) == [2, 3, 5, 7, 11, 13, 17, 19]

    def test_count_below_10000(self):
        assert len(primes_below(10000)) == 1229  # known pi(10^4)

    @given(st.integers(min_value=0, max_value=2000))
    def test_consistent_with_is_prime(self, limit):
        assert primes_below(limit) == [n for n in range(limit) if is_prime(n)]


class TestMersenne:
    def test_known_mersenne_primes(self):
        assert mersenne_primes_below(200000) == [3, 7, 31, 127, 8191, 131071]

    def test_is_mersenne_prime(self):
        assert is_mersenne_prime(8191)
        assert not is_mersenne_prime(2047)  # 23 * 89
        assert not is_mersenne_prime(2039)  # prime but not 2^k - 1

"""Tests for repro.mathutil.bits."""

import pytest
from hypothesis import given, strategies as st

from repro.mathutil import (
    bit_field,
    bit_length,
    circular_shift_left,
    is_power_of_two,
    log2_exact,
    ones_positions,
    split_address,
)


class TestPowerOfTwo:
    def test_powers(self):
        for k in range(20):
            assert is_power_of_two(1 << k)

    def test_non_powers(self):
        for n in (0, -1, -2, 3, 5, 6, 7, 9, 1023, 2047):
            assert not is_power_of_two(n)

    def test_log2_exact(self):
        assert log2_exact(1) == 0
        assert log2_exact(2048) == 11

    def test_log2_exact_rejects(self):
        with pytest.raises(ValueError):
            log2_exact(2039)


class TestBitField:
    def test_extracts_middle(self):
        assert bit_field(0b110101, 2, 3) == 0b101

    def test_zero_width(self):
        assert bit_field(0xFF, 3, 0) == 0

    def test_negative_args_rejected(self):
        with pytest.raises(ValueError):
            bit_field(1, -1, 2)
        with pytest.raises(ValueError):
            bit_field(1, 0, -2)

    @given(st.integers(min_value=0, max_value=2**64 - 1),
           st.integers(min_value=0, max_value=63),
           st.integers(min_value=0, max_value=64))
    def test_matches_shift_mask(self, value, low, width):
        assert bit_field(value, low, width) == (value >> low) % (1 << width if width else 1)


class TestSplitAddress:
    def test_figure1_example(self):
        # 2048 physical sets -> 11 index bits; 32-bit machine, 64B lines
        # -> 26-bit block address: x (11b), t1 (11b), t2 (4b).
        addr = (0b1011 << 22) | (0b10000000001 << 11) | 0b00000000111
        x, chunks = split_address(addr, index_bits=11, address_bits=26)
        assert x == 0b111
        assert chunks == [0b10000000001, 0b1011]

    def test_reconstruction(self):
        addr = 123456789
        x, chunks = split_address(addr, 11, 32)
        rebuilt = x
        for j, t in enumerate(chunks, start=1):
            rebuilt += t << (11 * j)
        assert rebuilt == addr

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            split_address(-1, 11, 32)

    @given(st.integers(min_value=0, max_value=2**40 - 1),
           st.integers(min_value=1, max_value=16))
    def test_reconstruction_property(self, addr, index_bits):
        x, chunks = split_address(addr, index_bits, 40)
        rebuilt = x
        for j, t in enumerate(chunks, start=1):
            rebuilt += t << (index_bits * j)
        assert rebuilt == addr


class TestCircularShift:
    def test_identity(self):
        assert circular_shift_left(0b1011, 0, 4) == 0b1011

    def test_rotation(self):
        assert circular_shift_left(0b1000, 1, 4) == 0b0001
        assert circular_shift_left(0b0011, 2, 4) == 0b1100

    def test_full_rotation_is_identity(self):
        assert circular_shift_left(0b1011, 4, 4) == 0b1011

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            circular_shift_left(1, 1, 0)

    @given(st.integers(min_value=0, max_value=2**11 - 1),
           st.integers(min_value=0, max_value=100))
    def test_rotating_preserves_popcount(self, value, shift):
        rotated = circular_shift_left(value, shift, 11)
        assert bin(rotated).count("1") == bin(value).count("1")

    @given(st.integers(min_value=0, max_value=2**11 - 1),
           st.integers(min_value=0, max_value=11),
           st.integers(min_value=0, max_value=11))
    def test_composition(self, value, s1, s2):
        assert circular_shift_left(circular_shift_left(value, s1, 11), s2, 11) == \
            circular_shift_left(value, s1 + s2, 11)


class TestOnesPositions:
    def test_nine(self):
        assert ones_positions(9) == [0, 3]  # 9 = 1001b, the paper's Delta

    def test_eightyone(self):
        assert ones_positions(81) == [0, 4, 6]  # 81 = 1010001b

    def test_zero(self):
        assert ones_positions(0) == []

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_reconstruction(self, n):
        assert sum(1 << p for p in ones_positions(n)) == n


class TestBitLength:
    def test_zero_gets_one_bit(self):
        assert bit_length(0) == 1

    def test_matches_python(self):
        assert bit_length(2039) == 11
        assert bit_length(2048) == 12

"""Virtual-clock service time: deterministic batch-position latency.

``Response.latency_s`` is wall-clock and scheduler-dependent;
``Response.service_time_s`` is the executor's virtual clock — the k-th
live item of a batch reads ``k × VIRTUAL_TICK_S``.  The adversary's
conflict oracle (and any latency-shaped analysis that must replay
bit-for-bit) reads the virtual clock, so its semantics are pinned here.
"""

import asyncio

from repro.serve import (
    VIRTUAL_TICK_S,
    AdmissionConfig,
    BatchConfig,
    FaultPolicy,
    Frontend,
    closed_loop,
)
from repro.serve.frontend import Request
from repro.store import ShardedStore


def make_frontend(n_shards=8, max_batch_size=16, max_queue_depth=1024):
    store = ShardedStore(n_shards=n_shards, scheme="traditional",
                         shard_capacity=128)
    return Frontend(
        store,
        batch=BatchConfig(max_batch_size=max_batch_size, max_wait_s=0.001),
        admission=AdmissionConfig(rate=None,
                                  max_queue_depth=max_queue_depth),
        policy=FaultPolicy(timeout_s=5.0, max_retries=0),
    )


def run(coro):
    return asyncio.run(coro)


class TestBatchPositions:
    def test_lone_request_reads_one_tick(self):
        async def scenario():
            async with make_frontend() as frontend:
                return await frontend.get(1)

        response = run(scenario())
        assert response.status == "ok"
        assert response.service_time_s == VIRTUAL_TICK_S

    def test_cosubmitted_same_shard_burst_reads_positions(self):
        """A burst of B same-shard keys drains as one batch: service
        times are exactly (1..B) × tick, in submission order."""

        async def scenario():
            async with make_frontend(n_shards=8) as frontend:
                # traditional @ 8: keys 8, 16, 24, 32 all route to shard 0.
                return await asyncio.gather(
                    *(frontend.get(key) for key in (8, 16, 24, 32)))

        responses = run(scenario())
        assert [r.service_time_s for r in responses] == [
            (k + 1) * VIRTUAL_TICK_S for k in range(4)]

    def test_distinct_shards_all_read_one_tick(self):
        async def scenario():
            async with make_frontend(n_shards=8) as frontend:
                return await asyncio.gather(
                    *(frontend.get(key) for key in (0, 1, 2, 3)))

        responses = run(scenario())
        assert {r.service_time_s for r in responses} == {VIRTUAL_TICK_S}

    def test_deterministic_across_runs(self):
        """The whole point of the virtual clock: rerunning the same
        co-submitted burst yields bit-identical service times, while
        wall-clock latency_s is whatever the scheduler felt like."""

        async def scenario():
            async with make_frontend(n_shards=8) as frontend:
                responses = await asyncio.gather(
                    *(frontend.get(key) for key in range(12)))
                return [r.service_time_s for r in responses]

        assert run(scenario()) == run(scenario())


class TestResponseSurface:
    def test_as_dict_carries_service_time(self):
        async def scenario():
            async with make_frontend() as frontend:
                return await frontend.get(5)

        payload = run(scenario()).as_dict()
        assert payload["service_time_s"] == VIRTUAL_TICK_S

    def test_rejected_request_reads_zero(self):
        """A throttled request never reaches an executor batch — its
        virtual clock must stay at 0.0, not inherit a stale reading."""

        async def scenario():
            async with make_frontend(max_queue_depth=1) as frontend:
                responses = await asyncio.gather(
                    *(frontend.get(8 * k) for k in range(32)))
                return responses

        responses = run(scenario())
        rejected = [r for r in responses if r.status == "rejected"]
        assert rejected
        assert all(r.service_time_s == 0.0 for r in rejected)


class TestLoadgenReport:
    def test_report_summarizes_service_time(self):
        async def scenario():
            async with make_frontend() as frontend:
                requests = [Request("get", key) for key in range(64)]
                return await closed_loop(frontend, requests,
                                         concurrency=8)

        report = run(scenario())
        summary = report.service_time
        assert set(summary) == {"mean", "p50", "p95", "p99", "max"}
        # Every served request pays at least one tick; a batch of 8
        # co-submitted clients can never exceed 8 positions.
        assert summary["p50"] >= VIRTUAL_TICK_S
        assert summary["max"] <= 8 * VIRTUAL_TICK_S
        assert report.as_dict()["service_time"] == summary

"""Frontend epoch rebinding: live reshard under a serving frontend."""

import asyncio

from repro.serve import BatchConfig, Frontend
from repro.store import Migrator, RoutingTable, ShardedStore


def run(coro):
    return asyncio.run(coro)


def make_store(n_shards=61):
    return ShardedStore(routing=RoutingTable.create("pmod", n_shards),
                        shard_capacity=256, assoc=16)


def make_frontend(store):
    return Frontend(store, batch=BatchConfig(max_batch_size=8,
                                             max_wait_s=0.001))


class TestExplicitRebind:
    def test_rebind_resizes_the_queue_fabric(self):
        async def scenario():
            store = make_store()
            async with make_frontend(store) as frontend:
                assert frontend.bound_epoch == 0
                store.begin_reshard(store.routing.grown())  # 61 -> 67
                Migrator(store).run()
                bound = await frontend.rebind_routing()
                stats = frontend.stats()
            return store, bound, stats

        store, bound, stats = run(scenario())
        assert store.n_shards == 67
        assert bound == store.epoch == 1
        assert stats["rebinds"] == 1
        assert stats["bound_epoch"] == 1

    def test_rebind_without_epoch_change_is_a_noop(self):
        async def scenario():
            store = make_store()
            async with make_frontend(store) as frontend:
                bound = await frontend.rebind_routing()
                return bound, frontend.stats()["rebinds"]

        bound, rebinds = run(scenario())
        assert bound == 0
        assert rebinds == 0


class TestServingAcrossEpochs:
    def test_requests_survive_a_live_reshard(self):
        """Writes before, during and after a reshard all serve; the
        frontend rebinds itself from the traffic path (no explicit
        rebind call) and nothing is lost."""

        async def scenario():
            store = make_store()
            async with make_frontend(store) as frontend:
                for key in range(100):
                    assert (await frontend.put(key, key)).ok
                store.begin_reshard(store.routing.grown())
                migrator = Migrator(store)
                # Serve *while* migrating: reads fall through to the
                # old epoch, writes land on the new one.
                for key in range(100, 200):
                    assert (await frontend.put(key, key)).ok
                    migrator.step()
                report = migrator.run()
                # Traffic after the swap routes the new epoch and
                # triggers the frontend's self-rebind.
                responses = [await frontend.get(key) for key in range(200)]
                await frontend.rebind_routing()
                stats = frontend.stats()
            return report, responses, stats, store

        report, responses, stats, store = run(scenario())
        assert report.left_behind == 0
        assert all(r.ok for r in responses)
        assert [r.value for r in responses] == list(range(200))
        assert stats["rebinds"] >= 1
        assert stats["bound_epoch"] == store.epoch == 1
        assert stats["errors"] == 0 and stats["dropped"] == 0

    def test_rebind_chases_consecutive_reshards(self):
        async def scenario():
            store = make_store()
            async with make_frontend(store) as frontend:
                for _ in range(2):  # 61 -> 67 -> 71
                    store.begin_reshard(store.routing.grown())
                    Migrator(store).run()
                    await frontend.rebind_routing()
                return frontend.stats(), store

        stats, store = run(scenario())
        assert store.n_shards == 71
        assert stats["bound_epoch"] == store.epoch == 2
        assert stats["rebinds"] == 2

"""Admission control: token bucket and queue-depth cap semantics."""

import pytest

from repro.serve import (
    REASON_QUEUE,
    REASON_RATE,
    AdmissionConfig,
    AdmissionController,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def controller(clock, **kwargs):
    return AdmissionController(AdmissionConfig(**kwargs), clock=clock)


class TestConfig:
    def test_defaults_are_open(self):
        config = AdmissionConfig()
        assert config.rate is None
        assert config.max_queue_depth >= 1

    @pytest.mark.parametrize("kwargs", [
        {"rate": 0.0}, {"rate": -5.0}, {"burst": 0}, {"max_queue_depth": 0},
    ])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionConfig(**kwargs)


class TestTokenBucket:
    def test_burst_then_rate_limited(self):
        clock = FakeClock()
        gate = controller(clock, rate=100.0, burst=5)
        assert [gate.admit(0) for _ in range(5)] == [None] * 5
        assert gate.admit(0) == REASON_RATE

    def test_refill_restores_admission(self):
        clock = FakeClock()
        gate = controller(clock, rate=100.0, burst=1)
        assert gate.admit(0) is None
        assert gate.admit(0) == REASON_RATE
        clock.advance(0.01)  # exactly one token at 100/s
        assert gate.admit(0) is None

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        gate = controller(clock, rate=1000.0, burst=3)
        clock.advance(100.0)  # would be 100k tokens uncapped
        outcomes = [gate.admit(0) for _ in range(4)]
        assert outcomes == [None, None, None, REASON_RATE]

    def test_rate_none_never_rate_limits(self):
        clock = FakeClock()
        gate = controller(clock, rate=None, burst=1)
        assert all(gate.admit(0) is None for _ in range(1000))


class TestQueueDepth:
    def test_depth_cap_rejects(self):
        clock = FakeClock()
        gate = controller(clock, rate=None, max_queue_depth=10)
        assert gate.admit(9) is None
        assert gate.admit(10) == REASON_QUEUE
        assert gate.admit(11) == REASON_QUEUE

    def test_depth_check_runs_before_tokens(self):
        """A queue-full reject must not burn rate budget."""
        clock = FakeClock()
        gate = controller(clock, rate=100.0, burst=1, max_queue_depth=5)
        assert gate.admit(5) == REASON_QUEUE
        assert gate.admit(0) is None  # the token survived the reject


class TestStats:
    def test_stats_track_every_outcome(self):
        clock = FakeClock()
        gate = controller(clock, rate=100.0, burst=2, max_queue_depth=4)
        gate.admit(0)
        gate.admit(0)
        gate.admit(0)  # rate limited
        gate.admit(4)  # queue full
        assert gate.stats() == {
            "admitted": 2,
            "rejected_rate_limited": 1,
            "rejected_queue_full": 1,
        }

"""Frontend: request lifecycle, accounting, simulate path, metrics."""

import asyncio

import pytest

from repro.obs import enable_observability, get_registry
from repro.serve import (
    AdmissionConfig,
    BatchConfig,
    FaultPolicy,
    Frontend,
    Response,
    SimulateRequest,
)
from repro.store import ShardedStore, make_traffic


def run(coro):
    return asyncio.run(coro)


def make_frontend(**kwargs):
    store = ShardedStore(n_shards=16, scheme=kwargs.pop("scheme", "pmod"),
                         shard_capacity=128)
    kwargs.setdefault("batch", BatchConfig(max_batch_size=8,
                                           max_wait_s=0.001))
    return Frontend(store, **kwargs)


class TestBasicOps:
    def test_put_get_delete_roundtrip(self):
        async def scenario():
            async with make_frontend() as frontend:
                put = await frontend.put(1, "hello")
                got = await frontend.get(1)
                deleted = await frontend.delete(1)
                missing = await frontend.get(1)
                return put, got, deleted, missing

        put, got, deleted, missing = run(scenario())
        assert put.ok and got.ok and deleted.ok and missing.ok
        assert got.value == "hello"
        assert missing.value is None

    def test_every_request_gets_a_response(self):
        requests = make_traffic("zipfian", 500, seed=0)

        async def scenario():
            async with make_frontend() as frontend:
                responses = await asyncio.gather(
                    *(frontend.submit(r) for r in requests))
                stats = frontend.stats()
            return responses, stats

        responses, stats = run(scenario())
        assert len(responses) == 500
        assert all(isinstance(r, Response) for r in responses)
        assert all(r.ok for r in responses)
        assert stats["requests"] == 500
        assert stats["ok"] == 500
        assert stats["queue_depth"] == 0  # everything drained

    def test_requests_actually_batch(self):
        requests = make_traffic("zipfian", 400, n_keys=64, seed=1)

        async def scenario():
            async with make_frontend(
                    batch=BatchConfig(max_batch_size=32,
                                      max_wait_s=0.005)) as frontend:
                await asyncio.gather(*(frontend.submit(r) for r in requests))
                return frontend.stats()

        stats = run(scenario())
        assert stats["mean_batch_size"] > 1.0
        assert stats["batches"] < 400

    def test_response_as_dict_is_json_shaped(self):
        import json

        async def scenario():
            async with make_frontend() as frontend:
                return await frontend.put(5, 6)

        payload = run(scenario()).as_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["status"] == "ok"


class TestAdmission:
    def test_queue_full_rejects_explicitly(self):
        async def scenario():
            frontend = make_frontend(
                admission=AdmissionConfig(max_queue_depth=1),
                batch=BatchConfig(max_batch_size=1, max_wait_s=0.0))
            async with frontend:
                # issue concurrently so the queue actually fills
                responses = await asyncio.gather(
                    *(frontend.put(i, i) for i in range(50)))
            return responses, frontend

        responses, frontend = run(scenario())
        statuses = {r.status for r in responses}
        rejected = [r for r in responses if r.status == "rejected"]
        assert statuses <= {"ok", "rejected"}
        assert rejected, "queue cap never triggered"
        assert all(r.reason == "queue_full" for r in rejected)
        assert frontend.peak_queue_depth <= 1

    def test_rate_limit_rejects_with_reason(self):
        async def scenario():
            frontend = make_frontend(
                admission=AdmissionConfig(rate=1.0, burst=2))
            async with frontend:
                return await asyncio.gather(
                    *(frontend.put(i, i) for i in range(10)))

        responses = run(scenario())
        ok = [r for r in responses if r.ok]
        rejected = [r for r in responses if r.status == "rejected"]
        assert len(ok) == 2  # the burst allowance
        assert len(rejected) == 8
        assert all(r.reason == "rate_limited" for r in rejected)


class TestSimulate:
    def test_simulate_without_fn_is_explicit_error(self):
        async def scenario():
            async with make_frontend() as frontend:
                return await frontend.simulate("tree", "pmod")

        response = run(scenario())
        assert response.status == "error"
        assert "no simulator" in response.reason

    def test_simulate_dedupes_within_batch(self):
        calls = []

        def fake_simulate(workload, scheme):
            calls.append((workload, scheme))
            return {"cell": f"{workload}:{scheme}", "miss_rate": 0.25}

        async def scenario():
            frontend = make_frontend(
                simulate_fn=fake_simulate,
                batch=BatchConfig(max_batch_size=16, max_wait_s=0.01))
            async with frontend:
                return await asyncio.gather(
                    *(frontend.simulate("tree", "pmod") for _ in range(8)))

        responses = run(scenario())
        assert all(r.ok for r in responses)
        assert all(r.value["miss_rate"] == 0.25 for r in responses)
        assert len(calls) < 8  # dedupe collapsed concurrent duplicates

    def test_simulate_requests_route_past_store_shards(self):
        request = SimulateRequest("tree", "pmod")
        assert request.key == "tree:pmod"
        assert request.op == "simulate"


class TestMetrics:
    def test_counters_flow_into_registry(self):
        enable_observability()
        registry = get_registry()

        async def scenario():
            frontend = make_frontend(registry=registry)
            async with frontend:
                await asyncio.gather(*(frontend.put(i, i) for i in range(20)))

        run(scenario())
        snapshot = registry.snapshot()
        put_series = [c["value"] for c in snapshot["counters"]
                      if c["name"] == "serve.requests"
                      and c["labels"].get("op") == "put"]
        assert sum(put_series) == 20
        assert any(c["name"] == "serve.batches"
                   for c in snapshot["counters"])
        latency = [h for h in snapshot["histograms"]
                   if h["name"] == "serve.latency_s"
                   and h["labels"].get("op") == "put"]
        assert latency and latency[0]["count"] == 20

    def test_disabled_registry_costs_nothing_visible(self):
        async def scenario():
            frontend = make_frontend()  # global registry is disabled
            async with frontend:
                await frontend.put(1, 1)
                return frontend.stats()

        stats = run(scenario())
        assert stats["ok"] == 1


class TestLifecycle:
    def test_stop_resolves_stuck_requests_as_dropped(self):
        async def scenario():
            frontend = make_frontend(
                policy=FaultPolicy(timeout_s=5.0, max_retries=0),
                batch=BatchConfig(max_batch_size=1, max_wait_s=0.0))
            await frontend.start()
            # stop the batchers while a request is mid-queue by racing
            # a big gather against stop; any request still queued when
            # the workers exit must resolve as dropped, never hang.
            submits = asyncio.gather(
                *(frontend.put(i, i) for i in range(200)))
            await asyncio.sleep(0)  # let submissions enqueue
            await frontend.stop()
            return await submits

        responses = run(scenario())
        assert len(responses) == 200
        assert {r.status for r in responses} <= {"ok", "dropped"}

    def test_submit_requires_started_frontend(self):
        async def scenario():
            frontend = make_frontend()
            with pytest.raises(RuntimeError, match="not started"):
                await frontend.put(1, 1)

        run(scenario())

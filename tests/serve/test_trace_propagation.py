"""Regression: span parentage must follow the request, not the thread.

The old ``SpanTracer`` kept one open-span stack per thread.  Two
asyncio tasks interleaving on the event-loop thread — or two requests'
work items taking turns on the batcher's single executor thread —
would therefore adopt each other's spans as children.  Parentage now
lives on the active :class:`~repro.obs.attrib.TraceContext`'s own
``span_stack`` (selected via a contextvar, which asyncio scopes per
task), with the per-thread stack only a fallback for untraced code.
"""

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor

from repro.obs import enable_observability, get_tracer
from repro.obs.attrib import TraceContext, activate


def _tree(span):
    """(name, [children...]) shape of one span subtree."""
    return (span.name, [_tree(child) for child in span.children])


class TestInterleavedTasks:
    def test_two_tasks_on_one_loop_thread_keep_their_own_spans(self):
        """Both tasks hold a span open across ``await`` points on the
        same thread; each must still parent only its own inner span."""
        enable_observability()
        tracer = get_tracer()

        async def request(name):
            ctx = TraceContext(op=name)
            with activate(ctx):
                with tracer.span(f"{name}.request"):
                    await asyncio.sleep(0)  # yield: the tasks interleave
                    with tracer.span(f"{name}.store"):
                        await asyncio.sleep(0)

        async def drive():
            await asyncio.gather(request("a"), request("b"))

        asyncio.run(drive())
        roots = {span.name: _tree(span) for span in tracer.roots}
        assert roots == {
            "a.request": ("a.request", [("a.store", [])]),
            "b.request": ("b.request", [("b.store", [])]),
        }

    def test_two_requests_interleaving_on_one_worker_thread(self):
        """The batcher shape: both requests hop to the *same* executor
        thread.  Spans opened there must parent on each request's own
        context, not on whatever the shared thread saw last."""
        enable_observability()
        tracer = get_tracer()

        def store_op(ctx, name):
            with activate(ctx):  # what the batcher does per work item
                with tracer.span(f"{name}.store"):
                    time.sleep(0.001)

        async def request(pool, name):
            ctx = TraceContext(op=name)
            loop = asyncio.get_running_loop()
            with activate(ctx):
                with tracer.span(f"{name}.request"):
                    # two hops with a yield between them, so the other
                    # task's hop lands on the worker thread in between
                    await loop.run_in_executor(pool, store_op, ctx, name)
                    await asyncio.sleep(0)
                    await loop.run_in_executor(pool, store_op, ctx, name)

        async def drive():
            with ThreadPoolExecutor(max_workers=1) as pool:
                await asyncio.gather(request(pool, "a"),
                                     request(pool, "b"))

        asyncio.run(drive())
        roots = {span.name: _tree(span) for span in tracer.roots}
        assert roots == {
            "a.request": ("a.request",
                          [("a.store", []), ("a.store", [])]),
            "b.request": ("b.request",
                          [("b.store", []), ("b.store", [])]),
        }

    def test_untraced_threads_fall_back_to_thread_stacks(self):
        """Plain threaded code with no trace in flight keeps the old
        per-thread nesting."""
        enable_observability()
        tracer = get_tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert {span.name for span in tracer.roots} == {"outer"}
        assert [c.name for c in tracer.roots[0].children] == ["inner"]

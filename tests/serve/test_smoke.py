"""The serve smoke gate runs green and its CLI exits cleanly."""

from repro.serve.smoke import low_rate_phase, main, overload_phase


class TestPhases:
    def test_low_rate_phase_all_ok(self):
        report = low_rate_phase(n_requests=300)
        assert report.ok == 300
        assert report.reject_rate == 0.0

    def test_overload_phase_sheds_explicitly(self):
        report = overload_phase(n_requests=400)
        assert report.statuses.get("rejected", 0) > 0
        assert report.statuses.get("dropped", 0) == 0


class TestCli:
    def test_main_exits_zero(self, capsys):
        assert main(["--requests", "300"]) == 0
        out = capsys.readouterr().out
        assert "serve smoke ok" in out
        assert "low-rate" in out and "overload" in out

    def test_main_accepts_scheme(self, capsys):
        assert main(["--requests", "250", "--scheme", "xor"]) == 0

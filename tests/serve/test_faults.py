"""Fault policy, injection, and graceful degradation under a stall."""

import asyncio

import pytest

from repro.serve import (
    AdmissionConfig,
    BatchConfig,
    FaultInjector,
    FaultPolicy,
    Frontend,
    InjectedFault,
)
from repro.store import ShardedStore


def run(coro):
    return asyncio.run(coro)


class TestFaultPolicy:
    def test_backoff_schedule_is_capped_exponential(self):
        policy = FaultPolicy(backoff_base_s=0.01, backoff_multiplier=2.0,
                             backoff_cap_s=0.05)
        assert policy.backoff_s(1) == pytest.approx(0.01)
        assert policy.backoff_s(2) == pytest.approx(0.02)
        assert policy.backoff_s(3) == pytest.approx(0.04)
        assert policy.backoff_s(4) == pytest.approx(0.05)  # capped
        assert policy.backoff_s(10) == pytest.approx(0.05)
        assert policy.backoff_s(0) == 0.0

    @pytest.mark.parametrize("kwargs", [
        {"timeout_s": 0.0}, {"max_retries": -1},
        {"backoff_base_s": -1.0}, {"backoff_multiplier": 0.5},
    ])
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultPolicy(**kwargs)


class TestFaultInjector:
    def test_stall_and_recover_targeting(self):
        injector = FaultInjector(stall_s=0.0)
        injector.stall(3).stall(5)
        assert injector.stalled_shards == {3, 5}
        injector.recover(3)
        assert injector.stalled_shards == {5}
        injector.recover()
        assert injector.stalled_shards == set()

    def test_error_injection_is_seeded(self):
        async def draws(seed):
            injector = FaultInjector(error_probability=0.5, seed=seed)
            outcomes = []
            for _ in range(50):
                try:
                    await injector.before_batch(0)
                    outcomes.append(False)
                except InjectedFault:
                    outcomes.append(True)
            return outcomes

        a = run(draws(7))
        b = run(draws(7))
        c = run(draws(8))
        assert a == b
        assert a != c
        assert any(a) and not all(a)

    def test_injected_counts_tracked(self):
        async def scenario():
            injector = FaultInjector(error_probability=1.0, stall_s=0.0)
            injector.stall(0)
            with pytest.raises(InjectedFault):
                await injector.before_batch(0)
            return injector.stats()

        stats = run(scenario())
        assert stats["stall"] == 1
        assert stats["error"] == 1

    @pytest.mark.parametrize("kwargs", [
        {"delay_probability": 1.5}, {"error_probability": -0.1},
        {"delay_s": -1.0}, {"stall_s": -1.0},
    ])
    def test_invalid_injector_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultInjector(**kwargs)


class TestRetries:
    def test_transient_stall_is_retried_to_success(self):
        """A stall that clears before the retry budget runs out ends ok.

        The first attempt times out behind the stalled batch; the shard
        recovers while the worker is still sleeping off that stall, so
        a later retry lands on a healthy shard and succeeds."""
        async def scenario():
            store = ShardedStore(n_shards=8, scheme="pmod",
                                 shard_capacity=64)
            injector = FaultInjector(stall_s=0.15)
            shard = store.shard_for(42)
            injector.stall(shard)
            frontend = Frontend(
                store,
                batch=BatchConfig(max_batch_size=4, max_wait_s=0.0),
                policy=FaultPolicy(timeout_s=0.1, max_retries=3,
                                   backoff_base_s=0.01),
                injector=injector)
            async with frontend:
                task = asyncio.create_task(frontend.put(42, "v"))
                await asyncio.sleep(0.05)
                injector.recover(shard)  # transient fault clears
                response = await task
            return response

        response = run(scenario())
        assert response.ok
        assert response.retries >= 1

    def test_persistent_error_exhausts_retries(self):
        async def scenario():
            store = ShardedStore(n_shards=8, scheme="pmod",
                                 shard_capacity=64)
            injector = FaultInjector(error_probability=1.0)
            frontend = Frontend(
                store,
                batch=BatchConfig(max_batch_size=4, max_wait_s=0.0),
                policy=FaultPolicy(timeout_s=0.5, max_retries=2,
                                   backoff_base_s=0.001),
                injector=injector)
            async with frontend:
                response = await frontend.put(1, "v")
                stats = frontend.stats()
            return response, stats

        response, stats = run(scenario())
        assert response.status == "error"
        assert response.retries == 2
        assert "InjectedFault" in response.reason
        assert stats["retries"] == 2
        assert stats["errors"] == 1


class TestGracefulDegradation:
    def test_stalled_shard_degrades_gracefully(self):
        """The acceptance scenario: with one shard stalled far beyond
        the request timeout, healthy-shard traffic is served ok,
        stalled-shard traffic resolves as explicit timeouts (or
        rejects once the queue cap bites), every request is accounted
        for, the in-flight count never exceeds the cap, and the whole
        run finishes — no hang."""
        n_requests = 200
        cap = 64

        async def scenario():
            store = ShardedStore(n_shards=16, scheme="pmod",
                                 shard_capacity=256)
            stalled_key = 0
            stalled_shard = store.shard_for(stalled_key)
            # every batch on the stalled shard sleeps 4x the timeout,
            # so from a client's view the shard is hung
            injector = FaultInjector(stall_s=0.2)
            injector.stall(stalled_shard)
            frontend = Frontend(
                store,
                batch=BatchConfig(max_batch_size=8, max_wait_s=0.001),
                admission=AdmissionConfig(max_queue_depth=cap),
                policy=FaultPolicy(timeout_s=0.05, max_retries=1,
                                   backoff_base_s=0.001),
                injector=injector)
            healthy_keys = [k for k in range(1, 200)
                            if store.shard_for(k) != stalled_shard]
            async with frontend:
                jobs = []
                for i in range(n_requests):
                    if i % 10 == 0:  # a slice of traffic hits the stall
                        jobs.append(asyncio.ensure_future(
                            frontend.put(stalled_key, i)))
                    else:
                        key = healthy_keys[i % len(healthy_keys)]
                        jobs.append(asyncio.ensure_future(
                            frontend.put(key, i)))
                    await asyncio.sleep(0.0005)  # paced, not one stampede
                responses = await asyncio.wait_for(
                    asyncio.gather(*jobs), timeout=30.0)  # no-hang bound
                stats = frontend.stats()
            final_depth = frontend.queue_depth
            return responses, stats, final_depth, stalled_shard, store

        responses, stats, final_depth, stalled_shard, store = run(scenario())
        # every request accounted for, none silently dropped
        assert len(responses) == n_requests
        assert stats["dropped"] == 0
        by_status = {}
        for response in responses:
            by_status[response.status] = by_status.get(response.status,
                                                       0) + 1
        assert sum(by_status.values()) == n_requests
        # stalled-shard requests fail *explicitly*
        stalled = [r for r in responses
                   if store.shard_for(r.key) == stalled_shard]
        assert stalled
        assert all(r.status in ("timeout", "rejected") for r in stalled)
        assert any(r.status == "timeout" for r in stalled)
        # healthy shards keep serving
        healthy = [r for r in responses
                   if store.shard_for(r.key) != stalled_shard]
        assert healthy
        ok_healthy = sum(r.ok for r in healthy)
        assert ok_healthy / len(healthy) > 0.5
        # the queue stayed bounded throughout and drained by shutdown
        assert stats["peak_queue_depth"] <= cap
        assert final_depth == 0

    def test_probabilistic_delays_do_not_break_accounting(self):
        async def scenario():
            store = ShardedStore(n_shards=8, scheme="xor",
                                 shard_capacity=128)
            injector = FaultInjector(delay_probability=0.3, delay_s=0.002,
                                     seed=1)
            frontend = Frontend(
                store,
                batch=BatchConfig(max_batch_size=8, max_wait_s=0.001),
                policy=FaultPolicy(timeout_s=1.0, max_retries=1),
                injector=injector)
            async with frontend:
                responses = await asyncio.gather(
                    *(frontend.put(i, i) for i in range(100)))
                stats = frontend.stats()
            return responses, stats

        responses, stats = run(scenario())
        assert all(r.ok for r in responses)
        assert stats["faults"]["delay"] > 0

"""Batcher: coalescing bounds, deadlines, shutdown draining."""

import asyncio

import pytest

from repro.serve import BatchConfig, Batcher, WorkItem


def run(coro):
    return asyncio.run(coro)


class Recorder:
    """Execute callback that settles futures and logs batch shapes."""

    def __init__(self, fail=False):
        self.batches = []
        self.fail = fail

    async def __call__(self, queue_id, items):
        self.batches.append((queue_id, len(items)))
        if self.fail:
            raise RuntimeError("executor blew up")
        for item in items:
            if not item.future.done():
                item.future.set_result(item.request)


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        {"max_batch_size": 0}, {"max_wait_s": -0.1},
    ])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BatchConfig(**kwargs)

    def test_invalid_queue_count_rejected(self):
        with pytest.raises(ValueError):
            Batcher(0, Recorder())


class TestCoalescing:
    def test_burst_coalesces_into_one_batch(self):
        async def scenario():
            recorder = Recorder()
            batcher = Batcher(2, recorder,
                              BatchConfig(max_batch_size=8, max_wait_s=0.05))
            await batcher.start()
            items = [WorkItem.make(i) for i in range(6)]
            for item in items:
                batcher.submit(0, item)
            results = await asyncio.gather(*(i.future for i in items))
            await batcher.stop()
            return recorder.batches, results

        batches, results = run(scenario())
        assert batches == [(0, 6)]
        assert results == list(range(6))

    def test_max_batch_size_splits(self):
        async def scenario():
            recorder = Recorder()
            batcher = Batcher(1, recorder,
                              BatchConfig(max_batch_size=4, max_wait_s=0.05))
            await batcher.start()
            items = [WorkItem.make(i) for i in range(10)]
            for item in items:
                batcher.submit(0, item)
            await asyncio.gather(*(i.future for i in items))
            await batcher.stop()
            return recorder.batches

        batches = run(scenario())
        assert all(size <= 4 for _, size in batches)
        assert sum(size for _, size in batches) == 10

    def test_deadline_dispatches_partial_batch(self):
        """A lone item must not wait forever for a full batch."""
        async def scenario():
            recorder = Recorder()
            batcher = Batcher(1, recorder,
                              BatchConfig(max_batch_size=64, max_wait_s=0.01))
            await batcher.start()
            item = WorkItem.make("solo")
            batcher.submit(0, item)
            result = await asyncio.wait_for(item.future, 1.0)
            await batcher.stop()
            return recorder.batches, result

        batches, result = run(scenario())
        assert batches == [(0, 1)]
        assert result == "solo"

    def test_queues_are_independent(self):
        async def scenario():
            recorder = Recorder()
            batcher = Batcher(3, recorder,
                              BatchConfig(max_batch_size=8, max_wait_s=0.01))
            await batcher.start()
            items = {qid: WorkItem.make(qid) for qid in range(3)}
            for qid, item in items.items():
                batcher.submit(qid, item)
            await asyncio.gather(*(i.future for i in items.values()))
            await batcher.stop()
            return recorder.batches

        batches = run(scenario())
        assert sorted(qid for qid, _ in batches) == [0, 1, 2]

    def test_mean_batch_size_accounting(self):
        async def scenario():
            batcher = Batcher(1, Recorder(),
                              BatchConfig(max_batch_size=8, max_wait_s=0.02))
            await batcher.start()
            items = [WorkItem.make(i) for i in range(8)]
            for item in items:
                batcher.submit(0, item)
            await asyncio.gather(*(i.future for i in items))
            await batcher.stop()
            return batcher.batches, batcher.batched_items, \
                batcher.mean_batch_size

        batches, items, mean = run(scenario())
        assert items == 8
        assert mean == pytest.approx(items / batches)


class TestFailureAndShutdown:
    def test_raising_executor_fails_batch_not_worker(self):
        async def scenario():
            batcher = Batcher(1, Recorder(fail=True),
                              BatchConfig(max_batch_size=4, max_wait_s=0.01))
            await batcher.start()
            first = WorkItem.make(1)
            batcher.submit(0, first)
            with pytest.raises(RuntimeError, match="executor blew up"):
                await asyncio.wait_for(first.future, 1.0)
            # the worker must have survived to serve the next item
            second = WorkItem.make(2)
            batcher.submit(0, second)
            with pytest.raises(RuntimeError):
                await asyncio.wait_for(second.future, 1.0)
            await batcher.stop()

        run(scenario())

    def test_submit_before_start_raises(self):
        async def scenario():
            batcher = Batcher(1, Recorder())
            with pytest.raises(RuntimeError, match="not started"):
                batcher.submit(0, WorkItem.make(1))
            await batcher.start()
            await batcher.stop()

        run(scenario())

    def test_stop_returns_undispatched_items(self):
        """Items stuck behind a close sentinel come back as dropped."""
        async def scenario():
            # executor that never finishes fast: block the worker so
            # items pile up behind an in-flight batch
            release = asyncio.Event()

            async def slow_execute(queue_id, items):
                await release.wait()
                for item in items:
                    if not item.future.done():
                        item.future.set_result(None)

            batcher = Batcher(1, slow_execute,
                              BatchConfig(max_batch_size=1, max_wait_s=0.0))
            await batcher.start()
            first = WorkItem.make("in-flight")
            batcher.submit(0, first)
            await asyncio.sleep(0.01)  # worker picks up `first`, blocks
            stop_task = asyncio.create_task(batcher.stop())
            await asyncio.sleep(0.01)  # stop enqueues its close sentinel
            stuck = WorkItem.make("stuck")  # lands behind the sentinel
            batcher.submit(0, stuck)
            release.set()
            dropped = await stop_task
            return [item.request for item in dropped], first.future.done()

        dropped, first_done = run(scenario())
        assert dropped == ["stuck"]
        assert first_done

    def test_stop_is_idempotent(self):
        async def scenario():
            batcher = Batcher(2, Recorder())
            await batcher.start()
            assert await batcher.stop() == []
            assert await batcher.stop() == []
            assert not batcher.started

        run(scenario())

"""Shared serve-test helpers + observability isolation."""

import pytest

from repro.obs import (
    Journal,
    disable_observability,
    get_journal,
    get_registry,
    get_tracer,
    set_journal,
    validate_event,
)


@pytest.fixture(autouse=True)
def _isolate_global_observability():
    """Serve tests that enable obs leave the globals off and empty.

    Journaled events are validated strictly on the way out
    (``require_known_kind=True``): the serve path may only emit
    registered event kinds.
    """
    yield
    events = [event.as_dict() for event in get_journal().tail()]
    disable_observability()
    get_registry().clear()
    get_tracer().clear()
    set_journal(Journal(enabled=False))
    for event in events:  # after the reset, so one failure can't cascade
        validate_event(event, require_known_kind=True)

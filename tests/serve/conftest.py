"""Shared serve-test helpers + observability isolation."""

import pytest

from repro.obs import disable_observability, get_registry, get_tracer


@pytest.fixture(autouse=True)
def _isolate_global_observability():
    """Serve tests that enable obs leave the globals off and empty."""
    yield
    disable_observability()
    get_registry().clear()
    get_tracer().clear()

"""Load generation: arrival processes, driving loops, reporting."""

import json

import numpy as np
import pytest

from repro.serve import (
    AdmissionConfig,
    BatchConfig,
    FaultPolicy,
    Frontend,
    arrival_gaps,
    run_closed_loop,
    run_open_loop,
)
from repro.store import ShardedStore, make_traffic


def frontend_factory(scheme="pmod", **kwargs):
    def build():
        store = ShardedStore(n_shards=16, scheme=scheme, shard_capacity=256)
        kwargs.setdefault("batch", BatchConfig(max_batch_size=16,
                                               max_wait_s=0.001))
        kwargs.setdefault("policy", FaultPolicy(timeout_s=1.0, max_retries=1))
        return Frontend(store, **kwargs)

    return build


class TestArrivalGaps:
    def test_poisson_mean_matches_rate(self):
        gaps = arrival_gaps(20000, 1000.0, arrival="poisson", seed=0)
        assert len(gaps) == 20000
        assert gaps.mean() == pytest.approx(1e-3, rel=0.05)

    def test_bursty_preserves_mean_rate(self):
        gaps = arrival_gaps(20000, 1000.0, arrival="bursty", seed=0)
        # long-run offered rate = n / total time, within sampling noise
        assert 20000 / gaps.sum() == pytest.approx(1000.0, rel=0.15)

    def test_bursty_has_zero_gaps_inside_bursts(self):
        gaps = arrival_gaps(5000, 1000.0, arrival="bursty", seed=0)
        assert np.count_nonzero(gaps == 0.0) > 0

    def test_bursty_is_burstier_than_poisson(self):
        """Squared coefficient of variation separates the processes."""
        poisson = arrival_gaps(20000, 1000.0, arrival="poisson", seed=0)
        bursty = arrival_gaps(20000, 1000.0, arrival="bursty", seed=0)

        def cv2(gaps):
            return gaps.var() / gaps.mean() ** 2

        assert cv2(bursty) > cv2(poisson)

    def test_deterministic_under_seed(self):
        a = arrival_gaps(1000, 500.0, arrival="bursty", seed=3)
        b = arrival_gaps(1000, 500.0, arrival="bursty", seed=3)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("kwargs,match", [
        ({"n": 0, "rate_rps": 1.0}, "n must be positive"),
        ({"n": 10, "rate_rps": 0.0}, "rate_rps must be positive"),
        ({"n": 10, "rate_rps": 1.0, "arrival": "nope"}, "unknown arrival"),
        ({"n": 10, "rate_rps": 1.0, "arrival": "bursty", "zipf_a": 1.0},
         "zipf_a"),
    ])
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            arrival_gaps(**kwargs)


class TestClosedLoop:
    def test_closed_loop_serves_everything(self):
        requests = make_traffic("zipfian", 400, seed=0)
        report = run_closed_loop(frontend_factory(), requests, concurrency=8)
        assert report.n_requests == 400
        assert report.ok == 400
        assert report.concurrency == 8
        assert report.offered_rps is None
        assert report.throughput_rps > 0
        assert report.latency["p50"] <= report.latency["p99"]

    def test_closed_loop_rejects_invalid_concurrency(self):
        with pytest.raises(ValueError, match="concurrency"):
            run_closed_loop(frontend_factory(),
                            make_traffic("zipfian", 10), concurrency=0)


class TestOpenLoop:
    def test_open_loop_accounts_for_every_request(self):
        requests = make_traffic("zipfian", 300, seed=1)
        report = run_open_loop(frontend_factory(), requests,
                               rate_rps=5000.0, arrival="poisson", seed=1)
        assert report.n_requests == 300
        assert sum(report.statuses.values()) == 300
        assert report.arrival == "poisson"
        assert report.offered_rps == 5000.0

    def test_open_loop_overload_produces_explicit_rejects(self):
        requests = make_traffic("zipfian", 400, seed=2)
        factory = frontend_factory(
            admission=AdmissionConfig(rate=500.0, burst=16,
                                      max_queue_depth=64))
        report = run_open_loop(factory, requests, rate_rps=50_000.0,
                               arrival="bursty", seed=2)
        assert sum(report.statuses.values()) == 400
        assert report.statuses.get("rejected", 0) > 0
        assert report.reject_rate > 0
        assert report.statuses.get("dropped", 0) == 0

    def test_report_as_dict_is_json_shaped(self):
        requests = make_traffic("strided", 100, seed=0)
        report = run_closed_loop(frontend_factory(), requests, concurrency=4)
        payload = report.as_dict()
        assert json.loads(json.dumps(payload)) == payload
        for field in ("statuses", "latency", "reject_rate",
                      "mean_batch_size", "peak_queue_depth"):
            assert field in payload

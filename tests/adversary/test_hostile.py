"""Hostile trace synthesis: one shard takes everything."""

import pytest

from repro.adversary import run_crack, synthesize_hostile_trace
from repro.serve import AdmissionConfig, BatchConfig, FaultPolicy, Frontend
from repro.store import ShardedStore


def cracked(scheme="pdisp", n_shards=16):
    def build():
        store = ShardedStore(n_shards=n_shards, scheme=scheme,
                             shard_capacity=256)
        return Frontend(
            store,
            batch=BatchConfig(max_batch_size=32, max_wait_s=0.001),
            admission=AdmissionConfig(rate=None, max_queue_depth=4096),
            policy=FaultPolicy(timeout_s=5.0, max_retries=0),
        )

    return run_crack(build, key_bits=10, crack_keys=64)


class TestSynthesis:
    def test_every_request_hits_one_shard(self):
        result = cracked()
        trace = synthesize_hostile_trace(result, 500, distinct_keys=8)
        store = ShardedStore(n_shards=16, scheme="pdisp",
                             shard_capacity=256)
        shards = {store.shard_for(r.key) for r in trace.requests}
        assert len(shards) == 1
        assert len(trace) == 500
        assert len(trace.keys) <= 8

    def test_put_mode_carries_values(self):
        result = cracked()
        trace = synthesize_hostile_trace(result, 10, op="put")
        assert all(r.op == "put" for r in trace.requests)
        assert [r.value for r in trace.requests] == list(range(10))

    def test_gf2_crack_generates_keys_on_demand(self):
        """An exact (gf2) crack has no buckets, yet still feeds the
        synthesizer: keys are enumerated from the recovered model."""
        result = cracked(scheme="traditional")
        assert result.method == "gf2"
        trace = synthesize_hostile_trace(result, 100, target_class=3,
                                         distinct_keys=4)
        store = ShardedStore(n_shards=16, scheme="traditional",
                             shard_capacity=256)
        assert len({store.shard_for(r.key) for r in trace.requests}) == 1

    def test_drives_concentration_to_the_corner(self):
        """Replaying the trace pins Eq. 1 / Eq. 2 at their worst: the
        whole point of the crack, measured."""
        result = cracked()
        trace = synthesize_hostile_trace(result, 2000)
        store = ShardedStore(n_shards=16, scheme="pdisp",
                             shard_capacity=256)
        for request in trace.requests:
            store.get(request.key)
        telemetry = store.telemetry()
        assert telemetry.tail_load >= 8.0
        assert telemetry.concentration >= 8.0


class TestValidation:
    def test_rejects_empty_traces_and_bad_ops(self):
        result = cracked()
        with pytest.raises(ValueError, match="n_requests"):
            synthesize_hostile_trace(result, 0)
        with pytest.raises(ValueError, match="op"):
            synthesize_hostile_trace(result, 10, op="scan")

    def test_rejects_unknown_class(self):
        result = cracked()
        with pytest.raises(ValueError, match="no keys"):
            synthesize_hostile_trace(result, 10, target_class=999)

"""The probe adversary: exact cracks, bucketing fallbacks, economics."""

import asyncio

import pytest

from repro.adversary import ProbeAdversary, run_crack
from repro.serve import AdmissionConfig, BatchConfig, FaultPolicy, Frontend
from repro.store import ShardedStore


def frontend_factory(scheme, n_shards=16):
    def build():
        store = ShardedStore(n_shards=n_shards, scheme=scheme,
                             shard_capacity=256)
        return Frontend(
            store,
            batch=BatchConfig(max_batch_size=32, max_wait_s=0.001),
            admission=AdmissionConfig(rate=None, max_queue_depth=4096),
            policy=FaultPolicy(timeout_s=5.0, max_retries=0),
        )

    return build


def crack(scheme, **kwargs):
    kwargs.setdefault("key_bits", 10)
    kwargs.setdefault("crack_keys", 64)
    return run_crack(frontend_factory(scheme), **kwargs)


class TestLinearSchemes:
    @pytest.mark.parametrize("scheme", ["traditional", "xor"])
    def test_exact_recovery(self, scheme):
        """GF(2)-linear schemes are fully reconstructed: the model's
        class prediction matches true routing for every universe key,
        not just the held-out sample."""
        result = crack(scheme)
        assert result.method == "gf2"
        assert result.verified
        assert result.accuracy == 1.0

        store = ShardedStore(n_shards=16, scheme=scheme,
                             shard_capacity=256)
        rep_shard = {j: store.shard_for(rep)
                     for j, rep in enumerate(result.reps)}
        for key in range(1 << result.key_bits):
            predicted = result.predict(key)
            assert predicted is not None
            assert rep_shard[predicted] == store.shard_for(key)

    def test_linear_crack_needs_no_bucketing(self):
        result = crack("traditional")
        assert result.buckets == {}
        assert len(result.basis_labels) == result.key_bits


class TestPrimeSchemes:
    @pytest.mark.parametrize("scheme", ["pmod", "pdisp", "keyed"])
    def test_forces_bucketing(self, scheme):
        """Non-GF(2)-linear schemes fail the held-out verification and
        fall to per-key bucketing — and the buckets are still correct
        (each one is a true shard equivalence class)."""
        result = crack(scheme)
        assert result.method == "bucketing"
        assert not result.verified

        store = ShardedStore(n_shards=16, scheme=scheme,
                             shard_capacity=256)
        for class_id, keys in result.buckets.items():
            shards = {store.shard_for(key) for key in keys}
            assert len(shards) == 1, f"class {class_id} spans {shards}"

    def test_prime_probe_bill_exceeds_linear(self):
        """The attack-cost asymmetry the adversary experiment curves:
        bucketing pays per key, the GF(2) solve pays once."""
        linear = crack("traditional")
        prime = crack("pmod")
        assert prime.probes > linear.probes


class TestDeterminism:
    def test_same_seed_same_crack(self):
        first = crack("pdisp", seed=3)
        second = crack("pdisp", seed=3)
        assert first.probes == second.probes
        assert first.conflict_tests == second.conflict_tests
        assert first.buckets == second.buckets
        assert first.reps == second.reps


class TestValidation:
    def test_key_bits_bounds(self):
        async def scenario(bits):
            async with frontend_factory("traditional")() as frontend:
                ProbeAdversary(frontend, key_bits=bits)

        with pytest.raises(ValueError, match="key_bits"):
            asyncio.run(scenario(0))
        with pytest.raises(ValueError, match="key_bits"):
            asyncio.run(scenario(40))

    def test_needs_two_classes(self):
        async def scenario():
            async with frontend_factory("traditional",
                                        n_shards=2)() as frontend:
                ProbeAdversary(frontend, n_classes=1)

        with pytest.raises(ValueError, match="classes"):
            asyncio.run(scenario())

    def test_crack_keys_capped_by_universe(self):
        async def scenario():
            async with frontend_factory("traditional")() as frontend:
                return ProbeAdversary(frontend, key_bits=4,
                                      crack_keys=1000).crack_keys

        assert asyncio.run(scenario()) == 16


class TestClusterTarget:
    def test_cracks_key_to_node_map(self):
        """Pointed at a frontend over a Cluster (which batches per
        *node*), the identical probes learn the key->node map: every
        recovered class is one node's key set."""
        from repro.cluster import Cluster, ReplicationConfig

        cluster_box = {}

        def build():
            cluster = Cluster(n_nodes=5, node_scheme="pmod",
                              shard_scheme="pmod", shards_per_node=8,
                              shard_capacity=64,
                              replication=ReplicationConfig(replicas=2))
            cluster_box["cluster"] = cluster
            return Frontend(
                cluster,
                batch=BatchConfig(max_batch_size=16, max_wait_s=0.001),
                admission=AdmissionConfig(rate=None, max_queue_depth=4096),
                policy=FaultPolicy(timeout_s=5.0, max_retries=0),
            )

        result = run_crack(build, key_bits=8, crack_keys=32)
        cluster = cluster_box["cluster"]
        assert result.n_classes == cluster.n_nodes
        for keys in result.buckets.values() or [result.reps]:
            nodes = {cluster.shard_for(key) for key in keys}
            assert len(nodes) == 1

"""The conflict oracle: co-batching as a deterministic side channel."""

import asyncio

import pytest

from repro.adversary import ConflictOracle
from repro.adversary.oracle import OracleError
from repro.serve import AdmissionConfig, BatchConfig, FaultPolicy, Frontend
from repro.store import ShardedStore


def make_frontend(scheme="traditional", n_shards=8, max_batch_size=16,
                  max_queue_depth=1024, rate=None):
    store = ShardedStore(n_shards=n_shards, scheme=scheme,
                         shard_capacity=128)
    return Frontend(
        store,
        batch=BatchConfig(max_batch_size=max_batch_size, max_wait_s=0.001),
        admission=AdmissionConfig(rate=rate,
                                  max_queue_depth=max_queue_depth),
        policy=FaultPolicy(timeout_s=5.0, max_retries=0),
    )


def run(coro):
    return asyncio.run(coro)


class TestConstruction:
    def test_rejects_too_small_batches(self):
        async def scenario():
            async with make_frontend(max_batch_size=2) as frontend:
                ConflictOracle(frontend, reps=3)

        with pytest.raises(ValueError, match="max_batch_size"):
            run(scenario())

    def test_rejects_nonpositive_reps(self):
        async def scenario():
            async with make_frontend() as frontend:
                ConflictOracle(frontend, reps=0)

        with pytest.raises(ValueError, match="reps"):
            run(scenario())


class TestColocated:
    def test_matches_ground_truth_routing(self):
        """colocated(a, b) answers exactly `shard_for(a) == shard_for(b)`
        for every probe pair — the timing read is a faithful oracle."""

        async def scenario():
            async with make_frontend(n_shards=8) as frontend:
                oracle = ConflictOracle(frontend, reps=3)
                store = frontend.store
                outcomes = []
                for probe in range(24):
                    observed = await oracle.colocated(probe, 0)
                    truth = store.shard_for(probe) == store.shard_for(0)
                    outcomes.append(observed == truth)
                return outcomes

        assert all(run(scenario()))

    def test_positions_reflect_batch_order(self):
        """A co-submitted burst of B same-shard keys drains as one
        batch with positions 1..B; a different-shard key reads 1."""

        async def scenario():
            async with make_frontend(n_shards=8) as frontend:
                oracle = ConflictOracle(frontend, reps=3)
                # traditional: key & 7 — keys 8, 16, 24 share shard 0.
                same = await oracle.batch_positions([8, 16, 24])
                mixed = await oracle.batch_positions([8, 1])
                return same, mixed

        same, mixed = run(scenario())
        assert same == [1, 2, 3]
        assert mixed == [1, 1]

    def test_probe_accounting(self):
        async def scenario():
            async with make_frontend() as frontend:
                oracle = ConflictOracle(frontend, reps=3)
                await oracle.colocated(1, 2)
                await oracle.colocated(3, 4)
                return oracle.probes, oracle.conflict_tests

        probes, tests = run(scenario())
        assert probes == 8  # two bursts of reps + 1
        assert tests == 2

    def test_throttled_burst_raises(self):
        """A rejected probe yields no timing information — the oracle
        refuses to guess rather than silently misclassify."""

        async def scenario():
            async with make_frontend(max_queue_depth=1) as frontend:
                oracle = ConflictOracle(frontend, reps=3)
                for _ in range(64):  # enough bursts to trip the queue cap
                    await oracle.colocated(1, 9)

        with pytest.raises(OracleError):
            run(scenario())

"""Cross-module property tests on core invariants (hypothesis-driven)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import (
    FullyAssociativeCache,
    SetAssociativeCache,
    SkewedAssociativeCache,
)
from repro.cpu import build_hierarchy
from repro.hardware import PolynomialModUnit, TlbCachedPrimeModulo
from repro.hashing import (
    PrimeModuloIndexing,
    SkewedXorFamily,
    TraditionalIndexing,
    make_indexing,
)

TRACE = st.lists(
    st.tuples(st.integers(0, 1 << 20), st.booleans()),
    min_size=1, max_size=400,
)


class TestCacheInvariants:
    @settings(max_examples=30, deadline=None)
    @given(TRACE, st.sampled_from(["traditional", "xor", "pmod", "pdisp"]))
    def test_occupancy_never_exceeds_capacity(self, trace, key):
        cache = SetAssociativeCache(16, 2, make_indexing(key, 16))
        for addr, w in trace:
            cache.access(addr, w)
        assert len(cache.resident_blocks()) <= cache.n_blocks

    @settings(max_examples=30, deadline=None)
    @given(TRACE)
    def test_fa_lru_inclusion(self, trace):
        """A larger fully associative LRU cache always contains every
        block a smaller one holds (LRU stack/inclusion property)."""
        small = FullyAssociativeCache(8)
        large = FullyAssociativeCache(32)
        for addr, w in trace:
            small.access(addr, w)
            large.access(addr, w)
        for block in list(small._lru):
            assert large.contains(block)

    @settings(max_examples=30, deadline=None)
    @given(TRACE)
    def test_fa_never_worse_than_setassoc_same_capacity(self, trace):
        """Read-only LRU: full associativity cannot have more misses
        than a set-associative cache of equal capacity."""
        setassoc = SetAssociativeCache(16, 2, TraditionalIndexing(16))
        fa = FullyAssociativeCache(32)
        for addr, _ in trace:
            setassoc.access(addr)
            fa.access(addr)
        assert fa.stats.misses <= setassoc.stats.misses

    @settings(max_examples=20, deadline=None)
    @given(TRACE)
    def test_skewed_accounting_conserved(self, trace):
        cache = SkewedAssociativeCache(SkewedXorFamily(16, 4))
        for addr, w in trace:
            cache.access(addr, w)
        s = cache.stats
        assert s.hits + s.misses == len(trace)
        assert s.evictions <= s.misses
        assert s.writebacks <= s.evictions

    @settings(max_examples=20, deadline=None)
    @given(TRACE)
    def test_repeat_trace_is_deterministic(self, trace):
        a = SetAssociativeCache(16, 2, PrimeModuloIndexing(16))
        b = SetAssociativeCache(16, 2, PrimeModuloIndexing(16))
        for addr, w in trace:
            ra = a.access(addr, w)
            rb = b.access(addr, w)
            assert ra == rb


class TestHierarchyInvariants:
    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 1 << 24), st.booleans()),
                    min_size=1, max_size=300))
    def test_memory_reads_equal_l2_misses(self, trace):
        h = build_hierarchy("pmod")
        reads = 0
        for addr, w in trace:
            reads += len(h.access(addr, w).memory_reads)
        assert reads == h.l2.stats.misses

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(0, 1 << 24), min_size=1, max_size=300))
    def test_l1_filters_l2_traffic(self, addrs):
        h = build_hierarchy("base")
        for addr in addrs:
            h.access(addr)
        # Read-only traffic: L2 sees exactly the L1 misses.
        assert h.l2.stats.accesses == h.l1.stats.misses


class TestHardwareEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(st.integers(0, 2**26 - 1))
    def test_all_index_paths_agree(self, block):
        """Software modulo, polynomial hardware and the TLB-cached path
        must produce the same L2 set for every block address."""
        soft = PrimeModuloIndexing(2048)
        poly = PolynomialModUnit(2048, address_bits=32, block_bytes=64)
        tlb = TlbCachedPrimeModulo(2048)
        assert soft.index(block) == poly.compute(block) == \
            tlb.index_for_block(block)

"""Smoke tests: every example script runs and prints sane output."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=600):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout, check=True,
    ).stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "miss rate" in out
        assert "removed" in out

    def test_hardware_walkthrough(self):
        out = run_example("hardware_walkthrough.py")
        assert "true modulo" in out
        assert "2 iteration(s)" in out
        assert "pDisp" in out

    def test_skewed_cache_demo(self):
        out = run_example("skewed_cache_demo.py")
        assert "Over-capacity cyclic sweep" in out
        assert "Resident working set" in out

    def test_trace_workflow(self):
        out = run_example("trace_workflow.py")
        assert "Dinero records" in out
        assert "pMod  L2 misses" in out

    def test_conflict_diagnosis(self):
        out = run_example("conflict_diagnosis.py")
        assert "Hottest traditional L2 sets" in out
        assert "Inter-bank dispersion" in out

    def test_custom_workload_advisor(self):
        out = run_example("custom_workload_advisor.py")
        assert "Predicted quality score" in out
        assert "Simulated execution" in out

    def test_hashing_analysis_single_stride_only(self):
        # Full sweep is slow; the single-stride analysis is the fast path
        # exercised here via a tiny custom driver.
        from repro.hashing import balance, strided_addresses
        from repro.experiments.stride_sweep import default_hashes
        for name, h in default_hashes().items():
            b = balance(h, strided_addresses(7, 8192))
            assert b < 1.2, name  # odd stride: everyone is fine

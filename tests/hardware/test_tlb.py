"""Tests for the TLB-cached prime modulo unit (Section 3.1.1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware import TlbCachedPrimeModulo


class TestTlbCachedPrimeModulo:
    @pytest.fixture
    def unit(self):
        return TlbCachedPrimeModulo(2048, page_bytes=4096, block_bytes=64,
                                    tlb_entries=8)

    def test_matches_direct_modulo(self, unit):
        rng = np.random.default_rng(5)
        for addr in rng.integers(0, 2**32, size=5000):
            addr = int(addr)
            assert unit.index_for_address(addr) == (addr >> 6) % 2039

    def test_block_interface(self, unit):
        for block in (0, 1, 2039, 123456789):
            assert unit.index_for_block(block) == block % 2039

    def test_tlb_hit_on_same_page(self, unit):
        unit.index_for_address(0x10000)
        unit.index_for_address(0x10040)
        assert unit.stats.hits == 1
        assert unit.stats.misses == 1

    def test_tlb_miss_on_new_page(self, unit):
        unit.index_for_address(0x10000)
        unit.index_for_address(0x20000)
        assert unit.stats.misses == 2

    def test_lru_eviction(self, unit):
        for page in range(9):  # capacity 8
            unit.index_for_address(page << 12)
        assert unit.stats.evictions == 1
        unit.index_for_address(0)  # page 0 was evicted
        assert unit.stats.misses == 10

    def test_lru_recency_update(self, unit):
        for page in range(8):
            unit.index_for_address(page << 12)
        unit.index_for_address(0)          # touch page 0 -> MRU
        unit.index_for_address(8 << 12)    # evicts page 1, not 0
        unit.index_for_address(0)
        assert unit.stats.hits == 2

    def test_hit_rate(self, unit):
        unit.index_for_address(0)
        unit.index_for_address(64)
        unit.index_for_address(128)
        assert unit.stats.hit_rate == pytest.approx(2 / 3)

    def test_selector_is_narrow(self, unit):
        """The L1-miss-path work is one narrow add + tiny select: the
        datapath max is n_set - 1 + blocks_per_page - 1."""
        assert unit.selector.max_input == 2039 - 1 + 64 - 1

    def test_rejects_negative_address(self, unit):
        with pytest.raises(ValueError):
            unit.index_for_address(-1)

    def test_rejects_tiny_page(self):
        with pytest.raises(ValueError):
            TlbCachedPrimeModulo(2048, page_bytes=32, block_bytes=64)

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            TlbCachedPrimeModulo(2048, tlb_entries=0)

    @given(st.integers(min_value=0, max_value=2**48 - 1))
    @settings(max_examples=300)
    def test_equivalence_property(self, addr):
        unit = TlbCachedPrimeModulo(2048, tlb_entries=4)
        assert unit.index_for_address(addr) == (addr >> 6) % 2039

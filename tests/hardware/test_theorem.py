"""Tests for Theorem 1 and the selector parameterization."""

import pytest

from repro.hardware import iterations_required, selector_t


class TestSelectorT:
    def test_three_inputs_is_t0(self):
        assert selector_t(3) == 0

    def test_258_inputs_is_t8(self):
        assert selector_t(258) == 8

    def test_two_inputs(self):
        assert selector_t(2) == 0

    def test_rejects_below_two(self):
        with pytest.raises(ValueError):
            selector_t(1)


class TestTheorem1:
    def test_paper_example_32bit(self):
        """'For a 32-bit machine with n_set_phys = 2048 and a 64-byte
        cache line size, the prime modulo can be computed with only two
        iterations.'"""
        assert iterations_required(32, 64, 2048, selector_inputs=3) == 2

    def test_paper_example_64bit_small_selector(self):
        """'with a 64-bit machine, it requires 6 iterations using a
        subtract&select with 3-input selector'"""
        assert iterations_required(64, 64, 2048, selector_inputs=3) == 6

    def test_paper_example_64bit_wide_selector(self):
        """'but requires 3 iterations with a 258-input selector.'"""
        assert iterations_required(64, 64, 2048, selector_inputs=258) == 3

    def test_mersenne_needs_fewer(self):
        """Δ = 1 maximizes the per-iteration bit absorption."""
        assert iterations_required(64, 64, 8192, selector_inputs=3) <= \
            iterations_required(64, 64, 2048, selector_inputs=3)

    def test_zero_iterations_when_address_fits(self):
        # 17-bit addresses, 64B lines -> 11-bit block addresses already
        # within the selector's reach.
        assert iterations_required(17, 64, 2048, selector_inputs=3) == 0

    def test_rejects_power_of_two_n_sets(self):
        with pytest.raises(ValueError):
            iterations_required(32, 64, 2048, n_sets=2048)

    def test_monotone_in_address_bits(self):
        prev = 0
        for bits in (32, 40, 48, 56, 64):
            it = iterations_required(bits, 64, 2048, selector_inputs=3)
            assert it >= prev
            prev = it

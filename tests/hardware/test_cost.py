"""Tests for the hardware cost model."""

from repro.hardware import (
    prime_displacement_cost,
    prime_modulo_iterative_cost,
    prime_modulo_polynomial_cost,
    traditional_cost,
    xor_cost,
)


class TestCosts:
    def test_traditional_is_free(self):
        cost = traditional_cost(2048)
        assert cost.adders == 0
        assert cost.adder_stages == 0
        assert not cost.width_dependent

    def test_xor_is_one_gate_stage(self):
        cost = xor_cost(2048)
        assert cost.adders == 0
        assert cost.adder_stages == 1

    def test_pdisp_width_independent(self):
        """Section 3.2: pDisp complexity is 'mostly independent of the
        machine sizes'."""
        cost = prime_displacement_cost(2048)
        assert not cost.width_dependent
        assert cost.adders == 2  # 9·T = T + (T << 3), plus x

    def test_pdisp_cost_grows_with_popcount(self):
        sparse = prime_displacement_cost(2048, displacement=9)    # 1001b
        dense = prime_displacement_cost(2048, displacement=0b10101011)
        assert dense.adders > sparse.adders

    def test_polynomial_width_dependent(self):
        c32 = prime_modulo_polynomial_cost(2048, address_bits=32)
        c64 = prime_modulo_polynomial_cost(2048, address_bits=64)
        assert c64.adders > c32.adders
        assert c32.width_dependent

    def test_polynomial_uses_two_input_selector(self):
        assert prime_modulo_polynomial_cost(2048).selector_inputs == 2

    def test_iterative_cheaper_hardware_than_polynomial_on_64bit(self):
        """Section 3.1: iterative linear is 'more desirable for low
        hardware budget' — fewer parallel adders, more stages."""
        poly = prime_modulo_polynomial_cost(2048, address_bits=64)
        iterative = prime_modulo_iterative_cost(2048, address_bits=64)
        assert iterative.adder_stages >= poly.adder_stages

    def test_polynomial_latency_smaller_when_delta_small(self):
        """Section 3.1: polynomial allows smaller latency when Δ small."""
        poly = prime_modulo_polynomial_cost(8192, address_bits=64)   # Δ=1
        iterative = prime_modulo_iterative_cost(8192, address_bits=64)
        assert poly.adder_stages <= iterative.adder_stages

    def test_mersenne_polynomial_is_chunk_sum(self):
        """Δ = 1 (Equation 5): each chunk contributes one addend."""
        cost = prime_modulo_polynomial_cost(8192, address_bits=32, block_bytes=64)
        # 26-bit block address, 13-bit chunks: x + t1 + fold marker.
        assert cost.adders <= 3

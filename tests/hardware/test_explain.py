"""Tests for the polynomial unit's explain() narration."""

import numpy as np

from repro.hardware import PolynomialModUnit


class TestExplain:
    def test_final_index_matches_compute(self):
        unit = PolynomialModUnit(2048, address_bits=32, block_bytes=64)
        rng = np.random.default_rng(9)
        for addr in rng.integers(0, 2**26, size=50):
            addr = int(addr)
            lines = unit.explain(addr)
            assert lines[-1].endswith(f"index {unit.compute(addr)}")

    def test_mentions_geometry(self):
        unit = PolynomialModUnit(2048)
        lines = unit.explain(123456)
        assert "Δ=9" in lines[0]
        assert "n_set=2039" in lines[0]

    def test_chunk_lines_present(self):
        unit = PolynomialModUnit(2048, address_bits=32, block_bytes=64)
        lines = unit.explain((1 << 25) | 12345)
        assert any(l.strip().startswith("t1 =") for l in lines)
        assert any(l.strip().startswith("t2 =") for l in lines)

    def test_explain_does_not_disturb_compute_stats(self):
        unit = PolynomialModUnit(2048)
        unit.compute(99999)
        stats_before = unit.last_stats
        unit.explain(12345)
        assert unit.last_stats is stats_before

"""Tests for the subtract&select unit (Figure 2)."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware import SubtractSelectUnit


class TestSubtractSelect:
    def test_identity_below_modulus(self):
        unit = SubtractSelectUnit(2039, max_input=4077)
        assert unit.reduce(2038) == 2038

    def test_single_subtraction(self):
        unit = SubtractSelectUnit(2039, max_input=4077)
        assert unit.reduce(2039) == 0
        assert unit.reduce(4077) == 2038

    def test_two_input_selector_for_figure4_range(self):
        """Figure 4 argues two selector inputs suffice once carries are
        folded: the datapath maximum is just below 2·n_set."""
        unit = SubtractSelectUnit(2039, max_input=2 * 2039 - 1)
        assert unit.n_inputs == 2

    def test_n_inputs_grows_with_range(self):
        unit = SubtractSelectUnit(100, max_input=999)
        assert unit.n_inputs == 10

    def test_rejects_out_of_range(self):
        unit = SubtractSelectUnit(2039, max_input=4077)
        with pytest.raises(ValueError):
            unit.reduce(4078)
        with pytest.raises(ValueError):
            unit.reduce(-1)

    def test_rejects_bad_modulus(self):
        with pytest.raises(ValueError):
            SubtractSelectUnit(1, max_input=10)

    def test_counts_uses(self):
        unit = SubtractSelectUnit(7, max_input=20)
        unit.reduce(3)
        unit.reduce(15)
        assert unit.uses == 2

    def test_selector_shift_budget(self):
        """Theorem 1: 2^t + 2 inputs gives budget t."""
        assert SubtractSelectUnit(2039, max_input=3 * 2039 - 1).selector_shift_budget == 0
        assert SubtractSelectUnit(2039, max_input=258 * 2039 - 1).selector_shift_budget == 8

    @given(st.integers(min_value=2, max_value=5000), st.integers(min_value=0, max_value=50000))
    def test_matches_modulo(self, modulus, value):
        unit = SubtractSelectUnit(modulus, max_input=50000)
        assert unit.reduce(value) == value % modulus

"""Cross-geometry property tests for the prime-modulo hardware.

The worked examples in the paper use the 2048-set / 32-bit geometry;
these tests sweep every Table 1 geometry on 64-bit addresses to pin the
general claim: the shift/add units equal true modulo everywhere, within
Theorem 1's iteration bound, with a 2-input final selector.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware import (
    IterativeLinearUnit,
    PolynomialModUnit,
    TlbCachedPrimeModulo,
    iterations_required,
)
from repro.mathutil import largest_prime_below

GEOMETRIES = (256, 512, 1024, 2048, 4096, 8192, 16384)


@pytest.mark.parametrize("n_sets_physical", GEOMETRIES)
class TestAllGeometries64Bit:
    def test_polynomial_equals_modulo(self, n_sets_physical):
        unit = PolynomialModUnit(n_sets_physical, address_bits=64,
                                 block_bytes=64)
        prime = largest_prime_below(n_sets_physical)
        rng = np.random.default_rng(n_sets_physical)
        for addr in rng.integers(0, 2**58, size=300):
            assert unit.compute(int(addr)) == int(addr) % prime

    def test_polynomial_selector_stays_two_inputs(self, n_sets_physical):
        unit = PolynomialModUnit(n_sets_physical, address_bits=64,
                                 block_bytes=64)
        assert unit.selector.n_inputs == 2

    def test_iterative_within_theorem_bound(self, n_sets_physical):
        unit = IterativeLinearUnit(n_sets_physical, address_bits=64,
                                   block_bytes=64, selector_inputs=3)
        bound = iterations_required(64, 64, n_sets_physical,
                                    selector_inputs=3)
        rng = np.random.default_rng(n_sets_physical + 1)
        prime = unit.n_sets
        for addr in rng.integers(0, 2**58, size=300):
            assert unit.compute(int(addr)) == int(addr) % prime
            assert unit.last_counts.iterations <= bound

    def test_tlb_path_agrees(self, n_sets_physical):
        tlb = TlbCachedPrimeModulo(n_sets_physical, tlb_entries=8)
        prime = tlb.n_sets
        rng = np.random.default_rng(n_sets_physical + 2)
        for addr in rng.integers(0, 2**48, size=300):
            assert tlb.index_for_address(int(addr)) == (int(addr) >> 6) % prime


class TestExtremeDatapaths:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=2**58 - 1))
    def test_polynomial_max_address(self, addr):
        """The largest address the 64-bit datapath admits still reduces
        correctly (boundary of every fold stage)."""
        unit = PolynomialModUnit(2048, address_bits=64, block_bytes=64)
        assert unit.compute(addr) == addr % 2039

    def test_all_ones_addresses(self):
        for phys in GEOMETRIES:
            unit = PolynomialModUnit(phys, address_bits=64, block_bytes=64)
            addr = (1 << unit.block_address_bits) - 1
            assert unit.compute(addr) == addr % unit.n_sets

    def test_zero(self):
        for phys in GEOMETRIES:
            assert PolynomialModUnit(phys).compute(0) == 0

    def test_values_straddling_the_prime(self):
        unit = PolynomialModUnit(2048)
        for addr in (2038, 2039, 2040, 2 * 2039 - 1, 2 * 2039, 2 * 2039 + 1):
            assert unit.compute(addr) == addr % 2039

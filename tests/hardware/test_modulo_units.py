"""Equivalence tests: the shift/add hardware equals true modulo."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware import IterativeLinearUnit, PolynomialModUnit, iterations_required


class TestIterativeLinear:
    def test_paper_geometry(self):
        unit = IterativeLinearUnit(2048, address_bits=32, block_bytes=64)
        assert unit.n_sets == 2039
        assert unit.delta == 9
        assert unit.block_address_bits == 26

    @given(st.integers(min_value=0, max_value=2**26 - 1))
    def test_equals_modulo_32bit(self, block_addr):
        unit = IterativeLinearUnit(2048, address_bits=32, block_bytes=64)
        assert unit.compute(block_addr) == block_addr % 2039

    @given(st.integers(min_value=0, max_value=2**58 - 1))
    @settings(max_examples=200)
    def test_equals_modulo_64bit(self, block_addr):
        unit = IterativeLinearUnit(2048, address_bits=64, block_bytes=64,
                                   selector_inputs=3)
        assert unit.compute(block_addr) == block_addr % 2039

    def test_iteration_count_respects_theorem1_32bit(self):
        """Paper: two iterations on a 32-bit machine with 2048 sets."""
        unit = IterativeLinearUnit(2048, address_bits=32, block_bytes=64,
                                   selector_inputs=3)
        bound = iterations_required(32, 64, 2048, selector_inputs=3)
        worst = 0
        rng = np.random.default_rng(11)
        for block_addr in rng.integers(0, 2**26, size=2000):
            unit.compute(int(block_addr))
            worst = max(worst, unit.last_counts.iterations)
        assert worst <= bound
        assert bound == 2

    def test_iteration_count_respects_theorem1_64bit(self):
        unit = IterativeLinearUnit(2048, address_bits=64, block_bytes=64,
                                   selector_inputs=3)
        bound = iterations_required(64, 64, 2048, selector_inputs=3)
        rng = np.random.default_rng(13)
        for block_addr in rng.integers(0, 2**58, size=500):
            unit.compute(int(block_addr))
            assert unit.last_counts.iterations <= bound

    def test_rejects_out_of_datapath(self):
        unit = IterativeLinearUnit(2048, address_bits=32, block_bytes=64)
        with pytest.raises(ValueError):
            unit.compute(2**26)
        with pytest.raises(ValueError):
            unit.compute(-1)

    def test_rejects_bad_selector(self):
        with pytest.raises(ValueError):
            IterativeLinearUnit(2048, selector_inputs=1)

    def test_mersenne_geometry(self):
        """8192 physical sets -> n_set 8191 (Mersenne), Δ = 1."""
        unit = IterativeLinearUnit(8192, address_bits=32, block_bytes=64)
        assert unit.delta == 1
        for addr in (0, 8191, 8192, 2**26 - 1, 1234567):
            assert unit.compute(addr) == addr % 8191


class TestPolynomial:
    @pytest.fixture
    def unit(self):
        return PolynomialModUnit(2048, address_bits=32, block_bytes=64)

    def test_paper_geometry(self, unit):
        assert unit.n_sets == 2039
        assert unit.delta == 9
        assert not unit.is_mersenne_case

    @given(st.integers(min_value=0, max_value=2**26 - 1))
    def test_equals_modulo_32bit(self, block_addr):
        unit = PolynomialModUnit(2048, address_bits=32, block_bytes=64)
        assert unit.compute(block_addr) == block_addr % 2039

    @given(st.integers(min_value=0, max_value=2**58 - 1))
    @settings(max_examples=200)
    def test_equals_modulo_64bit(self, block_addr):
        unit = PolynomialModUnit(2048, address_bits=64, block_bytes=64)
        assert unit.compute(block_addr) == block_addr % 2039

    def test_two_input_selector_suffices(self, unit):
        """Figure 4's claim: after folding, the selector needs 2 inputs."""
        assert unit.selector.n_inputs == 2

    def test_mersenne_case_flag(self):
        unit = PolynomialModUnit(8192, address_bits=32, block_bytes=64)
        assert unit.is_mersenne_case
        for addr in (0, 8190, 8191, 2**26 - 1, 7777777):
            assert unit.compute(addr) == addr % 8191

    def test_various_geometries(self):
        for phys in (256, 512, 1024, 2048, 4096, 8192, 16384):
            unit = PolynomialModUnit(phys, address_bits=40, block_bytes=64)
            rng = np.random.default_rng(phys)
            for addr in rng.integers(0, 2**34, size=200):
                assert unit.compute(int(addr)) == int(addr) % unit.n_sets

    def test_stats_populated(self, unit):
        unit.compute(123456789 % 2**26)
        assert unit.last_stats.adds > 0
        assert unit.last_stats.addends >= 3  # x, t1, t2

    def test_rejects_out_of_datapath(self, unit):
        with pytest.raises(ValueError):
            unit.compute(2**26)

    def test_matches_iterative_linear(self):
        poly = PolynomialModUnit(2048, address_bits=32, block_bytes=64)
        iterative = IterativeLinearUnit(2048, address_bits=32, block_bytes=64)
        rng = np.random.default_rng(17)
        for addr in rng.integers(0, 2**26, size=1000):
            assert poly.compute(int(addr)) == iterative.compute(int(addr))

"""Replay driver: serial/concurrent equivalence and reporting."""

import pytest

from repro.store import ReplayError, ShardedStore, make_traffic, replay
from repro.store.traffic import Request


def _fresh_store(scheme="pmod"):
    return ShardedStore(n_shards=16, scheme=scheme, shard_capacity=64)


class TestReplay:
    def test_serial_report_fields(self):
        requests = make_traffic("zipfian", 1000, seed=0)
        report = replay(_fresh_store(), requests, workers=1)
        assert report.n_requests == 1000
        assert report.workers == 1
        assert report.elapsed_s > 0
        assert report.throughput_rps > 0
        assert report.telemetry.accesses == 1000

    def test_concurrent_routing_matches_serial(self):
        """Shard routing is deterministic, so the access histogram —
        and therefore balance — is identical under concurrency."""
        requests = make_traffic("strided", 2000, seed=0)
        serial = replay(_fresh_store(), requests, workers=1)
        threaded = replay(_fresh_store(), requests, workers=4)
        assert (threaded.telemetry.shard_accesses
                == serial.telemetry.shard_accesses)
        assert threaded.telemetry.balance == pytest.approx(
            serial.telemetry.balance)
        assert threaded.telemetry.accesses == 2000

    def test_concurrent_occupancy_bounded(self):
        store = ShardedStore(n_shards=4, scheme="traditional",
                             shard_capacity=16)
        requests = make_traffic("zipfian", 4000, n_keys=2048, seed=2)
        replay(store, requests, workers=8)
        assert len(store) <= store.capacity

    def test_unknown_op_rejected(self):
        with pytest.raises(ReplayError, match="unknown request op"):
            replay(_fresh_store(), [Request("frobnicate", 1)])

    def test_threaded_failure_carries_chunk_context(self):
        """A poisoned request inside a thread-pool chunk must surface
        as ReplayError naming its chunk, stream index, op and shard —
        not vanish into the pool or raise from an anonymous worker."""
        store = _fresh_store()
        requests = list(make_traffic("zipfian", 400, seed=0))
        requests[250] = Request("frobnicate", 250)
        with pytest.raises(ReplayError, match="unknown request op") as info:
            replay(store, requests, workers=4)
        error = info.value
        # 400 requests over 4 workers -> chunks of 100; index 250 is chunk 2.
        assert error.chunk_index == 2
        assert error.request_index == 250
        assert error.op == "frobnicate"
        assert error.key == 250
        assert error.shard == store.shard_for(250)
        assert isinstance(error.__cause__, ValueError)

    def test_threaded_failure_first_in_stream_order_wins(self):
        """With failures in several chunks, the raised error is the one
        from the earliest chunk, independent of thread scheduling."""
        requests = list(make_traffic("zipfian", 400, seed=0))
        requests[50] = Request("bad-early", 50)
        requests[350] = Request("bad-late", 350)
        with pytest.raises(ReplayError) as info:
            replay(_fresh_store(), requests, workers=4)
        assert info.value.chunk_index == 0
        assert info.value.request_index == 50
        assert info.value.op == "bad-early"

    def test_serial_failure_matches_threaded_shape(self):
        """The serial path raises the same typed error with the same
        context fields, so callers handle one exception either way."""
        requests = list(make_traffic("zipfian", 100, seed=1))
        requests[7] = Request("frobnicate", 7)
        with pytest.raises(ReplayError) as info:
            replay(_fresh_store(), requests, workers=1)
        assert info.value.chunk_index == 0
        assert info.value.request_index == 7
        assert info.value.op == "frobnicate"

    def test_unroutable_key_reports_shard_none(self):
        """When routing itself fails, the error still carries op/key
        context with shard=None instead of a secondary crash."""
        with pytest.raises(ReplayError, match="unroutable") as info:
            replay(_fresh_store(), [Request("get", None)])
        assert info.value.shard is None
        assert info.value.key is None

    def test_empty_stream(self):
        report = replay(_fresh_store(), [])
        assert report.n_requests == 0
        assert report.telemetry.accesses == 0

    def test_as_dict_is_json_shaped(self):
        import json

        requests = make_traffic("pow2", 200, seed=0)
        payload = replay(_fresh_store(), requests, workers=2).as_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["telemetry"]["accesses"] == 200

"""Replay driver: serial/concurrent equivalence and reporting."""

import pytest

from repro.store import ShardedStore, make_traffic, replay
from repro.store.traffic import Request


def _fresh_store(scheme="pmod"):
    return ShardedStore(n_shards=16, scheme=scheme, shard_capacity=64)


class TestReplay:
    def test_serial_report_fields(self):
        requests = make_traffic("zipfian", 1000, seed=0)
        report = replay(_fresh_store(), requests, workers=1)
        assert report.n_requests == 1000
        assert report.workers == 1
        assert report.elapsed_s > 0
        assert report.throughput_rps > 0
        assert report.telemetry.accesses == 1000

    def test_concurrent_routing_matches_serial(self):
        """Shard routing is deterministic, so the access histogram —
        and therefore balance — is identical under concurrency."""
        requests = make_traffic("strided", 2000, seed=0)
        serial = replay(_fresh_store(), requests, workers=1)
        threaded = replay(_fresh_store(), requests, workers=4)
        assert (threaded.telemetry.shard_accesses
                == serial.telemetry.shard_accesses)
        assert threaded.telemetry.balance == pytest.approx(
            serial.telemetry.balance)
        assert threaded.telemetry.accesses == 2000

    def test_concurrent_occupancy_bounded(self):
        store = ShardedStore(n_shards=4, scheme="traditional",
                             shard_capacity=16)
        requests = make_traffic("zipfian", 4000, n_keys=2048, seed=2)
        replay(store, requests, workers=8)
        assert len(store) <= store.capacity

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown request op"):
            replay(_fresh_store(), [Request("frobnicate", 1)])

    def test_empty_stream(self):
        report = replay(_fresh_store(), [])
        assert report.n_requests == 0
        assert report.telemetry.accesses == 0

    def test_as_dict_is_json_shaped(self):
        import json

        requests = make_traffic("pow2", 200, seed=0)
        payload = replay(_fresh_store(), requests, workers=2).as_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["telemetry"]["accesses"] == 200

"""Shard: bounded set-associative key→value segment."""

import pytest

from repro.store import Shard


class TestBasicOps:
    def test_put_get_round_trip(self):
        shard = Shard(capacity=64)
        shard.put(1, "one")
        assert shard.get(1) == "one"
        assert shard.stats.hits == 1

    def test_get_miss_returns_default(self):
        shard = Shard(capacity=64)
        assert shard.get(99) is None
        assert shard.get(99, default="fallback") == "fallback"
        assert shard.stats.misses == 2

    def test_none_is_a_storable_value(self):
        shard = Shard(capacity=64)
        shard.put(5, None)
        assert shard.get(5, default="fallback") is None
        assert shard.contains(5)

    def test_put_updates_in_place(self):
        shard = Shard(capacity=64)
        shard.put(1, "a")
        assert shard.put(1, "b") is None
        assert shard.get(1) == "b"
        assert shard.occupancy == 1

    def test_delete(self):
        shard = Shard(capacity=64)
        shard.put(1, "a")
        assert shard.delete(1) is True
        assert shard.delete(1) is False
        assert not shard.contains(1)
        assert shard.occupancy == 0

    def test_len_tracks_occupancy(self):
        shard = Shard(capacity=64)
        for k in range(10):
            shard.put(k, k)
        assert len(shard) == 10

    def test_items_lists_live_entries(self):
        shard = Shard(capacity=64)
        shard.put(3, "c")
        shard.put(7, "g")
        assert sorted(shard.items()) == [(3, "c"), (7, "g")]


class TestCapacityBound:
    def test_never_exceeds_capacity(self):
        shard = Shard(capacity=32, assoc=4)
        for k in range(1000):
            shard.put(k, k)
        assert len(shard) <= shard.capacity == 32

    def test_eviction_returns_victim_key(self):
        shard = Shard(capacity=4, assoc=4)  # one set of 4 ways
        for k in range(4):
            assert shard.put(k, k) is None
        evicted = shard.put(4, 4)
        assert evicted == 0  # LRU victim of the single set
        assert shard.stats.evictions == 1

    def test_lru_keeps_recent(self):
        shard = Shard(capacity=4, assoc=4)
        for k in range(4):
            shard.put(k, k)
        shard.get(0)  # refresh 0; 1 becomes LRU
        assert shard.put(4, 4) == 1

    def test_geometry(self):
        shard = Shard(capacity=64, assoc=8)
        assert shard.n_sets == 8
        assert shard.capacity == 64

    def test_assoc_clamped_to_capacity(self):
        shard = Shard(capacity=2, assoc=8)
        assert shard.assoc == 2
        assert shard.capacity == 2

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            Shard(capacity=0)
        with pytest.raises(ValueError):
            Shard(capacity=8, assoc=0)


class TestReplacementPolicies:
    @pytest.mark.parametrize("policy", ["lru", "plru", "nru", "fifo", "random"])
    def test_all_policies_serve(self, policy):
        shard = Shard(capacity=16, assoc=4, replacement=policy)
        for k in range(200):
            shard.put(k, k)
            shard.get(k % 50)
        assert len(shard) <= 16
        assert shard.stats.evictions > 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(KeyError, match="unknown replacement"):
            Shard(capacity=16, replacement="nope")

    def test_deleted_frame_refilled_before_eviction(self):
        shard = Shard(capacity=4, assoc=4)
        for k in range(4):
            shard.put(k, k)
        shard.delete(2)
        assert shard.put(9, 9) is None  # reuses the freed frame
        assert shard.stats.evictions == 0

"""Dual-epoch ShardedStore: live resharding, migration, quarantine."""

import pytest

from repro.store import (
    DEFAULT_MOVE_BUDGET,
    Migrator,
    RoutingTable,
    ShardedStore,
)


def make_store(scheme="pmod", n_shards=61, **kwargs):
    kwargs.setdefault("shard_capacity", 256)
    kwargs.setdefault("assoc", 16)
    return ShardedStore(routing=RoutingTable.create(scheme, n_shards),
                        **kwargs)


def populated(n_keys=500, **kwargs):
    store = make_store(**kwargs)
    for key in range(n_keys):
        store.put(key, key * 10)
    return store


class TestClassicSurface:
    def test_pow2_constructor_keeps_largest_prime_below(self):
        store = ShardedStore(n_shards=64, scheme="pmod")
        assert store.n_shards == 61
        assert store.epoch == 0
        assert not store.migrating

    def test_explicit_routing_overrides(self):
        store = make_store("pmod", 67)
        assert store.n_shards == 67

    def test_telemetry_carries_the_epoch(self):
        store = populated(50)
        assert store.telemetry().as_dict()["epoch"] == 0


class TestBeginCommit:
    def test_begin_requires_epoch_advance(self):
        store = make_store()
        with pytest.raises(ValueError, match="advance"):
            store.begin_reshard(RoutingTable.create("pmod", 67))  # epoch 0

    def test_double_begin_raises(self):
        store = make_store()
        store.begin_reshard(store.routing.grown())
        with pytest.raises(RuntimeError, match="in flight"):
            store.begin_reshard(store.routing.grown())

    def test_commit_without_begin_raises(self):
        with pytest.raises(RuntimeError, match="no reshard"):
            make_store().commit_reshard()

    def test_commit_reports_left_behind(self):
        store = populated(100)
        store.begin_reshard(store.routing.grown())
        assert store.commit_reshard() == 100  # nothing migrated


class TestDualEpochServing:
    def test_reads_fall_through_and_promote(self):
        store = populated(200)
        store.begin_reshard(store.routing.grown())
        backlog = store.migration_backlog()
        assert store.get(7) == 70  # served from the old epoch
        # Promotion moved the key: the old fleet shrank by one and a
        # second read no longer consults it.
        assert store.migration_backlog() == backlog - 1
        assert store.get(7) == 70

    def test_writes_land_on_the_new_epoch_only(self):
        store = populated(100)
        store.begin_reshard(store.routing.grown())
        store.put(5, "fresh")
        assert store.commit_reshard() == 99  # old copy of 5 was erased
        assert store.get(5) == "fresh"

    def test_len_and_contains_span_both_epochs(self):
        store = populated(100)
        store.begin_reshard(store.routing.grown())
        assert len(store) == 100
        assert store.contains(42)
        store.put(1000, "new-epoch")
        assert store.contains(1000)

    def test_migration_writer_wins_over_old_copy(self):
        store = populated(100)
        store.begin_reshard(store.routing.grown())
        store.put(7, "newer")  # races ahead of the migrator
        Migrator(store).run()
        assert store.get(7) == "newer"


class TestResurrectionRegression:
    """A key deleted during migration must stay dead (the PR's
    regression contract): neither the migrator nor a read may revive
    the old epoch's copy."""

    def test_delete_during_migration_cannot_resurrect(self):
        store = populated(300)
        store.begin_reshard(store.routing.grown())
        store.put(7, "rewritten")   # written during migration...
        assert store.delete(7)      # ...then deleted
        report = Migrator(store).run()
        assert report.left_behind == 0
        assert store.get(7) is None
        assert not store.contains(7)

    def test_delete_of_unmigrated_key_kills_the_old_copy(self):
        store = populated(300)
        store.begin_reshard(store.routing.grown())
        # Key 9 still lives only in the old epoch; the delete must
        # reach through, not just miss in the new fleet.
        assert store.delete(9)
        Migrator(store).run()
        assert store.get(9) is None


class TestMigrator:
    def test_bounded_chunks_drain_the_backlog(self):
        store = populated(500)
        store.begin_reshard(store.routing.grown())
        migrator = Migrator(store, budget=64)
        report = migrator.run()
        assert report.moved == 500
        assert report.left_behind == 0
        assert report.peak_in_flight <= 64
        assert max(report.chunk_sizes) <= 64
        assert not store.migrating
        # Every key survived with its value.
        assert all(store.get(k) == k * 10 for k in range(500))

    def test_step_is_a_noop_without_a_reshard(self):
        store = populated(10)
        assert Migrator(store).step() == 0

    def test_run_requires_a_reshard_in_flight(self):
        with pytest.raises(RuntimeError, match="no reshard"):
            Migrator(populated(10)).run()

    def test_max_chunks_commits_with_leftovers(self):
        store = populated(500)
        store.begin_reshard(store.routing.grown())
        report = Migrator(store, budget=50).run(max_chunks=2)
        assert report.moved == 100
        assert report.left_behind == 400
        assert not store.migrating

    def test_default_budget_is_the_module_default(self):
        assert Migrator(make_store()).budget == DEFAULT_MOVE_BUDGET

    def test_scheme_swap_migrates_across_selectors(self):
        store = populated(400, scheme="traditional", n_shards=64)
        store.begin_reshard(store.routing.reschemed("pmod"))
        report = Migrator(store).run()
        assert store.scheme == "pmod"
        assert report.left_behind == 0
        assert all(store.get(k) == k * 10 for k in range(400))


class TestQuarantine:
    def test_quarantine_reroutes_and_heal_restores(self):
        store = populated(200)
        target = store.shard_for(0)
        table = store.quarantine([target])
        assert table.epoch_id == 1
        assert store.shard_for(0) != target
        healed = store.heal()
        assert healed.quarantined == frozenset()
        assert store.shard_for(0) == target

    def test_resident_keys_become_misses_not_errors(self):
        store = populated(200)
        victim = store.shard_for(3)
        store.quarantine([victim])
        # Key 3's shard is fenced off; the store still serves (a miss).
        assert store.get(3, default="miss") in ("miss", 30)
        store.put(3, "rerouted")
        assert store.get(3) == "rerouted"

    def test_quarantine_noop_keeps_epoch(self):
        store = populated(10)
        store.quarantine([2])
        epoch = store.epoch
        store.quarantine([2])  # already quarantined
        assert store.epoch == epoch

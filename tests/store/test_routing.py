"""RoutingTable: epochs, the prime ladder, quarantine re-routing."""

import numpy as np
import pytest

from repro.store import (
    RoutingTable,
    ladder_down,
    ladder_up,
    normalize_shard_count,
    prime_capable,
)


class TestLadder:
    def test_prime_capability(self):
        assert prime_capable("pmod")
        for scheme in ("traditional", "xor", "pdisp"):
            assert not prime_capable(scheme)

    def test_pmod_climbs_prime_to_prime(self):
        assert ladder_up("pmod", 61) == 67
        assert ladder_up("pmod", 67) == 71
        assert ladder_down("pmod", 67) == 61
        assert ladder_down("pmod", 61) == 59

    def test_pow2_schemes_double_and_halve(self):
        assert ladder_up("traditional", 64) == 128
        assert ladder_up("xor", 64) == 128
        assert ladder_down("pdisp", 64) == 32

    def test_ladder_bottom_raises(self):
        with pytest.raises(ValueError):
            ladder_down("traditional", 2)
        with pytest.raises(ValueError):
            ladder_down("pmod", 2)

    def test_normalize_snaps_upward_onto_the_ladder(self):
        assert normalize_shard_count("pmod", 61) == 61
        assert normalize_shard_count("pmod", 62) == 67
        assert normalize_shard_count("xor", 64) == 64
        assert normalize_shard_count("xor", 65) == 128
        with pytest.raises(ValueError):
            normalize_shard_count("pmod", 1)


class TestConstruction:
    def test_pow2_count_keeps_classic_pmod_semantics(self):
        # The paper's construction: 64 physical shards, largest prime
        # below (61) usable — Table 1's fragmentation, unchanged.
        table = RoutingTable.create("pmod", 64)
        assert table.n_shards == 61
        assert table.n_shards_physical == 64

    def test_exact_prime_count_is_honored(self):
        table = RoutingTable.create("pmod", 67)
        assert table.n_shards == 67
        assert table.epoch_id == 0

    def test_unknown_scheme_raises(self):
        with pytest.raises(KeyError, match="unknown store scheme"):
            RoutingTable.create("nope", 64)

    def test_tables_are_immutable(self):
        table = RoutingTable.create("xor", 64)
        with pytest.raises(AttributeError):
            table.epoch_id = 5

    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError, match="epoch_id"):
            RoutingTable.create("xor", 64, epoch_id=-1)


class TestDerivation:
    def test_every_derivation_bumps_the_epoch(self):
        table = RoutingTable.create("pmod", 61)
        assert table.grown().epoch_id == 1
        assert table.reschemed("xor").epoch_id == 1
        assert table.with_quarantined([3]).epoch_id == 1
        # The original is untouched.
        assert table.epoch_id == 0

    def test_grown_walks_the_prime_ladder(self):
        table = RoutingTable.create("pmod", 61)
        grown = table.grown()
        assert grown.n_shards == 67
        assert grown.shrunk().n_shards == 61

    def test_reschemed_renormalizes_the_count(self):
        # pmod@61 -> xor must land on a power of two (64), not 61.
        table = RoutingTable.create("pmod", 61)
        swapped = table.reschemed("xor")
        assert swapped.scheme == "xor"
        assert swapped.n_shards == 64

    def test_resize_clears_quarantine(self):
        table = RoutingTable.create("pmod", 61).with_quarantined([1, 2])
        assert table.grown().quarantined == frozenset()

    def test_quarantine_noop_returns_self(self):
        table = RoutingTable.create("xor", 64).with_quarantined([5])
        assert table.with_quarantined([5]) is table
        assert table.without_quarantined([9]) is table

    def test_without_quarantined_heals(self):
        table = RoutingTable.create("xor", 64).with_quarantined([5, 6])
        healed = table.without_quarantined([5])
        assert healed.quarantined == frozenset([6])
        assert table.without_quarantined().quarantined == frozenset()

    def test_quarantine_validation(self):
        table = RoutingTable.create("xor", 4)
        with pytest.raises(ValueError, match="outside"):
            table.with_quarantined([99])
        with pytest.raises(ValueError, match="every shard"):
            table.with_quarantined([0, 1, 2, 3])


class TestQuarantineRouting:
    def test_quarantined_shard_receives_no_traffic(self):
        table = RoutingTable.create("pmod", 61).with_quarantined([7, 8])
        shards = {table.shard(k) for k in range(5000)}
        assert 7 not in shards and 8 not in shards
        assert shards <= set(table.healthy_shards())

    def test_reroute_is_the_next_healthy_shard(self):
        table = RoutingTable.create("traditional", 8).with_quarantined([3])
        # key 3 routes to shard 3 under traditional; probe lands on 4.
        assert table.shard(3) == 4

    def test_scalar_and_vector_agree_under_quarantine(self):
        table = RoutingTable.create("pmod", 61).with_quarantined([0, 13])
        keys = np.arange(10000, dtype=np.uint64) * 7
        vec = table.shard_array(keys)
        assert vec.tolist() == [table.shard(int(k)) for k in keys]

    def test_empty_quarantine_fast_path_matches_selector(self):
        table = RoutingTable.create("xor", 64)
        keys = np.arange(4096, dtype=np.uint64)
        assert np.array_equal(table.shard_array(keys),
                              table.selector.shard_array(keys))


class TestDescribe:
    def test_json_friendly_summary(self):
        table = RoutingTable.create("pmod", 67).with_quarantined([2])
        assert table.describe() == {
            "scheme": "pmod",
            "epoch_id": 1,
            "n_shards": 67,
            "n_shards_physical": 128,
            "quarantined": [2],
        }

"""Sequence invariance (paper §3, Property 2) of the ShardSelector adapters.

The analysis-layer checker accepts a selector directly (it duck-types
the IndexingFunction surface), so the paper's property transfers
verbatim to shard routing on strided key streams: traditional and pMod
are sequence invariant on every stride; XOR is not; pDisp is
*partially* invariant — strictly fewer violations than XOR over the
same streams, which is what keeps its concentration near pMod's
(Section 3.3).
"""

import pytest

from repro.hashing import (
    is_sequence_invariant,
    sequence_invariance_violations,
    strided_addresses,
)
from repro.store import (
    make_selector,
    make_selector_exact,
    make_traffic,
    request_keys,
)

N_SHARDS = 64

#: Non-default fleet sizes the parametrized properties must survive:
#: the power-of-two rungs every scheme can route, and the exact prime
#: rungs the epoch ladder grows pMod along.
POW2_COUNTS = (16, 32, 128, 256)
PRIME_COUNTS = (61, 67, 127, 251)

#: Strided key streams the property is checked over (odd, even,
#: around-the-shard-count, and power-of-two strides).
STRIDES = (1, 2, 63, 64, 65, 96, 128)


def _violations(selector):
    return sum(
        sequence_invariance_violations(selector, strided_addresses(s, 2048))
        for s in STRIDES
    )


@pytest.mark.parametrize("scheme", ["traditional", "pmod"])
@pytest.mark.parametrize("stride", STRIDES)
def test_modulo_selectors_are_sequence_invariant(scheme, stride):
    selector = make_selector(scheme, N_SHARDS)
    assert is_sequence_invariant(selector, strided_addresses(stride, 2048))


@pytest.mark.parametrize("scheme", ["traditional", "pmod"])
@pytest.mark.parametrize("n_shards", POW2_COUNTS)
def test_invariance_across_pow2_fleet_sizes(scheme, n_shards):
    """Property 2 is a property of the modulo family, not of the
    default 64-shard fleet: it must hold on every pow2 rung."""
    selector = make_selector(scheme, n_shards)
    for stride in STRIDES:
        assert is_sequence_invariant(selector, strided_addresses(stride, 2048))


@pytest.mark.parametrize("n_shards", PRIME_COUNTS)
def test_pmod_invariance_on_exact_prime_fleets(n_shards):
    """The epoch ladder runs pMod on *exact* prime shard counts
    (61 -> 67 -> ...); sequence invariance must survive every rung."""
    selector = make_selector_exact("pmod", n_shards)
    assert selector.n_shards == n_shards
    for stride in STRIDES:
        assert is_sequence_invariant(selector, strided_addresses(stride, 2048))


def test_xor_selector_violates_invariance():
    assert _violations(make_selector("xor", N_SHARDS)) > 0


@pytest.mark.parametrize("scheme", ["pdisp", "pdisp19", "pdisp31", "pdisp37"])
def test_pdisp_selector_partially_invariant(scheme):
    """Fewer violations than XOR on the same streams — partial
    invariance, the §3.3 middle ground."""
    pdisp = _violations(make_selector(scheme, N_SHARDS))
    xor = _violations(make_selector("xor", N_SHARDS))
    assert 0 < pdisp < xor


def test_invariance_holds_for_served_strided_traffic():
    """The property also holds on the store's own strided traffic for
    pMod — the scheme the store defaults to."""
    selector = make_selector("pmod", N_SHARDS)
    for stride in (16, 64, 512):
        keys = request_keys(
            make_traffic("strided", 4096, seed=0, stride=stride))
        assert is_sequence_invariant(selector, keys)

"""Traffic generators: determinism, structure, op mixing."""

import numpy as np
import pytest

from repro.store import (
    available_patterns,
    make_traffic,
    power_of_two_traffic,
    request_keys,
    strided_traffic,
    zipfian_traffic,
)


class TestRegistry:
    def test_available_patterns(self):
        assert available_patterns() == ["pow2", "strided", "zipfian"]

    def test_unknown_pattern_raises(self):
        with pytest.raises(KeyError, match="unknown traffic pattern"):
            make_traffic("nope", 100)

    @pytest.mark.parametrize("pattern", ["zipfian", "strided", "pow2"])
    def test_length_and_determinism(self, pattern):
        a = make_traffic(pattern, 500, seed=3)
        b = make_traffic(pattern, 500, seed=3)
        assert len(a) == 500
        assert a == b

    @pytest.mark.parametrize("pattern", ["zipfian", "pow2"])
    def test_seed_changes_randomized_patterns(self, pattern):
        # (strided is excluded: its key walk is seed-independent by
        # design, and below one working-set pass so are its ops)
        assert (make_traffic(pattern, 500, seed=3)
                != make_traffic(pattern, 500, seed=4))


class TestOpMixing:
    def test_first_touch_is_put(self):
        """Every key's first appearance must be a put, so gets can hit."""
        requests = make_traffic("zipfian", 2000, seed=0)
        seen = set()
        for request in requests:
            if request.key not in seen:
                assert request.op == "put"
                seen.add(request.key)

    def test_put_fraction_zero_still_serves_gets(self):
        # working set smaller than the request count, so keys repeat
        # and the non-first-touch requests become gets
        requests = strided_traffic(1000, working_set=200, put_fraction=0.0)
        assert any(r.op == "get" for r in requests)
        assert sum(r.op == "put" for r in requests) == 200

    def test_delete_fraction_produces_deletes(self):
        requests = zipfian_traffic(2000, delete_fraction=0.2, seed=1)
        assert any(r.op == "delete" for r in requests)

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ValueError):
            strided_traffic(100, put_fraction=0.8, delete_fraction=0.3)
        with pytest.raises(ValueError):
            strided_traffic(100, put_fraction=-0.1)


class TestStructure:
    def test_strided_keys_are_strided(self):
        keys = request_keys(strided_traffic(100, stride=7, working_set=1000))
        assert set(np.diff(keys)) == {7}

    def test_strided_wraps_at_working_set(self):
        keys = request_keys(strided_traffic(250, stride=2, working_set=100))
        assert keys.max() == 99 * 2
        assert len(set(keys.tolist())) == 100

    def test_pow2_keys_are_aligned(self):
        keys = request_keys(power_of_two_traffic(500, alignment=256))
        assert np.all(keys % 256 == 0)

    def test_pow2_rejects_non_power_alignment(self):
        with pytest.raises(ValueError, match="power of two"):
            power_of_two_traffic(100, alignment=100)

    def test_zipfian_is_skewed(self):
        """The hottest key absorbs far more than a uniform share."""
        keys = request_keys(zipfian_traffic(20000, n_keys=1024, seed=0))
        _, counts = np.unique(keys, return_counts=True)
        assert counts.max() > 20 * (20000 / 1024) / 10

    def test_validation(self):
        with pytest.raises(ValueError):
            make_traffic("zipfian", 0)
        with pytest.raises(ValueError):
            strided_traffic(100, stride=0)
        with pytest.raises(ValueError):
            zipfian_traffic(100, alpha=0.0)

    def test_request_keys_dtype(self):
        keys = request_keys(make_traffic("strided", 64))
        assert keys.dtype == np.uint64
        assert len(keys) == 64


class TestSkewAndShape:
    """Parameter sanity: the knobs must actually bend the stream."""

    @staticmethod
    def _top_key_share(alpha):
        keys = request_keys(zipfian_traffic(20000, n_keys=1024,
                                            alpha=alpha, seed=0))
        _, counts = np.unique(keys, return_counts=True)
        return counts.max() / len(keys)

    def test_zipfian_alpha_monotone_skew(self):
        """Raising alpha concentrates traffic on the hottest key."""
        shares = [self._top_key_share(a) for a in (0.8, 1.1, 1.5)]
        assert shares[0] < shares[1] < shares[2]

    def test_zipfian_working_set_bounded(self):
        keys = request_keys(zipfian_traffic(50000, n_keys=256, seed=1))
        assert len(set(keys.tolist())) <= 256

    def test_zipfian_key_stride_and_base(self):
        keys = request_keys(zipfian_traffic(2000, n_keys=128, key_stride=64,
                                            base=7, seed=2))
        assert np.all((keys - np.uint64(7)) % np.uint64(64) == 0)
        assert keys.min() >= 7

    def test_strided_base_offset(self):
        keys = request_keys(strided_traffic(100, stride=3, working_set=1000,
                                            base=500))
        assert keys.min() == 500
        assert np.all((keys - np.uint64(500)) % np.uint64(3) == 0)

    def test_pow2_object_count_bounded(self):
        keys = request_keys(power_of_two_traffic(5000, alignment=64,
                                                 n_objects=32, seed=0))
        unique = set(keys.tolist())
        assert len(unique) <= 32
        assert max(unique) <= 31 * 64

    @pytest.mark.parametrize("pattern,kwargs", [
        ("zipfian", {"n_keys": 512, "alpha": 1.3}),
        ("strided", {"stride": 8, "working_set": 100}),
        ("pow2", {"alignment": 128, "n_objects": 64}),
    ])
    def test_seeded_determinism_with_kwargs(self, pattern, kwargs):
        """Determinism must hold for non-default knobs too (the serving
        experiment and loadgen both rely on it for reproducible runs)."""
        a = make_traffic(pattern, 300, seed=9, **kwargs)
        b = make_traffic(pattern, 300, seed=9, **kwargs)
        assert a == b

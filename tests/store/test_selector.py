"""ShardSelector: scheme registry, key folding, routing, analysis duck-typing."""

import numpy as np
import pytest

from repro.hashing import balance, strided_addresses
from repro.mathutil import largest_prime_below
from repro.store import (
    ShardSelector,
    available_selectors,
    make_selector,
    make_selector_exact,
)
from repro.store.selector import canonical_key


class TestRegistry:
    def test_available_selectors(self):
        assert available_selectors() == [
            "keyed", "keyed_pdisp", "pdisp", "pdisp19", "pdisp31",
            "pdisp37", "pmod", "traditional", "xor",
        ]

    def test_unknown_scheme_raises(self):
        with pytest.raises(KeyError, match="unknown store scheme"):
            make_selector("nope", 64)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError, match="power of two"):
            make_selector("traditional", 60)

    def test_pmod_uses_prime_shard_count(self):
        selector = make_selector("pmod", 64)
        assert selector.n_shards == largest_prime_below(64) == 61
        assert selector.n_shards_physical == 64

    @pytest.mark.parametrize("scheme,p", [
        ("pdisp", 9), ("pdisp19", 19), ("pdisp31", 31), ("pdisp37", 37),
    ])
    def test_pdisp_constants_are_the_papers(self, scheme, p):
        selector = make_selector(scheme, 64)
        assert selector.indexing.displacement == p


class TestCanonicalKey:
    def test_int_passthrough(self):
        assert canonical_key(12345) == 12345

    def test_negative_int_masked(self):
        assert canonical_key(-1) == 2**64 - 1

    def test_str_and_bytes_agree(self):
        assert canonical_key("user:42") == canonical_key(b"user:42")

    def test_str_stable_across_calls(self):
        assert canonical_key("x") == canonical_key("x")

    def test_bool_rejected(self):
        with pytest.raises(TypeError, match="bool"):
            canonical_key(True)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError, match="unsupported"):
            canonical_key(3.14)


class TestRouting:
    @pytest.mark.parametrize("scheme", available_selectors())
    def test_shard_in_range(self, scheme):
        selector = make_selector(scheme, 64)
        for key in (0, 1, 63, 64, 2**32 - 1, "a-string-key"):
            assert 0 <= selector.shard(key) < selector.n_shards

    @pytest.mark.parametrize("scheme", available_selectors())
    def test_shard_array_matches_scalar(self, scheme):
        selector = make_selector(scheme, 64)
        rng = np.random.default_rng(11)
        keys = rng.integers(0, 2**48, size=2048, dtype=np.uint64)
        vec = selector.shard_array(keys)
        assert vec.tolist() == [selector.shard(int(k)) for k in keys]

    @pytest.mark.parametrize("scheme", available_selectors())
    @pytest.mark.parametrize("n_shards", [16, 32, 128, 256])
    def test_shard_array_matches_scalar_across_pow2_counts(
            self, scheme, n_shards):
        """The scalar/vectorized agreement is fleet-size independent on
        the power-of-two rungs every scheme supports."""
        selector = make_selector(scheme, n_shards)
        rng = np.random.default_rng(n_shards)
        keys = rng.integers(0, 2**48, size=1024, dtype=np.uint64)
        vec = selector.shard_array(keys)
        assert vec.tolist() == [selector.shard(int(k)) for k in keys]

    @pytest.mark.parametrize("n_shards", [61, 67, 127, 251])
    def test_shard_array_matches_scalar_on_exact_prime_counts(
            self, n_shards):
        """pMod on the epoch ladder's exact prime rungs: the vectorized
        router and the scalar one agree key for key."""
        selector = make_selector_exact("pmod", n_shards)
        assert selector.n_shards == n_shards
        rng = np.random.default_rng(n_shards)
        keys = rng.integers(0, 2**48, size=1024, dtype=np.uint64)
        vec = selector.shard_array(keys)
        assert vec.tolist() == [selector.shard(int(k)) for k in keys]

    def test_traditional_is_low_bits(self):
        selector = make_selector("traditional", 64)
        assert selector.shard(1000) == 1000 % 64

    def test_pmod_is_prime_modulo(self):
        selector = make_selector("pmod", 64)
        assert selector.shard(1000) == 1000 % 61


class TestAnalysisCompatibility:
    """analysis metrics accept a selector exactly like an indexing."""

    def test_balance_of_even_stride(self):
        trad = make_selector("traditional", 64)
        pmod = make_selector("pmod", 64)
        addrs = strided_addresses(64, 4096)
        assert balance(trad, addrs) > 10 * balance(pmod, addrs)

    def test_index_surface_delegates(self):
        selector = make_selector("xor", 64)
        assert selector.n_sets == selector.indexing.n_sets
        assert selector.n_sets_physical == 64
        assert selector.index(777) == selector.indexing.index(777)

    def test_repr_mentions_scheme(self):
        assert "pmod" in repr(make_selector("pmod", 64))

    def test_wraps_existing_indexing(self):
        from repro.hashing import XorIndexing

        selector = ShardSelector(XorIndexing(128))
        assert selector.scheme == "XOR"
        assert selector.n_shards == 128

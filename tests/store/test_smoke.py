"""Fast store smoke test: every scheme serves 10k mixed requests.

The tier-1 guard for the serving path: small shard count, real traffic,
every selector scheme, serial and concurrent replay — asserting the
invariants a production store must never break (capacity bounds,
conservation of accesses, the paper's balance ordering on structured
traffic).
"""

import math

import pytest

from repro.store import ShardedStore, available_selectors, make_traffic, replay

N_REQUESTS = 10_000
N_SHARDS = 16
SHARD_CAPACITY = 128


@pytest.mark.parametrize("scheme", available_selectors())
def test_smoke_every_scheme(scheme):
    store = ShardedStore(n_shards=N_SHARDS, scheme=scheme,
                         shard_capacity=SHARD_CAPACITY)
    requests = make_traffic("zipfian", N_REQUESTS, n_keys=2048, seed=0)
    report = replay(store, requests, workers=2)
    t = report.telemetry
    assert t.accesses == N_REQUESTS
    assert t.hits + t.misses == N_REQUESTS
    assert len(store) <= store.capacity
    assert not math.isnan(t.balance)
    assert t.concentration >= 0.0
    assert report.throughput_rps > 0


def test_smoke_prime_schemes_beat_traditional_on_structured_traffic():
    balances = {}
    for scheme in ("traditional", "pmod", "pdisp"):
        store = ShardedStore(n_shards=N_SHARDS, scheme=scheme,
                             shard_capacity=SHARD_CAPACITY)
        replay(store, make_traffic("strided", N_REQUESTS, stride=N_SHARDS,
                                   seed=0))
        balances[scheme] = store.balance()
    assert balances["pmod"] < balances["traditional"]
    assert balances["pdisp"] < balances["traditional"]

"""ShardedStore: routing, operations, telemetry correctness."""

import math

import numpy as np
import pytest

from repro.hashing import balance, concentration_from_sets
from repro.store import ShardedStore, make_selector


class TestOperations:
    def test_put_get_delete_round_trip(self):
        store = ShardedStore(n_shards=8, scheme="pmod", shard_capacity=32)
        store.put("user:1", {"name": "ada"})
        assert store.get("user:1") == {"name": "ada"}
        assert store.contains("user:1")
        assert store.delete("user:1") is True
        assert store.get("user:1") is None

    def test_int_and_str_keys_coexist(self):
        store = ShardedStore(n_shards=8, shard_capacity=32)
        store.put(42, "int")
        store.put("42", "str")
        assert store.get(42) == "int"
        assert store.get("42") == "str"

    def test_len_and_capacity(self):
        store = ShardedStore(n_shards=8, scheme="traditional",
                             shard_capacity=16)
        for k in range(10):
            store.put(k, k)
        assert len(store) == 10
        assert store.capacity == 8 * 16

    def test_routing_is_deterministic(self):
        store = ShardedStore(n_shards=16, scheme="xor")
        assert store.shard_for("k") == store.shard_for("k")
        assert store.shard_for("k") == make_selector("xor", 16).shard("k")

    def test_pmod_store_has_prime_shard_count(self):
        store = ShardedStore(n_shards=64, scheme="pmod")
        assert store.n_shards == 61
        assert len(store.shards) == 61

    def test_eviction_bounds_total_occupancy(self):
        store = ShardedStore(n_shards=4, scheme="traditional",
                             shard_capacity=8)
        for k in range(1000):
            store.put(k, k)
        assert len(store) <= store.capacity == 32


class TestTelemetry:
    def test_balance_nan_before_traffic(self):
        assert math.isnan(ShardedStore(n_shards=8).balance())

    def test_balance_matches_analysis_layer(self):
        """Served balance == vectorized analysis balance on the same keys."""
        store = ShardedStore(n_shards=64, scheme="pmod", shard_capacity=64)
        keys = np.arange(0, 4096 * 64, 64, dtype=np.uint64)
        for k in keys:
            store.put(int(k), 0)
        expected = balance(store.selector, keys)
        assert store.balance() == pytest.approx(expected)

    def test_concentration_matches_analysis_layer(self):
        store = ShardedStore(n_shards=16, scheme="traditional",
                             telemetry_window=1 << 12)
        keys = [k * 2 for k in range(500)]
        for k in keys:
            store.get(k)
        expected = concentration_from_sets(
            store.selector.shard_array(np.array(keys, dtype=np.uint64)),
            store.n_shards,
        )
        assert store.concentration() == pytest.approx(expected)

    def test_telemetry_snapshot_counts(self):
        store = ShardedStore(n_shards=8, scheme="xor", shard_capacity=16)
        for k in range(20):
            store.put(k, k)
        for k in range(20):
            store.get(k)
        t = store.telemetry()
        assert t.accesses == 40
        assert t.gets == 20
        assert t.scheme == "xor"
        assert t.n_shards == 8
        assert sum(t.shard_accesses) == 40
        assert 0.0 <= t.hit_rate <= 1.0
        assert t.occupancy == len(store)

    def test_telemetry_as_dict_is_json_shaped(self):
        import json

        store = ShardedStore(n_shards=8)
        store.put(1, 1)
        payload = store.telemetry().as_dict()
        assert json.loads(json.dumps(payload)) == payload

    def test_tail_load_collapsed_vs_spread(self):
        collapsed = ShardedStore(n_shards=16, scheme="traditional")
        spread = ShardedStore(n_shards=16, scheme="pmod")
        for k in range(0, 16 * 200, 16):  # stride = shard count
            collapsed.get(k)
            spread.get(k)
        assert collapsed.telemetry().tail_load == pytest.approx(16.0)
        assert spread.telemetry().tail_load < 2.0

    def test_telemetry_window_bounds_memory(self):
        store = ShardedStore(n_shards=8, telemetry_window=128)
        for k in range(1000):
            store.get(k)
        assert len(store._window) == 128

"""KeyRotator: fresh secrets through the epoch migration, zero key loss."""

import pytest

from repro.control import KeyRotator, key_fingerprint
from repro.obs import Journal, MetricsRegistry
from repro.store import RoutingTable, ShardedStore


def keyed_store(scheme="keyed_pdisp", n_shards=16, n_keys=150):
    """A keyed store pre-loaded with ``n_keys`` addressable records."""
    store = ShardedStore(routing=RoutingTable.create(scheme, n_shards),
                         shard_capacity=512, assoc=16)
    for i in range(n_keys):
        store.put(i * 1009 + 3, f"value-{i}")
    return store


FLEETS = [
    ("keyed_pdisp", 16),  # power-of-two fleet, secret displacement
    ("keyed", 61),        # exact-prime fleet, Mersenne hash
]


class TestRotation:
    @pytest.mark.parametrize("scheme,n_shards", FLEETS)
    def test_zero_key_loss_through_migration(self, scheme, n_shards):
        """Rotation re-routes every resident key under the new secret:
        nothing is lost, the epoch advances, geometry is unchanged."""
        store = keyed_store(scheme, n_shards)
        old_key = store.routing.selector.key
        report = KeyRotator(store, seed=0, journal=Journal(),
                            registry=MetricsRegistry()).rotate()

        assert store.epoch == 1 and report["epoch"] == 1
        assert not store.migrating
        assert store.scheme == scheme
        assert store.n_shards == n_shards
        assert store.routing.selector.key != old_key
        for i in range(150):
            assert store.get(i * 1009 + 3) == f"value-{i}"

    def test_repeated_rotations_keep_every_key(self):
        store = keyed_store()
        rotator = KeyRotator(store, seed=7, journal=Journal(),
                             registry=MetricsRegistry())
        for expected_epoch in (1, 2, 3):
            rotator.rotate()
            assert store.epoch == expected_epoch
        assert rotator.rotations == 3
        assert all(store.contains(i * 1009 + 3) for i in range(150))

    def test_deterministic_key_sequence_per_seed(self):
        """Two rotators with one seed mint identical secret sequences —
        attack/defense drills replay exactly."""
        runs = []
        for _ in range(2):
            store = keyed_store(n_keys=10)
            rotator = KeyRotator(store, seed=42, journal=Journal(),
                                 registry=MetricsRegistry())
            runs.append([rotator.rotate()["key_fingerprint"]
                         for _ in range(3)])
        assert runs[0] == runs[1]
        assert len(set(runs[0])) == 3  # and the sequence never repeats


class TestJournal:
    def test_rotation_event_carries_fingerprint_not_secret(self):
        store = keyed_store(n_keys=20)
        journal = Journal().enable()
        KeyRotator(store, seed=0, journal=journal,
                   registry=MetricsRegistry()).rotate(reason="drill")

        (event,) = journal.find("control.key_rotation")
        assert event.fields["scheme"] == "keyed_pdisp"
        assert event.fields["epoch"] == 1
        assert event.fields["reason"] == "drill"
        assert event.fields["moved"] >= 0
        fingerprint = event.fields["key_fingerprint"]
        assert fingerprint == key_fingerprint(store.routing.selector.key)
        assert len(fingerprint) == 8  # 4-byte digest, hex
        # The raw 64-bit secret appears nowhere in the payload.
        assert str(store.routing.selector.key) not in str(event.fields)

    def test_rotation_counter_increments(self):
        store = keyed_store(n_keys=20)
        registry = MetricsRegistry().enable()
        KeyRotator(store, seed=0, journal=Journal(),
                   registry=registry).rotate()
        assert registry.counter("control.key_rotations").value == 1


class TestValidation:
    @pytest.mark.parametrize("scheme", ["traditional", "xor", "pmod",
                                        "pdisp"])
    def test_rejects_unkeyed_schemes_at_construction(self, scheme):
        store = ShardedStore(n_shards=16, scheme=scheme, shard_capacity=64)
        with pytest.raises(ValueError, match="not keyed"):
            KeyRotator(store)

    def test_rejects_nonpositive_budget(self):
        store = keyed_store(n_keys=1)
        with pytest.raises(ValueError, match="migration_budget"):
            KeyRotator(store, migration_budget=0)


class TestFingerprint:
    def test_stable_and_short(self):
        assert key_fingerprint(123) == key_fingerprint(123)
        assert key_fingerprint(123) != key_fingerprint(124)
        assert len(key_fingerprint(2**64 - 1)) == 8

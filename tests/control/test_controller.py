"""RemediationController: observe → decide → apply against a live store."""

import pytest

from repro.control import Action, ControlConfig, RemediationController
from repro.obs import Journal
from repro.obs.health import Alert, DriftStatus
from repro.store import RoutingTable, ShardedStore


def page(slo="serve-p99-latency", window="fast"):
    return Alert(slo=slo, window=window,
                 severity="page" if window == "fast" else "ticket",
                 burn_rate=20.0, threshold=14.4, budget_rule=0.05,
                 message=f"{slo} burning")


def trip(scheme, balance=50.0):
    return DriftStatus(scheme=scheme, balance=balance, concentration=1.0,
                       balance_max=2.0, concentration_max=10.0,
                       balance_ok=False, concentration_ok=True)


class FakeSloEngine:
    """Evaluate is a no-op; active alerts are whatever the test seeds."""

    def __init__(self, alerts=()):
        self.alerts = list(alerts)
        self.evaluations = 0

    def evaluate(self):
        self.evaluations += 1
        return self.alerts

    def active_alerts(self):
        return list(self.alerts)


class FakeDetector:
    def __init__(self, tripped=(), adversary=()):
        self._tripped = list(tripped)
        self._adversary = list(adversary)

    def evaluate(self):
        return {}

    def tripped(self):
        return list(self._tripped)

    def grade_adversary(self, telemetry):
        return list(self._adversary)

    def adversary_tripped(self):
        return list(self._adversary)

    def adversary_streak(self, scheme):
        return 1 if any(s.scheme == scheme for s in self._adversary) else 0


def make_controller(scheme="pmod", n_shards=61, alerts=(), tripped=(),
                    config=None, journal=None):
    journal = journal or Journal()
    store = ShardedStore(routing=RoutingTable.create(scheme, n_shards),
                         shard_capacity=256, assoc=16)
    controller = RemediationController(
        store, FakeSloEngine(alerts), detector=FakeDetector(tripped),
        config=config or ControlConfig(), journal=journal)
    return controller, store, journal


class TestObserve:
    def test_healthy_store_yields_no_actions(self):
        controller, store, _ = make_controller()
        assert controller.step() == []
        assert store.epoch == 0
        assert controller.steps == 1

    def test_fault_events_are_consumed_once(self):
        controller, _, journal = make_controller()
        journal.enable()
        journal.emit("serve.fault.stall", queue_id=4, stall_s=0.2)
        journal.emit("serve.fault.stall", queue_id=4, stall_s=0.2)
        journal.emit("serve.fault.stall", queue_id=9, stall_s=0.2)
        first = controller.observe()
        assert first.stalled_shards == [4, 9]
        # The cursor advanced: the same events never re-trigger.
        assert controller.observe().stalled_shards == []


class TestQuarantineRule:
    def test_page_plus_stalls_quarantines(self):
        controller, store, journal = make_controller(alerts=[page()])
        journal.enable()
        journal.emit("serve.fault.stall", queue_id=5)
        actions = controller.step()
        assert [a.kind for a in actions] == ["quarantine"]
        assert store.routing.quarantined == frozenset([5])
        kinds = [e.kind for e in journal.find("control.quarantine")]
        assert kinds == ["control.quarantine"]

    def test_stalls_without_a_page_do_nothing(self):
        controller, store, journal = make_controller()  # no alerts
        journal.enable()
        journal.emit("serve.fault.stall", queue_id=5)
        assert controller.step() == []
        assert store.routing.quarantined == frozenset()

    def test_page_without_stall_targets_does_nothing(self):
        controller, store, _ = make_controller(alerts=[page()])
        assert controller.step() == []
        assert store.routing.quarantined == frozenset()

    def test_slow_ticket_is_not_a_page(self):
        controller, store, journal = make_controller(
            alerts=[page(window="slow")])
        journal.enable()
        journal.emit("serve.fault.stall", queue_id=5)
        assert controller.step() == []

    def test_quarantine_fraction_caps_the_blast_radius(self):
        config = ControlConfig(max_quarantine_fraction=0.05)
        controller, store, journal = make_controller(alerts=[page()],
                                                     config=config)
        journal.enable()
        for queue_id in range(10):
            journal.emit("serve.fault.stall", queue_id=queue_id)
        controller.step()
        # floor(61 * 0.05) = 3 shards at most, not all ten.
        assert len(store.routing.quarantined) == 3


class TestDriftRule:
    def test_drift_on_foreign_scheme_swaps_to_target(self):
        controller, store, _ = make_controller(
            scheme="traditional", n_shards=64,
            tripped=[trip("traditional")])
        actions = controller.step()
        assert [a.kind for a in actions] == ["scheme_swap"]
        assert store.scheme == "pmod"
        assert store.epoch == 1
        assert not store.migrating  # migration ran to completion
        assert actions[0].detail["migration"]["left_behind"] == 0

    def test_drift_on_target_scheme_grows_the_ladder(self):
        controller, store, _ = make_controller(tripped=[trip("pmod")])
        actions = controller.step()
        assert [a.kind for a in actions] == ["grow"]
        assert store.n_shards == 67  # 61 -> next prime

    def test_drift_on_another_scheme_is_ignored(self):
        controller, store, _ = make_controller(
            tripped=[trip("traditional")])  # store runs pmod
        assert controller.step() == []
        assert store.epoch == 0


class TestCapacityRule:
    def test_reject_page_grows(self):
        controller, store, _ = make_controller(
            alerts=[page(slo="serve-reject-rate")])
        actions = controller.step()
        assert [a.kind for a in actions] == ["grow"]
        assert store.n_shards == 67

    def test_one_routing_change_per_step(self):
        # Drift and a reject page together still produce one reshard.
        controller, _, _ = make_controller(
            scheme="traditional", n_shards=64,
            alerts=[page(slo="serve-reject-rate")],
            tripped=[trip("traditional")])
        observation = controller.observe()
        actions = controller.decide(observation)
        assert [a.kind for a in actions] == ["scheme_swap"]


class TestApply:
    def test_data_survives_a_controller_reshard(self):
        controller, store, _ = make_controller(tripped=[trip("pmod")])
        for key in range(300):
            store.put(key, key)
        controller.step()
        assert all(store.get(k) == k for k in range(300))

    def test_shrink_is_operator_only(self):
        controller, store, _ = make_controller()
        action = controller.shrink("scale-down window")
        assert action.kind == "shrink"
        assert store.n_shards == 59  # prev prime below 61
        # decide() never produces a shrink on its own.
        assert all(a.kind != "shrink"
                   for a in controller.decide(controller.observe()))

    def test_unknown_action_kind_raises(self):
        controller, _, _ = make_controller()
        with pytest.raises(ValueError, match="unknown action"):
            controller.apply(Action(kind="reboot", reason="nope"))

    def test_actions_are_journaled(self):
        controller, _, journal = make_controller(tripped=[trip("pmod")])
        journal.enable()
        controller.step()
        events = journal.find("control.action")
        assert len(events) == 1
        assert events[0].fields["action"] == "grow"
        assert events[0].fields["scheme"] == "pmod"


class TestHierarchicalBlastRadius:
    def test_node_capacity_caps_one_step_at_one_node(self):
        """A correlated burst naming two nodes' worth of shards only
        quarantines one node's worth per step (regression: the old cap
        was a flat fleet fraction, so one burst could take out half the
        fleet in a single swing)."""
        config = ControlConfig(node_capacity=4)
        controller, store, journal = make_controller(alerts=[page()],
                                                     config=config)
        journal.enable()
        for queue_id in range(8):  # two nodes' worth of stalled shards
            journal.emit("serve.fault.stall", queue_id=queue_id)
        controller.step()
        assert len(store.routing.quarantined) == 4
        # The remaining shards need a fresh observe/decide cycle (and
        # fresh evidence) — the next step sees no new stall events.
        assert controller.step() == []
        assert len(store.routing.quarantined) == 4

    def test_node_capacity_still_respects_fleet_fraction(self):
        config = ControlConfig(node_capacity=8,
                               max_quarantine_fraction=0.05)
        controller, store, journal = make_controller(alerts=[page()],
                                                     config=config)
        journal.enable()
        for queue_id in range(10):
            journal.emit("serve.fault.stall", queue_id=queue_id)
        controller.step()
        # min(floor(61 * 0.05) = 3, node_capacity = 8) = 3.
        assert len(store.routing.quarantined) == 3


class TestNodeQuarantineRule:
    def _make_clustered(self, journal):
        from repro.cluster import Cluster, ReplicationConfig

        cluster = Cluster(n_nodes=5, node_scheme="pmod",
                          shard_scheme="pmod", shards_per_node=8,
                          replication=ReplicationConfig(replicas=2))
        store = ShardedStore(routing=RoutingTable.create("pmod", 61),
                             shard_capacity=256, assoc=16)
        controller = RemediationController(
            store, FakeSloEngine(), journal=journal, cluster=cluster)
        return controller, cluster

    def test_node_down_event_quarantines_the_node(self):
        journal = Journal()
        controller, cluster = self._make_clustered(journal)
        journal.emit("cluster.node_down", node=3, live_nodes=4, epoch=0)
        actions = controller.step()
        assert [a.kind for a in actions] == ["node_quarantine"]
        assert cluster.router.quarantined_nodes == frozenset([3])
        assert cluster.epoch == 1
        (event,) = journal.find("control.node_quarantine")
        assert event.fields["nodes"] == [3]
        # Consumed-once: the same event never re-triggers.
        assert controller.step() == []

    def test_at_most_one_node_per_step(self):
        journal = Journal()
        controller, cluster = self._make_clustered(journal)
        journal.emit("cluster.node_down", node=1, live_nodes=4, epoch=0)
        journal.emit("cluster.node_down", node=2, live_nodes=3, epoch=0)
        actions = controller.step()
        assert [a.kind for a in actions] == ["node_quarantine"]
        assert len(cluster.router.quarantined_nodes) == 1

    def test_traffic_routes_around_quarantined_node(self):
        journal = Journal()
        controller, cluster = self._make_clustered(journal)
        journal.emit("cluster.node_down", node=2, live_nodes=4, epoch=0)
        controller.step()
        keys = range(200)
        assert all(cluster.router.node(k) != 2 for k in keys)

    def test_without_cluster_node_events_are_ignored(self):
        journal = Journal()
        controller, store, _ = make_controller(journal=journal)
        journal.emit("cluster.node_down", node=0, live_nodes=4, epoch=0)
        assert controller.step() == []


class TestFederatedObserve:
    """A controller given a Federation runs its health layer on the
    cluster-wide merge, refreshed at every observe."""

    def _controller(self):
        from repro.cluster import Cluster
        from repro.obs import declare_core_metrics
        from repro.obs.fed import Federation
        from repro.obs.health import SloEngine, SloSpec
        from repro.obs.registry import MetricsRegistry

        cluster = Cluster(n_nodes=4, node_scheme="pmod",
                          shard_scheme="pmod", node_registries=True)
        for i in range(600):
            cluster.put(f"k{i}", i)
        local = MetricsRegistry(enabled=True)
        declare_core_metrics(local)
        fed = Federation.for_cluster(cluster, registry=local)
        engine = SloEngine(
            [SloSpec.latency("p99", "cluster.node.request_latency_s",
                             threshold_s=10.0, objective=0.99)],
            registry=local)  # starts bound to the un-merged registry
        store = ShardedStore(routing=RoutingTable.create("pmod", 61),
                             shard_capacity=256, assoc=16)
        controller = RemediationController(
            store, engine, journal=Journal(), cluster=cluster,
            federation=fed)
        return controller, engine, fed, local

    def test_observe_collects_then_rebinds_the_engine(self):
        controller, engine, fed, local = self._controller()
        assert controller.step() == []  # healthy cluster: no actions
        assert local.counter("fed.merges").value == 1
        assert engine.registry is fed.merged  # decisions see the merge
        assert engine.evaluations == 1
        # The merged registry actually carries the pooled per-node
        # sketches the spec gates on — not evaluating a blank.
        series = engine.registry.matching("cluster.node.request_latency_s")
        assert series and sum(s.count for s in series) > 0

    def test_every_step_refreshes_the_merge(self):
        controller, engine, fed, local = self._controller()
        controller.step()
        first_merge = engine.registry
        controller.step()
        assert local.counter("fed.merges").value == 2
        assert engine.registry is fed.merged
        assert engine.registry is not first_merge  # fresh merge
        assert engine.evaluations == 2  # state survived the rebind

    def test_detector_is_rebound_too(self):
        from repro.obs.health import HashQualityDetector, strict_bands

        controller, engine, fed, _ = self._controller()
        detector = HashQualityDetector(strict_bands(8),
                                       registry=engine.registry)
        controller.detector = detector
        controller.observe()
        assert detector.registry is fed.merged


class TestConfigValidation:
    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError, match="migration_budget"):
            ControlConfig(migration_budget=0)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError, match="max_quarantine_fraction"):
            ControlConfig(max_quarantine_fraction=1.5)

    def test_bad_node_capacity_rejected(self):
        with pytest.raises(ValueError, match="node_capacity"):
            ControlConfig(node_capacity=0)

"""The store_sharding experiment: grid, ordering checks, CLI, caching."""

import json

import pytest

from repro.engine import all_experiment_names, validate_artifact
from repro.experiments import store_sharding
from repro.experiments.__main__ import main

FAST = ["--param", "requests=800", "--param", "shard_capacity=64"]


@pytest.fixture(scope="module")
def grid():
    return store_sharding.run(n_requests=2000, shard_capacity=64)


class TestRun:
    def test_full_grid(self, grid):
        assert set(grid) == set(store_sharding.DEFAULT_PATTERNS)
        for pattern, by_scheme in grid.items():
            assert set(by_scheme) == set(store_sharding.DEFAULT_SCHEMES)
            for report in by_scheme.values():
                assert report["telemetry"]["accesses"] == 2000

    def test_ordering_checks_all_hold(self, grid):
        """The acceptance criterion: pMod and pDisp strictly better
        balance than traditional modulo on strided and pow2 traffic."""
        checks = store_sharding.ordering_checks(grid)
        assert len(checks) == 4
        assert all(checks.values()), checks

    def test_render_has_tables_and_verdict(self, grid):
        out = store_sharding.render({
            "n_requests": 2000, "n_shards": 64, "patterns": grid,
            "checks": store_sharding.ordering_checks(grid),
        })
        for pattern in store_sharding.DEFAULT_PATTERNS:
            assert pattern in out
        assert "Figure 5 ordering on served traffic: ok (4/4" in out


class TestCli:
    def test_registered(self):
        assert "store_sharding" in all_experiment_names()

    def test_artifact_written(self, tmp_path, capsys):
        path = tmp_path / "store.json"
        main(["store_sharding", "--artifact", str(path), *FAST])
        artifact = json.loads(path.read_text())
        validate_artifact(artifact)
        assert artifact["experiment"] == "store_sharding"
        checks = artifact["data"]["checks"]
        assert all(checks.values()), checks
        assert "Store sharding" in capsys.readouterr().out

    def test_payload_cache_round_trip(self, tmp_path):
        cache = tmp_path / "cache"
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        main(["store_sharding", "--artifact", str(a),
              "--cache-dir", str(cache), *FAST])
        assert list(cache.glob("*/*.payload.json"))
        main(["store_sharding", "--artifact", str(b),
              "--cache-dir", str(cache), *FAST])
        assert (json.loads(a.read_text())["data"]
                == json.loads(b.read_text())["data"])

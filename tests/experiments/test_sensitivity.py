"""Tests for the capacity-sensitivity experiment."""

import pytest

from repro.experiments import sensitivity
from repro.experiments.common import RunConfig


class TestSensitivity:
    @pytest.fixture(scope="class")
    def points(self):
        return sensitivity.run("tree", RunConfig(scale=0.15),
                               capacities_kb=(256, 512, 1024))

    def test_one_point_per_capacity(self, points):
        assert [p.capacity_kb for p in points] == [256, 512, 1024]

    def test_gap_present_at_paper_geometry(self, points):
        by_cap = {p.capacity_kb: p for p in points}
        assert by_cap[512].miss_ratio < 0.7

    def test_base_misses_decrease_with_capacity(self, points):
        misses = [p.base_misses for p in points]
        assert misses == sorted(misses, reverse=True)

    def test_rejects_awkward_capacity(self):
        with pytest.raises(ValueError, match="power"):
            sensitivity.run("lu", RunConfig(scale=0.05),
                            capacities_kb=(300,))

    def test_uniform_app_shows_no_gap(self):
        points = sensitivity.run("lu", RunConfig(scale=0.1),
                                 capacities_kb=(512,))
        assert points[0].miss_ratio == pytest.approx(1.0, abs=0.05)

    def test_render(self, points):
        out = sensitivity.render(points)
        assert "tree" in out and "512" in out

"""Tests for the shared experiment infrastructure."""

import pytest

from repro.experiments.common import ResultStore, RunConfig


class TestRunConfig:
    def test_defaults(self):
        cfg = RunConfig()
        assert cfg.scale == 1.0
        assert cfg.skew_replacement == "enru"


class TestResultStore:
    @pytest.fixture
    def store(self):
        return ResultStore(RunConfig(scale=0.05))

    def test_caches_results(self, store):
        first = store.result("lu", "base")
        second = store.result("lu", "base")
        assert first is second  # same object: simulated once

    def test_distinct_schemes_distinct_runs(self, store):
        assert store.result("lu", "base") is not store.result("lu", "pmod")

    def test_speedup_of_base_is_one(self, store):
        assert store.speedup("lu", "base") == 1.0

    def test_miss_ratio_of_base_is_one(self, store):
        assert store.miss_ratio("lu", "base") == 1.0

    def test_miss_ratio_positive(self, store):
        assert store.miss_ratio("lu", "pmod") > 0

    def test_unknown_workload_raises(self, store):
        with pytest.raises(KeyError):
            store.result("linpack", "base")

    def test_unknown_scheme_raises(self, store):
        with pytest.raises(KeyError):
            store.result("lu", "victim")

"""The serving experiment: measurement, checks, CLI, metrics snapshot."""

import json

import pytest

from repro.engine import all_experiment_names, validate_artifact
from repro.experiments import serving
from repro.experiments.__main__ import main
from repro.obs import validate_snapshot

FAST = ["--param", "requests=600", "--param", "rate_rps=20000",
        "--param", "admit_rate=10000"]


class TestMeasure:
    def test_single_cell_payload_shape(self):
        payload = serving.measure("pmod", 400, rate_rps=20000.0, seed=0)
        assert payload["scheme"] == "pmod"
        assert payload["n_requests"] == 400
        assert sum(payload["statuses"].values()) == 400
        for field in ("latency", "balance", "concentration",
                      "mean_batch_size", "peak_queue_depth"):
            assert field in payload
        assert payload["latency"]["p50"] <= payload["latency"]["p99"]
        assert json.loads(json.dumps(payload)) == payload

    def test_stalled_shard_cell_degrades_explicitly(self):
        """The acceptance scenario through the experiment surface: one
        stalled shard yields explicit timeouts/rejects, full
        accounting, bounded queue — and the run terminates."""
        payload = serving.measure("pmod", 400, rate_rps=20000.0,
                                  max_queue_depth=128, timeout_s=0.03,
                                  stall_shard=0, stall_s=0.3, seed=0)
        statuses = payload["statuses"]
        assert sum(statuses.values()) == 400
        assert statuses.get("dropped", 0) == 0
        assert statuses.get("timeout", 0) + statuses.get("rejected", 0) > 0
        assert payload["peak_queue_depth"] <= 128
        assert payload["stalled_shard"] == 0

    def test_degradation_checks_cover_every_scheme(self):
        cells = {
            "pmod": {"statuses": {"ok": 10}, "n_requests": 10,
                     "peak_queue_depth": 5},
            "xor": {"statuses": {"ok": 8, "timeout": 2}, "n_requests": 10,
                    "peak_queue_depth": 5},
        }
        checks = serving.degradation_checks(cells, max_queue_depth=8,
                                            stalled=True)
        assert checks["pmod_all_accounted"]
        assert checks["xor_stall_surfaces_explicitly"]
        assert not checks["pmod_stall_surfaces_explicitly"]
        assert len(checks) == 8


class TestRender:
    def test_render_has_table_chart_and_verdict(self):
        cells = {
            scheme: serving.measure(scheme, 300, rate_rps=20000.0, seed=0)
            for scheme in ("traditional", "pmod")
        }
        out = serving.render({
            "n_requests": 300, "pattern": "zipfian", "arrival": "bursty",
            "rate_rps": 20000.0, "n_shards": 32, "stall_shard": None,
            "schemes": cells,
            "checks": serving.degradation_checks(cells, 512, stalled=False),
        })
        assert "p99 ms" in out
        assert "p99 latency (ms) per scheme" in out
        assert "Serving contract" in out
        assert "traditional" in out and "pmod" in out


class TestCli:
    def test_registered(self):
        assert "serving" in all_experiment_names()

    def test_artifact_written_with_checks(self, tmp_path, capsys):
        path = tmp_path / "serving.json"
        main(["serving", "--artifact", str(path), *FAST])
        artifact = json.loads(path.read_text())
        validate_artifact(artifact)
        assert artifact["experiment"] == "serving"
        data = artifact["data"]
        assert set(data["schemes"]) == set(serving.DEFAULT_SCHEMES)
        for cell in data["schemes"].values():
            assert sum(cell["statuses"].values()) == cell["n_requests"]
        assert all(data["checks"].values()), data["checks"]
        out = capsys.readouterr().out
        assert "Serving" in out
        assert "p99" in out

    def test_stall_param_flows_into_checks(self, tmp_path, capsys):
        path = tmp_path / "stalled.json"
        main(["serving", "--artifact", str(path), *FAST,
              "--param", "stall_shard=0",
              "--param", "schemes=[\"pmod\"]"])
        capsys.readouterr()
        data = json.loads(path.read_text())["data"]
        assert data["stall_shard"] == 0
        assert "pmod_stall_surfaces_explicitly" in data["checks"]
        assert data["checks"]["pmod_no_silent_drops"]
        assert data["checks"]["pmod_queue_bounded"]

    def test_metrics_out_snapshot_carries_serve_series(self, tmp_path,
                                                       capsys):
        metrics_path = tmp_path / "metrics.json"
        main(["serving", "--metrics-out", str(metrics_path), *FAST,
              "--param", "schemes=[\"pmod\",\"traditional\"]"])
        capsys.readouterr()
        snapshot = json.loads(metrics_path.read_text())
        validate_snapshot(snapshot)
        counters = snapshot["metrics"]["counters"]
        served = [c for c in counters if c["name"] == "serve.requests"
                  and c["labels"].get("scheme") == "pmod"
                  and c["value"] > 0]
        assert served, "serve.requests{scheme=pmod} never incremented"
        hists = snapshot["metrics"]["histograms"]
        assert any(h["name"] == "serve.latency_s" and h["count"] > 0
                   for h in hists)

    def test_payload_cache_round_trip(self, tmp_path):
        cache = tmp_path / "cache"
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        args = [*FAST, "--param", "schemes=[\"pmod\"]"]
        main(["serving", "--artifact", str(a),
              "--cache-dir", str(cache), *args])
        assert list(cache.glob("*/*.payload.json"))
        main(["serving", "--artifact", str(b),
              "--cache-dir", str(cache), *args])
        assert (json.loads(a.read_text())["data"]
                == json.loads(b.read_text())["data"])

"""Tests for the Figure 5/6 stride sweeps."""

import numpy as np
import pytest

from repro.experiments import stride_sweep


@pytest.fixture(scope="module")
def sweeps():
    # Reduced sweep: strides 1..255, shorter sequences, full geometry.
    return stride_sweep.run(max_stride=255, n_addresses=8192)


class TestFigure5Balance:
    def test_traditional_ideal_exactly_on_odd(self, sweeps):
        s = sweeps["Traditional"]
        odd = s.strides % 2 == 1
        assert np.all(s.balance[odd] <= 1.1)
        assert np.all(s.balance[~odd] > 1.1)

    def test_pmod_ideal_everywhere(self, sweeps):
        assert sweeps["pMod"].ideal_balance_fraction() == 1.0

    def test_xor_failures_earlier_than_pdisp(self):
        """Paper: XOR's non-ideal balance clusters at smaller strides
        than pDisp's, whose failures sit mid-range.  Needs the full
        stride range; balance only, short sequences, to stay fast."""
        from repro.hashing import (
            PrimeDisplacementIndexing, XorIndexing, balance,
            strided_addresses,
        )
        xor, pdisp = XorIndexing(2048), PrimeDisplacementIndexing(2048)
        xor_bad, pdisp_bad = [], []
        for s in range(1, 2048):
            addrs = strided_addresses(s, 4096)
            if balance(xor, addrs) > 1.1:
                xor_bad.append(s)
            if balance(pdisp, addrs) > 1.1:
                pdisp_bad.append(s)
        assert xor_bad and pdisp_bad
        assert np.median(xor_bad) < np.median(pdisp_bad)

    def test_pdisp_mostly_ideal(self, sweeps):
        assert sweeps["pDisp"].ideal_balance_fraction() > 0.85


class TestFigure6Concentration:
    def test_traditional_ideal_on_odd_strides(self, sweeps):
        s = sweeps["Traditional"]
        odd = s.strides % 2 == 1
        assert np.all(s.concentration[odd] == 0.0)
        assert np.any(s.concentration[~odd] > 100)

    def test_pmod_ideal_everywhere(self, sweeps):
        assert np.all(sweeps["pMod"].concentration <= 1e-9)

    def test_xor_never_ideal_beyond_trivial(self, sweeps):
        xor = sweeps["XOR"]
        nontrivial = xor.strides > 2
        assert np.mean(xor.concentration[nontrivial] > 0) > 0.9

    def test_pdisp_better_than_xor(self, sweeps):
        """Partial sequence invariance gives pDisp concentration far
        closer to ideal than XOR's."""
        assert (sweeps["pDisp"].concentration.mean()
                < sweeps["XOR"].concentration.mean())

    def test_ordering_matches_paper(self, sweeps):
        """pMod has the best concentration profile of the four."""
        fractions = {
            name: s.ideal_concentration_fraction()
            for name, s in sweeps.items()
        }
        assert fractions["pMod"] >= max(
            fractions["Traditional"], fractions["pDisp"], fractions["XOR"]
        )


class TestPmodBadStride:
    def test_stride_equal_prime_is_the_one_failure(self):
        """pMod fails only when the stride is a multiple of n_set."""
        sweeps = stride_sweep.run(max_stride=2047, n_addresses=4096,
                                  stride_step=2038)  # strides 1 and 2039
        pmod = sweeps["pMod"]
        assert pmod.balance[pmod.strides == 1][0] <= 1.1
        assert pmod.balance[pmod.strides == 2039][0] > 100


class TestRender:
    def test_render_produces_all_eight_panels(self, sweeps):
        out = stride_sweep.render(sweeps)
        assert out.count("Figure 5") == 4
        assert out.count("Figure 6") == 4

"""Tests for the page-allocation experiment."""

import pytest

from repro.experiments import page_allocation
from repro.experiments.common import RunConfig


@pytest.fixture(scope="module")
def results():
    rows = page_allocation.run(workloads=("tree", "bt"),
                               config=RunConfig(scale=0.25))
    return {(r.workload, r.policy): r for r in rows}


class TestPageAllocation:
    def test_tree_gap_survives_every_policy(self, results):
        """tree's crowding is offset-driven: OS-proof."""
        for policy in ("sequential", "random", "colored"):
            assert results[("tree", policy)].miss_ratio < 0.5, policy

    def test_bt_gap_needs_color_preservation(self, results):
        assert results[("bt", "colored")].miss_ratio < 0.85
        assert results[("bt", "random")].miss_ratio > 0.95

    def test_random_allocation_fixes_bt_for_base_too(self, results):
        """Randomizing pages dissolves the pitch-aliased columns."""
        assert results[("bt", "random")].base_misses < \
            results[("bt", "colored")].base_misses

    def test_unknown_policy(self):
        with pytest.raises(KeyError, match="unknown policy"):
            page_allocation.make_allocator("buddy", seed=0)

    def test_render(self, results):
        out = page_allocation.render(list(results.values()))
        assert "tree" in out and "colored" in out

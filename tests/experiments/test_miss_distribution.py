"""Tests for Figure 13 (tree's per-set miss distribution)."""

import pytest

from repro.experiments import miss_distribution
from repro.experiments.common import RunConfig


@pytest.fixture(scope="module")
def results():
    return miss_distribution.run(RunConfig(scale=0.25))


class TestFigure13:
    def test_base_concentrates_misses(self, results):
        """Figure 13a: the vast majority of misses sit in ~10% of sets."""
        assert results["base"].top_fraction_share(0.1) > 0.5

    def test_pmod_flattens_distribution(self, results):
        """Figure 13b: pMod spreads the misses almost uniformly."""
        assert results["pmod"].top_fraction_share(0.1) < 0.3

    def test_pmod_removes_misses(self, results):
        assert results["pmod"].total < results["base"].total

    def test_coefficient_of_variation_drops(self, results):
        assert (results["pmod"].coefficient_of_variation()
                < results["base"].coefficient_of_variation() / 2)

    def test_render(self, results):
        out = miss_distribution.render(results)
        assert "Figure 13" in out
        assert "top 10%" in out


class TestCustomWorkload:
    def test_uniform_app_shows_no_concentration(self):
        results = miss_distribution.run(RunConfig(scale=0.1), workload="lu")
        assert results["base"].top_fraction_share(0.1) < 0.4

"""Tests for the table experiments (Tables 1, 2, 3)."""

import pytest

from repro.experiments import fragmentation, machine, qualitative


class TestTable1:
    def test_matches_paper_exactly(self):
        rows = fragmentation.run()
        expected = {
            256: (251, 1.95), 512: (509, 0.59), 1024: (1021, 0.29),
            2048: (2039, 0.44), 4096: (4093, 0.07), 8192: (8191, 0.01),
            16384: (16381, 0.02),
        }
        for row in rows:
            prime, frag_pct = expected[row.n_sets_physical]
            assert row.n_sets == prime
            assert row.fragmentation * 100 == pytest.approx(frag_pct, abs=0.005)

    def test_custom_counts(self):
        rows = fragmentation.run(set_counts=(64,))
        assert rows[0].n_sets == 61

    def test_render_contains_rows(self):
        out = fragmentation.render(fragmentation.run())
        assert "2039" in out and "0.44%" in out


class TestTable2:
    @pytest.fixture(scope="class")
    def profiles(self):
        return {p.name: p for p in qualitative.run(
            n_sets_physical=1024, n_addresses=4096, stride_limit=64)}

    def test_traditional_odd_only(self, profiles):
        p = profiles["Traditional"]
        assert p.ideal_balance_condition == "s odd"
        assert p.sequence_invariant

    def test_pmod_ideal_everywhere(self, profiles):
        p = profiles["pMod"]
        assert p.ideal_balance_condition == "all tested s"
        assert p.sequence_invariant
        assert not p.replacement_restricted

    def test_xor_not_invariant(self, profiles):
        p = profiles["XOR"]
        assert not p.sequence_invariant
        assert not p.partially_invariant

    def test_pdisp_partially_invariant(self, profiles):
        p = profiles["pDisp"]
        assert not p.sequence_invariant
        assert p.partially_invariant

    def test_skewed_rows_restricted(self, profiles):
        for name in ("Skewed", "Skewed+pDisp"):
            assert profiles[name].replacement_restricted

    def test_render(self, profiles):
        out = qualitative.render(list(profiles.values()))
        assert "Partial" in out and "s odd" in out


class TestTable3:
    def test_render_contains_paper_values(self):
        out = machine.render()
        assert "512 KB, 4-way, 64-B line" in out
        assert "243 cycles" in out
        assert "208 cycles" in out

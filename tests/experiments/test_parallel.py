"""Tests for the parallel simulation grid."""

import pytest

from repro.experiments.common import ResultStore, RunConfig
from repro.experiments.parallel import parallel_store, run_grid_parallel

CONFIG = RunConfig(scale=0.05)


class TestParallelGrid:
    def test_matches_serial_results(self):
        workloads, schemes = ("lu", "tree"), ("base", "pmod")
        parallel = run_grid_parallel(workloads, schemes, CONFIG,
                                     max_workers=2)
        serial = ResultStore(CONFIG)
        for w in workloads:
            for s in schemes:
                p = parallel[(w, s)]
                r = serial.result(w, s)
                assert p.l2_misses == r.l2_misses, (w, s)
                assert p.cycles == pytest.approx(r.cycles), (w, s)

    def test_grid_is_complete(self):
        results = run_grid_parallel(("lu",), ("base", "xor", "pmod"),
                                    CONFIG, max_workers=2)
        assert set(results) == {("lu", "base"), ("lu", "xor"), ("lu", "pmod")}

    def test_parallel_store_serves_figures(self):
        store = parallel_store(("lu", "bt"), ("base", "pmod"), CONFIG,
                               max_workers=2)
        # Pre-computed cells come from the grid...
        assert store.speedup("bt", "pmod") > 1.0
        # ...and cells outside it fall back to lazy serial simulation.
        assert store.miss_ratio("lu", "xor") > 0

"""Tests for the shared-cache and seed-robustness experiments."""

import pytest

from repro.experiments import seeds, shared_cache
from repro.experiments.common import RunConfig


class TestSharedCache:
    @pytest.fixture(scope="class")
    def results(self):
        rows = shared_cache.run(pairs=(("tree", "swim"),),
                                config=RunConfig(scale=0.2),
                                schemes=("base", "pmod"))
        return {r.scheme: r for r in rows}

    def test_pmod_still_wins_with_corunner(self, results):
        """The conflict victim keeps most of its win while timesharing."""
        assert results["pmod"].combined_misses < \
            results["base"].combined_misses * 0.8

    def test_interference_bounded(self, results):
        for scheme, r in results.items():
            assert 0.8 < r.interference_factor < 2.0, scheme

    def test_render(self, results):
        out = shared_cache.render(list(results.values()))
        assert "tree+swim" in out


class TestSeedRobustness:
    @pytest.fixture(scope="class")
    def spreads(self):
        return {(s.workload, s.scheme): s
                for s in seeds.run(workloads=("tree", "lu"),
                                   schemes=("pmod",),
                                   seeds=(0, 1), scale=0.2)}

    def test_tree_wins_under_every_seed(self, spreads):
        assert spreads[("tree", "pmod")].minimum > 1.5

    def test_lu_neutral_under_every_seed(self, spreads):
        s = spreads[("lu", "pmod")]
        assert 0.97 < s.minimum and s.maximum < 1.03

    def test_spread_is_small(self, spreads):
        for key, s in spreads.items():
            assert s.relative_spread < 0.15, key

    def test_render(self, spreads):
        out = seeds.render(list(spreads.values()))
        assert "spread" in out

"""The federation experiment: contract checks, registration, render."""

import copy
import json

import pytest

from repro.engine import all_experiment_names, get_experiment
from repro.experiments import federation


@pytest.fixture(scope="module")
def cells():
    """One small drill shared by the assertions (3000 requests keeps
    the burn math and the TSDB tiers real, but fast)."""
    return federation.run(n_requests=3000, seed=0)


class TestContract:
    def test_all_checks_hold(self, cells):
        checks = federation.federation_checks(cells)
        assert all(checks.values()), [k for k, v in checks.items() if not v]
        assert len(checks) == 19  # 8 per arm + 3 cross-arm

    def test_merged_quantile_tracks_exact_pool(self, cells):
        for arm, cell in cells.items():
            assert cell["fed_p99_rel_err"] <= 0.02, arm
            assert cell["exact_p99_s"] > 0, arm

    def test_stalled_arm_is_actually_slower(self, cells):
        assert (cells["stalled"]["exact_p99_s"]
                > 2 * cells["healthy"]["exact_p99_s"])

    def test_paging_splits_by_vantage_point(self, cells):
        """The drill's whole point: the degraded node's burn is only
        visible from the federated vantage point."""
        assert cells["stalled"]["fed_alert_evals"] > 0
        assert sum(cells["stalled"]["node_alert_evals"]) == 0
        assert cells["healthy"]["fed_alert_evals"] == 0

    def test_no_node_window_reaches_the_volume_gate(self, cells):
        for arm, cell in cells.items():
            assert all(count < cell["min_events"]
                       for count in cell["node_window_counts"]), arm

    def test_scrape_overhead_is_bounded(self, cells):
        for arm, cell in cells.items():
            assert 0.0 < cell["scrape_utilization"] < 0.03, arm

    def test_tsdb_retention_and_downsampling_happened(self, cells):
        for arm, cell in cells.items():
            tsdb = cell["tsdb"]
            assert 0 < tsdb["raw_points"] <= tsdb["retention_points"], arm
            assert tsdb["aged_points"] > 0, arm
            assert tsdb["evictions"] == tsdb["evict_events"] > 0, arm

    def test_payload_is_json_serializable(self, cells):
        assert json.loads(json.dumps(cells)) == cells


class TestChecksLogic:
    def test_a_quantile_miss_flips_its_check(self, cells):
        tampered = copy.deepcopy(cells)
        tampered["healthy"]["fed_p99_rel_err"] = 0.5
        checks = federation.federation_checks(tampered)
        assert not checks["healthy_merged_p99_within_2pct"]
        assert checks["stalled_merged_p99_within_2pct"]

    def test_scrape_overspend_flips_its_check(self, cells):
        tampered = copy.deepcopy(cells)
        tampered["stalled"]["scrape_utilization"] = 0.5
        assert not federation.federation_checks(tampered)[
            "stalled_scrape_overhead_under_3pct"]

    def test_a_silent_federated_engine_flips_its_check(self, cells):
        tampered = copy.deepcopy(cells)
        tampered["stalled"]["fed_alert_evals"] = 0
        assert not federation.federation_checks(tampered)[
            "stalled_federated_engine_pages"]

    def test_a_noisy_local_view_flips_its_check(self, cells):
        tampered = copy.deepcopy(cells)
        tampered["stalled"]["node_alert_evals"][0] = 7
        assert not federation.federation_checks(tampered)[
            "stalled_local_view_stays_quiet"]

    def test_an_unbounded_raw_tier_flips_its_check(self, cells):
        tampered = copy.deepcopy(cells)
        tampered["healthy"]["tsdb"]["raw_points"] = 10**6
        assert not federation.federation_checks(tampered)[
            "healthy_tsdb_retention_bounded"]


class TestRender:
    def test_render_surfaces_the_verdict(self, cells):
        data = {
            "n_requests": 3000,
            "sweeps": 24,
            "cells": cells,
            "checks": federation.federation_checks(cells),
        }
        text = federation.render(data)
        assert "Federation drill" in text
        assert "healthy" in text and "stalled" in text
        assert "Federation contract: ok (19/19 checks hold" in text


class TestRegistration:
    def test_federation_is_a_registered_experiment(self):
        assert "federation" in all_experiment_names()
        spec = get_experiment("federation")
        assert spec.uses_simulation is False
        assert spec.render is not None

"""The uniform ``python -m repro.experiments`` CLI."""

import json

import pytest

from repro.engine import all_experiment_names, validate_artifact
from repro.experiments.__main__ import main, parse_params


class TestParseParams:
    def test_json_values(self):
        assert parse_params(["workload=bt", "scale=0.5", "seeds=[1,2]"]) == {
            "workload": "bt", "scale": 0.5, "seeds": [1, 2],
        }

    def test_plain_strings_pass_through(self):
        assert parse_params(["policy=first-touch"]) == {
            "policy": "first-touch"
        }

    def test_missing_equals_rejected(self):
        with pytest.raises(SystemExit):
            parse_params(["workload"])


class TestMain:
    def test_list(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        for name in all_experiment_names():
            assert name in out

    def test_run_and_render(self, capsys):
        main(["fragmentation"])
        assert "Table 1" in capsys.readouterr().out

    def test_artifact_written(self, tmp_path, capsys):
        path = tmp_path / "frag.json"
        main(["fragmentation", "--artifact", str(path)])
        artifact = json.loads(path.read_text())
        validate_artifact(artifact)
        assert artifact["experiment"] == "fragmentation"
        assert "Table 1" in capsys.readouterr().out

    def test_param_forwarded(self, tmp_path):
        path = tmp_path / "frag.json"
        main(["fragmentation", "--artifact", str(path),
              "--param", "set_counts=[256,512]"])
        artifact = json.loads(path.read_text())
        assert len(artifact["data"]["rows"]) == 2
        assert artifact["config"]["params"] == {"set_counts": [256, 512]}

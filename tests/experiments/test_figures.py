"""Integration tests for the execution-time / miss figures and Table 4.

One shared ResultStore at a moderate trace scale feeds every figure, so
the full 23-app x 8-scheme sweep is simulated exactly once per test
session.  Assertions target the paper's *shapes* (who wins, roughly by
how much, where the pathologies are), not absolute numbers.
"""

import pytest

from repro.experiments import miss_reduction, multi_hash, single_hash, summary
from repro.experiments.common import ResultStore, RunConfig
from repro.workloads import NONUNIFORM_APPS

SCALE = 0.4


@pytest.fixture(scope="module")
def store():
    return ResultStore(RunConfig(scale=SCALE, seed=0))


@pytest.fixture(scope="module")
def single(store):
    return single_hash.run(store.config, store)


@pytest.fixture(scope="module")
def multi(store):
    return multi_hash.run(store.config, store)


@pytest.fixture(scope="module")
def misses(store):
    return miss_reduction.run(store.config, store)


class TestFigure7:
    def test_prime_schemes_speed_up_every_nonuniform_app(self, single):
        fig7, _ = single
        for app in fig7.apps:
            assert fig7.speedup(app, "pmod") > 1.02, app
            assert fig7.speedup(app, "pdisp") > 1.02, app

    def test_average_speedups_match_paper_shape(self, single):
        """Paper: pMod/pDisp ~1.27 avg, XOR ~1.21, both well above 8-way."""
        fig7, _ = single
        pmod = fig7.average_speedup("pmod")
        pdisp = fig7.average_speedup("pdisp")
        xor = fig7.average_speedup("xor")
        eight = fig7.average_speedup("8way")
        assert 1.15 < pmod < 1.45
        assert pdisp == pytest.approx(pmod, rel=0.05)
        assert xor < pmod
        assert eight < 1.05

    def test_tree_is_the_best_case(self, single):
        fig7, _ = single
        best = max(fig7.apps, key=lambda a: fig7.speedup(a, "pmod"))
        assert best == "tree"
        assert fig7.speedup("tree", "pmod") > 1.8

    def test_normalized_bars_decompose(self, single):
        fig7, _ = single
        for app in fig7.apps:
            base_bar = fig7.bars[app]["base"]
            assert base_bar.total == pytest.approx(1.0)
            assert base_bar.memory_stall > base_bar.busy  # memory-bound


class TestFigure8:
    def test_no_meaningful_slowdowns_for_prime_schemes(self, single):
        """Paper: pMod slows only sparse (2%); pDisp slows nothing."""
        _, fig8 = single
        for app in fig8.apps:
            assert fig8.speedup(app, "pmod") > 0.95, app
            assert fig8.speedup(app, "pdisp") > 0.96, app

    def test_sparse_among_pmods_worst_uniform_cases(self, single):
        _, fig8 = single
        ranked = sorted(fig8.apps, key=lambda a: fig8.speedup(a, "pmod"))
        assert "sparse" in ranked[:3]
        assert fig8.speedup("sparse", "pmod") < 1.0

    def test_uniform_apps_mostly_unchanged(self, single):
        _, fig8 = single
        for scheme in ("xor", "pmod", "pdisp"):
            avg = fig8.average_speedup(scheme)
            assert 0.97 < avg < 1.05, scheme


class TestFigures9And10:
    def test_skewed_best_on_average_nonuniform(self, multi, single):
        """Paper Table 4 ordering: skw+pDisp > SKW >= pMod on average."""
        fig9, _ = multi
        assert fig9.average_speedup("skw+pdisp") >= \
            fig9.average_speedup("pmod") - 0.02

    def test_skewed_matches_or_beats_pmod_on_cg(self, multi):
        """At full scale only the skewed schemes speed cg up further
        (Section 5.3); at this reduced scale the cyclic component only
        completes ~2.5 passes, so allow a sliver of noise."""
        fig9, _ = multi
        assert fig9.speedup("cg", "skw+pdisp") >= \
            fig9.speedup("cg", "pmod") - 0.01

    def test_skewed_pathologies_exist_on_uniform_apps(self, multi):
        """Paper: SKW slows several uniform apps by up to 9%."""
        _, fig10 = multi
        slow = multi_hash.pathological_cases(fig10, "skw")
        assert len(slow) >= 1
        worst = min(fig10.speedup(a, "skw") for a in fig10.apps)
        assert 0.85 < worst < 0.995

    def test_skw_pdisp_fewer_or_equal_pathologies(self, multi):
        _, fig10 = multi
        assert len(multi_hash.pathological_cases(fig10, "skw+pdisp")) <= \
            len(multi_hash.pathological_cases(fig10, "skw")) + 1


class TestFigures11And12:
    def test_average_miss_reduction_substantial(self, misses):
        """Paper reports >30% average reduction; the synthetic traces
        keep a larger compulsory component, so we require >=25%."""
        fig11, _ = misses
        assert fig11.average("pmod") < 0.78
        assert fig11.average("pdisp") < 0.78

    def test_tree_misses_nearly_eliminated(self, misses):
        fig11, _ = misses
        assert fig11.normalized["tree"]["pmod"] < 0.6

    def test_skw_pdisp_beats_fa_on_cg(self, misses):
        """Paper: 'skw+pDisp is able to remove more cache misses than a
        fully associative cache in cg'."""
        fig11, _ = misses
        assert fig11.normalized["cg"]["skw+pdisp"] <= \
            fig11.normalized["cg"]["fa"] + 0.02

    def test_prime_schemes_do_not_inflate_uniform_misses(self, misses):
        _, fig12 = misses
        for app in fig12.apps:
            assert fig12.normalized[app]["pmod"] < 1.10, app
            assert fig12.normalized[app]["pdisp"] < 1.10, app

    def test_skw_pdisp_inflates_some_uniform_misses(self, misses):
        _, fig12 = misses
        inflated = [a for a in fig12.apps
                    if fig12.normalized[a]["skw+pdisp"] > 1.02]
        assert len(inflated) >= 1


class TestTable4:
    @pytest.fixture(scope="class")
    def rows(self, store):
        return {s.scheme: s for s in summary.run(store.config, store)}

    def test_paper_row_order_present(self, rows):
        assert set(rows) == {"xor", "pmod", "pdisp", "skw", "skw+pdisp"}

    def test_nonuniform_averages(self, rows):
        assert rows["pmod"].nonuniform_avg > rows["xor"].nonuniform_avg
        assert 1.1 < rows["pmod"].nonuniform_avg < 1.5

    def test_uniform_averages_near_one(self, rows):
        for scheme, row in rows.items():
            assert 0.97 < row.uniform_avg < 1.04, scheme

    def test_single_hash_schemes_have_fewer_pathologies(self, rows):
        single_worst = max(rows["pmod"].pathological_cases,
                           rows["pdisp"].pathological_cases,
                           rows["xor"].pathological_cases)
        skewed_worst = max(rows["skw"].pathological_cases,
                           rows["skw+pdisp"].pathological_cases)
        assert single_worst <= skewed_worst + 1

    def test_render(self, rows):
        out = summary.render(list(rows.values()))
        assert "Table 4" in out and "pmod" in out

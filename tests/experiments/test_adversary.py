"""The adversary experiment: contract checks, registration, render."""

import copy
import json

import pytest

from repro.engine import all_experiment_names, get_experiment
from repro.experiments import adversary


@pytest.fixture(scope="module")
def data():
    """One scaled-down sweep shared by the assertions (a 10-bit key
    universe keeps each crack subsecond; the full-scale 16-bit run —
    where the >=5x probe factor holds — is the make adversary-check
    gate, not a unit test)."""
    payload = adversary.run(key_bits=10, crack_keys=64,
                            hostile_requests=1500, seed=0)
    payload["checks"] = adversary.adversary_checks(payload)
    return payload


class TestAttackCurve:
    def test_linear_schemes_fall_to_exact_gf2(self, data):
        for scheme in ("traditional", "xor"):
            crack = data["attacks"][scheme]["crack"]
            assert crack["method"] == "gf2"
            assert crack["verified"] and crack["accuracy"] == 1.0

    def test_prime_schemes_force_bucketing(self, data):
        for scheme in ("pmod", "pdisp", "keyed"):
            crack = data["attacks"][scheme]["crack"]
            assert crack["method"] == "bucketing"
            assert not crack["verified"]

    def test_prime_probe_bill_exceeds_linear_even_at_small_scale(
            self, data):
        attacks = data["attacks"]
        linear_max = max(attacks["traditional"]["crack"]["probes"],
                         attacks["xor"]["crack"]["probes"])
        prime_min = min(attacks["pmod"]["crack"]["probes"],
                        attacks["pdisp"]["crack"]["probes"])
        assert prime_min > linear_max

    def test_hostile_replay_pins_one_shard(self, data):
        for scheme, cell in data["attacks"].items():
            assert cell["hostile"]["tail_load"] >= 4.0, scheme

    def test_probe_phases_are_journaled(self, data):
        for scheme, cell in data["attacks"].items():
            phases = [p["phase"] for p in cell["probe_phases"]]
            assert phases[0] == "reps", scheme
            assert "solve" in phases, scheme


class TestDefenseDrill:
    def test_rotation_arm_pages_rotates_and_mitigates(self, data):
        on = data["defense"]["rotation_on"]
        assert on["rounds_to_page"] is not None
        assert on["rounds_to_rotation"] is not None
        assert on["rotations"] >= 1
        assert on["mitigated_events"]
        assert on["final_epoch"] >= 1
        assert on["zero_loss"]["lost"] == 0

    def test_rotation_events_carry_fingerprints_only(self, data):
        for event in data["defense"]["rotation_on"]["rotation_events"]:
            assert len(event["key_fingerprint"]) == 8
            assert "key" not in event

    def test_no_rotation_arm_stays_pinned(self, data):
        off = data["defense"]["rotation_off"]
        assert off["rotations"] == 0
        assert off["page_after_flood"]
        assert off["tail_after_flood"] >= 4.0
        assert off["final_epoch"] == 0
        assert off["mitigated_events"] == []

    def test_every_non_factor_check_holds_at_small_scale(self, data):
        # The two >=5x probe-factor checks need the full-scale key
        # universe (the gate's geometry); everything else must hold
        # even on this scaled-down drill.
        scale_free = {name: ok for name, ok in data["checks"].items()
                      if not name.endswith("_probe_factor")}
        assert all(scale_free.values()), [
            name for name, ok in scale_free.items() if not ok]

    def test_payload_is_json_serializable(self, data):
        assert json.loads(json.dumps(data)) == data


class TestChecksLogic:
    def test_probe_factor_check_flips_on_cheap_primes(self, data):
        tampered = copy.deepcopy(data)
        tampered["attacks"]["pmod"]["crack"]["probes"] = 10**6
        tampered["attacks"]["pdisp"]["crack"]["probes"] = 10**6
        tampered["attacks"]["keyed"]["crack"]["probes"] = 10**6
        checks = adversary.adversary_checks(tampered)
        assert checks["prime_probe_factor"]
        assert checks["keyed_probe_factor"]
        tampered["attacks"]["pdisp"]["crack"]["probes"] = (
            tampered["attacks"]["xor"]["crack"]["probes"])
        assert not adversary.adversary_checks(
            tampered)["prime_probe_factor"]

    def test_lost_key_flips_the_zero_loss_check(self, data):
        tampered = copy.deepcopy(data)
        tampered["defense"]["rotation_on"]["zero_loss"]["lost"] = 2
        assert not adversary.adversary_checks(
            tampered)["rotation_zero_key_loss"]

    def test_missed_mitigation_flips_its_check(self, data):
        tampered = copy.deepcopy(data)
        tampered["defense"]["rotation_on"]["mitigated_events"] = []
        assert not adversary.adversary_checks(
            tampered)["mitigation_journaled"]

    def test_surviving_page_flips_the_green_check(self, data):
        tampered = copy.deepcopy(data)
        tampered["defense"]["rotation_on"]["page_active_at_end"] = True
        assert not adversary.adversary_checks(
            tampered)["post_rotation_green"]

    def test_off_arm_rotating_flips_the_pinned_check(self, data):
        tampered = copy.deepcopy(data)
        tampered["defense"]["rotation_off"]["final_epoch"] = 1
        assert not adversary.adversary_checks(
            tampered)["no_rotation_stays_pinned"]


class TestRender:
    def test_render_surfaces_the_verdict(self, data):
        text = adversary.render(data)
        assert "Attack-success-vs-scheme" in text
        assert "Prime probe factor" in text
        assert "Without rotation" in text
        for scheme in adversary.DEFAULT_SCHEMES:
            assert scheme in text


class TestRegistration:
    def test_adversary_is_a_registered_experiment(self):
        assert "adversary" in all_experiment_names()
        spec = get_experiment("adversary")
        assert spec.uses_simulation is False
        assert spec.render is not None

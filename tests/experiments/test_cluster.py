"""The cluster experiment: contract checks, registration, render."""

import copy
import json

import pytest

from repro.engine import all_experiment_names, get_experiment
from repro.experiments import cluster


@pytest.fixture(scope="module")
def cells():
    """One small drill shared by the assertions (3000 requests keeps
    the re-replication phase real — multiple bounded chunks at budget
    64 — but fast)."""
    return cluster.run(n_requests=3000, budget=64, seed=0)


class TestFleetGeometry:
    def test_prime_levels_pay_table1_fragmentation(self, cells):
        """8 physical nodes -> 7 usable under pMod; 16 shards -> 13."""
        prime = cells["pmod+pmod"]
        assert prime["n_nodes"] == 7
        assert prime["shards_per_node"] == 13

    def test_pow2_stack_keeps_the_full_fleet(self, cells):
        pow2 = cells["traditional+traditional"]
        assert pow2["n_nodes"] == 8
        assert pow2["shards_per_node"] == 16

    def test_mixed_stack_is_prime_outer_pow2_inner(self, cells):
        mixed = cells["pmod+traditional"]
        assert mixed["n_nodes"] == 7
        assert mixed["shards_per_node"] == 16


class TestContract:
    def test_all_checks_hold(self, cells):
        checks = cluster.cluster_checks(cells)
        assert all(checks.values()), [k for k, v in checks.items() if not v]
        assert len(checks) == 18  # 5 per stack + 3 ordering

    def test_zero_key_loss_is_exact(self, cells):
        for stack, cell in cells.items():
            assert cell["zero_loss"]["missing"] == 0, stack
            assert cell["zero_loss"]["mismatched"] == 0, stack
            assert cell["zero_loss"]["model_size"] > 0, stack

    def test_served_straight_through_the_outage(self, cells):
        for stack, cell in cells.items():
            assert cell["during_loss"]["failed_reads"] == 0, stack
            assert cell["during_loss"]["requests"] > 0, stack

    def test_rereplication_is_bounded_and_journaled(self, cells):
        for stack, cell in cells.items():
            chain = cell["journal_chain"]
            assert 0 < chain["max_chunk_moved"] <= 64, stack
            assert chain["chunks"] >= 2, stack  # budget 64 forces chunks
            assert chain["down_seq"] < chain["first_chunk_seq"], stack
            assert chain["first_chunk_seq"] < chain["up_seq"], stack

    def test_figure5_ordering_on_the_composed_map(self, cells):
        prime = cells["pmod+pmod"]
        pow2 = cells["traditional+traditional"]
        assert prime["balance_healthy"] < pow2["balance_healthy"]
        assert prime["balance_rebalanced"] < pow2["balance_rebalanced"]
        assert prime["balance_recovered"] < pow2["balance_recovered"]

    def test_payload_is_json_serializable(self, cells):
        assert json.loads(json.dumps(cells)) == cells


class TestChecksLogic:
    def test_a_lost_key_flips_its_check(self, cells):
        tampered = copy.deepcopy(cells)
        tampered["pmod+pmod"]["zero_loss"]["missing"] = 3
        checks = cluster.cluster_checks(tampered)
        assert not checks["pmod+pmod_zero_key_loss"]
        assert checks["pmod+traditional_zero_key_loss"]

    def test_a_failed_read_flips_its_check(self, cells):
        tampered = copy.deepcopy(cells)
        tampered["pmod+traditional"]["during_loss"]["failed_reads"] = 1
        assert not cluster.cluster_checks(tampered)[
            "pmod+traditional_served_through_loss"]

    def test_a_budget_breach_flips_its_check(self, cells):
        tampered = copy.deepcopy(cells)
        tampered["pmod+pmod"]["journal_chain"]["max_chunk_moved"] = 10**6
        assert not cluster.cluster_checks(tampered)[
            "pmod+pmod_chunks_under_budget"]

    def test_a_broken_journal_chain_flips_its_check(self, cells):
        tampered = copy.deepcopy(cells)
        tampered["pmod+pmod"]["journal_chain"]["up_seq"] = -1
        assert not cluster.cluster_checks(tampered)[
            "pmod+pmod_journal_chain_ordered"]

    def test_ordering_regression_flips_its_check(self, cells):
        tampered = copy.deepcopy(cells)
        tampered["pmod+pmod"]["balance_rebalanced"] = 10**6
        assert not cluster.cluster_checks(tampered)[
            "pmod_stack_beats_pow2_stack_after_rebalance"]


class TestRender:
    def test_render_surfaces_the_verdict(self, cells):
        data = {
            "n_requests": 3000,
            "replicas": 2,
            "budget": 64,
            "topology": "star",
            "cells": cells,
            "checks": cluster.cluster_checks(cells),
        }
        text = cluster.render(data)
        assert "Cluster drill" in text
        assert "pmod+pmod" in text
        assert "Cluster contract: ok (18/18 checks hold" in text


class TestRegistration:
    def test_cluster_is_a_registered_experiment(self):
        assert "cluster" in all_experiment_names()
        spec = get_experiment("cluster")
        assert spec.uses_simulation is False
        assert spec.render is not None

"""Tests for the three-level LLC-hashing experiment."""

import pytest

from repro.experiments import l3_hashing
from repro.experiments.common import RunConfig


@pytest.fixture(scope="module")
def results():
    rows = l3_hashing.run(workloads=("tree", "mcf", "lu"),
                          config=RunConfig(scale=0.25))
    return {(r.workload, r.l3_indexing): r for r in rows}


class TestL3Hashing:
    def test_tree_keeps_its_win_at_the_llc(self, results):
        base = results[("tree", "traditional")].l3_misses
        pmod = results[("tree", "pmod")].l3_misses
        assert pmod < base * 0.8

    def test_mcf_absorbed_by_llc_associativity(self, results):
        """mcf crowds a quarter of the sets at ~9 lines each — within
        the LLC's 16 ways, so rehashing has nothing left to fix."""
        base = results[("mcf", "traditional")].l3_misses
        pmod = results[("mcf", "pmod")].l3_misses
        assert pmod == pytest.approx(base, rel=0.05)

    def test_lu_never_cares(self, results):
        base = results[("lu", "traditional")].l3_misses
        for key in ("pmod", "pdisp"):
            assert results[("lu", key)].l3_misses == pytest.approx(
                base, rel=0.05)

    def test_mid_level_filters_llc_traffic(self, results):
        """lu's tile reuse is fully absorbed above the LLC; tree's
        crowded lines thrash straight through the traditional L2."""
        lu = results[("lu", "traditional")]
        tree = results[("tree", "traditional")]
        assert lu.l3_accesses < 0.25 * tree.l3_accesses

    def test_render(self, results):
        out = l3_hashing.render(list(results.values()))
        assert "3-level" in out and "tree" in out


class TestChiSquare:
    def test_uniform_counts_high_p(self):
        import numpy as np
        from repro.hashing import chi_square_uniformity
        rng = np.random.default_rng(1)
        counts = rng.poisson(100, size=512)
        assert chi_square_uniformity(counts) > 0.001

    def test_concentrated_counts_reject(self):
        import numpy as np
        from repro.hashing import chi_square_uniformity
        counts = np.ones(512)
        counts[:16] = 500
        assert chi_square_uniformity(counts) < 1e-10

    def test_validation(self):
        import numpy as np
        from repro.hashing import chi_square_uniformity
        with pytest.raises(ValueError):
            chi_square_uniformity(np.array([5.0]))
        with pytest.raises(ValueError):
            chi_square_uniformity(np.zeros(4))

"""Tests for the uniformity-table and design-space experiments."""

import pytest

from repro.experiments import design_space, uniformity_table
from repro.experiments.common import RunConfig


class TestUniformityTable:
    @pytest.fixture(scope="class")
    def rows(self):
        return uniformity_table.run(RunConfig(scale=0.35))

    def test_covers_all_23(self, rows):
        assert len(rows) == 23

    def test_full_agreement_with_paper(self, rows):
        disagreeing = [r.app for r in rows if not r.agrees_with_paper]
        assert not disagreeing, disagreeing

    def test_seven_nonuniform(self, rows):
        assert sum(r.non_uniform for r in rows) == 7

    def test_render(self, rows):
        out = uniformity_table.render(rows)
        assert "7/23" in out or "non-uniform" in out
        assert "tree" in out


class TestDesignSpace:
    @pytest.fixture(scope="class")
    def points(self):
        return design_space.run("tree", RunConfig(scale=0.2),
                                associativities=(2, 4, 8))

    def test_full_grid(self, points):
        assert len(points) == 4 * 3

    def test_better_index_beats_more_ways(self, points):
        """pMod at 2 ways outperforms traditional at 8 on tree: the
        paper's central argument from the other direction."""
        by_key = {(p.indexing, p.assoc): p for p in points}
        assert by_key[("pmod", 2)].l2_misses < \
            by_key[("traditional", 8)].l2_misses

    def test_traditional_gains_little_from_ways(self, points):
        by_key = {(p.indexing, p.assoc): p for p in points}
        two = by_key[("traditional", 2)].l2_misses
        eight = by_key[("traditional", 8)].l2_misses
        assert eight > two * 0.8  # ways alone remove <20% of misses

    def test_rejects_bad_associativity(self):
        with pytest.raises(ValueError):
            design_space.run("lu", RunConfig(scale=0.05),
                             associativities=(3,))

    def test_render(self, points):
        out = design_space.render("tree", points)
        assert "tree" in out and "pmod" in out

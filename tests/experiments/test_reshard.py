"""The reshard experiment: contract checks, registration, render."""

import copy
import json

import pytest

from repro.engine import all_experiment_names, get_experiment
from repro.experiments import reshard


@pytest.fixture(scope="module")
def cells():
    """One small sweep shared by the assertions (3000 requests keeps
    the migration phase real — ~40 bounded chunks — but fast)."""
    return reshard.run(n_requests=3000, seed=0)


class TestLadderGeometry:
    def test_pmod_hops_prime_to_prime(self, cells):
        cell = cells["pmod"]
        assert (cell["from_n_shards"], cell["to_n_shards"]) == (61, 67)

    def test_pow2_schemes_double(self, cells):
        for scheme in ("traditional", "xor", "pdisp"):
            cell = cells[scheme]
            assert (cell["from_n_shards"], cell["to_n_shards"]) == (64, 128)

    def test_every_scheme_advances_one_epoch(self, cells):
        assert all(cell["epoch"] == 1 for cell in cells.values())


class TestContract:
    def test_all_checks_hold(self, cells):
        checks = reshard.reshard_checks(cells)
        assert all(checks.values()), [k for k, v in checks.items() if not v]
        assert len(checks) == 18  # 4 per scheme + 2 ordering

    def test_zero_key_loss_is_exact(self, cells):
        for scheme, cell in cells.items():
            assert cell["zero_loss"]["missing"] == 0, scheme
            assert cell["zero_loss"]["mismatched"] == 0, scheme
            assert cell["zero_loss"]["model_size"] > 0, scheme

    def test_migration_respects_the_budget(self, cells):
        for cell in cells.values():
            migration = cell["migration"]
            assert migration["peak_in_flight"] <= migration["budget"]
            assert migration["left_behind"] == 0
            assert max(migration["chunk_sizes"]) <= migration["budget"]

    def test_figure5_ordering_survives_the_resize(self, cells):
        base = cells["traditional"]["strided_balance_after"]
        assert cells["pmod"]["strided_balance_after"] < base
        assert cells["pdisp"]["strided_balance_after"] < base

    def test_payload_is_json_serializable(self, cells):
        assert json.loads(json.dumps(cells)) == cells


class TestChecksLogic:
    def test_a_lost_key_flips_its_check(self, cells):
        tampered = copy.deepcopy(cells)
        tampered["pmod"]["zero_loss"]["missing"] = 3
        checks = reshard.reshard_checks(tampered)
        assert not checks["pmod_zero_key_loss"]
        assert checks["xor_zero_key_loss"]

    def test_a_budget_breach_flips_its_check(self, cells):
        tampered = copy.deepcopy(cells)
        tampered["xor"]["migration"]["peak_in_flight"] = 10**6
        assert not reshard.reshard_checks(tampered)[
            "xor_in_flight_under_budget"]

    def test_ordering_regression_flips_its_check(self, cells):
        tampered = copy.deepcopy(cells)
        tampered["pdisp"]["strided_balance_after"] = 10**6
        assert not reshard.reshard_checks(tampered)[
            "pdisp_beats_traditional_after_reshard"]


class TestRender:
    def test_render_surfaces_the_verdict(self, cells):
        data = {
            "n_requests": 3000,
            "budget": 64,
            "cells": cells,
            "checks": reshard.reshard_checks(cells),
        }
        text = reshard.render(data)
        assert "Online reshard" in text
        assert "61->67" in text
        assert "Reshard contract: ok (18/18 checks hold" in text


class TestRegistration:
    def test_reshard_is_a_registered_experiment(self):
        assert "reshard" in all_experiment_names()
        spec = get_experiment("reshard")
        assert spec.uses_simulation is False
        assert spec.render is not None

"""The health experiment: drills, checks logic, registration, render."""

import json

import pytest

from repro.engine import all_experiment_names, get_experiment
from repro.experiments import health
from repro.obs import get_journal, get_registry
from repro.obs.health import HashQualityDetector, strict_bands
from repro.store import make_traffic


@pytest.fixture(scope="module")
def artifact_data():
    """One small end-to-end run shared by the slow-path assertions
    (scale 0 floors the drills at 200/400 serving requests and a
    512-access drift stream)."""
    return health.run(scale=0.0, seed=0)


class TestHottestShards:
    def test_deterministic_and_ranked(self):
        requests = make_traffic("zipfian", 500, seed=3)
        first = health.hottest_shards("pmod", requests, 8)
        second = health.hottest_shards("pmod", requests, 8)
        assert first == second
        assert len(first) == 2
        assert health.hottest_shards("pmod", requests, 8, top=1) == first[:1]

    def test_depends_on_scheme(self):
        requests = make_traffic("strided", 500, seed=0)
        assert set(health.hottest_shards("pmod", requests, 8)) <= set(
            range(8))


class TestChecksLogic:
    def base(self):
        return dict(
            healthy=[{"alerting": False}],
            stalled=[{"alerting": True}],
            alerts=[{"window": "fast", "slo": "serve-p99-latency"}],
            stall_payload={"statuses": {"ok": 10, "timeout": 5}},
            drift={"traditional": {"ok": False}, "pmod": {"ok": True},
                   "pdisp": {"ok": True}},
            chain={"serve.fault.stall": 0, "serve.timeout": 2,
                   "health.alert_fired": 9, "control.quarantine": 11},
            remediation={
                "actions": [{"kind": "quarantine"}],
                "post_alerts": [{"window": "slow",
                                 "slo": "serve-p99-latency"}],
            },
            flight_events=[{"fields": {
                "reason": "slo:serve-p99-latency:fast",
                "slowest": {"trace_id": "t01", "wall_s": 0.05,
                            "coverage": 0.97,
                            "stages": [{"name": "queue", "start_s": 0.0,
                                        "duration_s": 0.0485}]},
            }}],
        )

    def test_all_hold_on_the_contract_scenario(self):
        checks = health.health_checks(**self.base())
        assert all(checks.values())
        assert len(checks) == 12

    def test_missing_flight_dump_fails(self):
        kwargs = self.base()
        kwargs["flight_events"] = []
        checks = health.health_checks(**kwargs)
        assert not checks["flight_dump_journaled"]
        assert not checks["flight_waterfall_complete"]

    def test_incomplete_waterfall_fails(self):
        kwargs = self.base()
        kwargs["flight_events"][0]["fields"]["slowest"]["coverage"] = 0.4
        assert not health.health_checks(
            **kwargs)["flight_waterfall_complete"]

    def test_noisy_healthy_phase_fails(self):
        kwargs = self.base()
        kwargs["healthy"] = [{"alerting": True}]
        assert not health.health_checks(**kwargs)["healthy_phase_quiet"]

    def test_slow_ticket_alone_is_not_a_page(self):
        kwargs = self.base()
        kwargs["alerts"] = [{"window": "slow", "slo": "serve-p99-latency"}]
        assert not health.health_checks(**kwargs)["stall_fires_fast_page"]

    def test_out_of_order_or_missing_chain_fails(self):
        kwargs = self.base()
        kwargs["chain"] = {"serve.fault.stall": 5, "serve.timeout": 2,
                           "health.alert_fired": 9}
        assert not health.health_checks(**kwargs)["journal_chain_ordered"]
        kwargs["chain"] = {"serve.fault.stall": 0, "serve.timeout": None,
                           "health.alert_fired": 9}
        assert not health.health_checks(**kwargs)["journal_chain_ordered"]

    def test_prime_scheme_drift_fails_its_check(self):
        kwargs = self.base()
        kwargs["drift"]["pmod"]["ok"] = False
        assert not health.health_checks(**kwargs)["pmod_within_band"]

    def test_missing_quarantine_action_fails_the_loop_check(self):
        kwargs = self.base()
        kwargs["remediation"]["actions"] = [{"kind": "grow"}]
        assert not health.health_checks(**kwargs)["controller_quarantines"]

    def test_quarantine_must_follow_the_page(self):
        kwargs = self.base()
        kwargs["chain"]["control.quarantine"] = 4  # before the alert
        assert not health.health_checks(**kwargs)["quarantine_follows_page"]
        kwargs["chain"]["control.quarantine"] = None
        assert not health.health_checks(**kwargs)["quarantine_follows_page"]

    def test_lingering_fast_page_fails_recovery(self):
        kwargs = self.base()
        kwargs["remediation"]["post_alerts"] = [
            {"window": "fast", "slo": "serve-p99-latency"}]
        assert not health.health_checks(**kwargs)["fast_page_resolved"]


class TestDriftDrill:
    def test_figure5_ordering_on_strided_traffic(self):
        detector = HashQualityDetector(strict_bands(64),
                                       registry=get_registry(),
                                       journal=get_journal())
        drift = health.drift_drill(512, 64, seed=0, detector=detector)
        assert set(drift) == set(health.DRIFT_SCHEMES)
        assert not drift["traditional"]["ok"]
        assert drift["pmod"]["ok"]
        assert drift["pdisp"]["ok"]


class TestRun:
    def test_contract_holds_end_to_end(self, artifact_data):
        checks = artifact_data["checks"]
        assert all(checks.values()), [k for k, v in checks.items() if not v]

    def test_artifact_shape_and_serializability(self, artifact_data):
        for key in ("p99_target_s", "healthy", "stalled", "alerts",
                    "drift", "journal", "checks", "remediation",
                    "recovery"):
            assert key in artifact_data
        assert json.loads(json.dumps(artifact_data)) == artifact_data
        chain = artifact_data["journal"]["chain"]
        assert (chain["serve.fault.stall"] < chain["serve.timeout"]
                < chain["health.alert_fired"]
                < chain["control.quarantine"])

    def test_run_restores_global_observability_state(self, artifact_data):
        # The module fixture ran with globals disabled; run() must have
        # put them back (the obs conftest would also catch leaks, but
        # this pins the contract to run() itself).
        assert get_registry().enabled is False
        assert get_journal().enabled is False

    def test_render_surfaces_the_verdict(self, artifact_data):
        text = health.render(artifact_data)
        assert "SLO burn rates" in text
        assert "Hash-quality drift" in text
        assert "journal chain (seq):" in text
        assert "Health contract: ok (12/12 checks hold)" in text
        assert "flight recorder:" in text
        assert "remediation: actions=['quarantine']" in text
        assert "TRIPPED" in text  # traditional's row


class TestRegistration:
    def test_health_is_a_registered_experiment(self):
        assert "health" in all_experiment_names()
        spec = get_experiment("health")
        assert spec.uses_simulation is False
        assert spec.render is not None

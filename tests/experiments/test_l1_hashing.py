"""Tests for the L1-hashing experiment (paper Section 3.3 claim)."""

import pytest

from repro.experiments import l1_hashing
from repro.experiments.common import RunConfig


class TestExampleBalance:
    @pytest.fixture(scope="class")
    def rows(self):
        return {r.stride: r for r in l1_hashing.example_balance()}

    def test_xor_degenerates_at_stride_15(self, rows):
        """Paper: with s = 15 and 16 sets, XOR accesses 'sets 0, 15,
        15, 15, ...' — a burst visible as bad short-window balance and
        bad concentration."""
        assert rows[15].balances["xor"] > 1.3
        assert rows[15].concentrations["xor"] > 20
        assert rows[15].balances["traditional"] < 1.1  # odd: Base ideal
        assert rows[15].concentrations["traditional"] == 0.0

    def test_xor_fails_at_factor_strides(self, rows):
        """'a stride of 3 or 5 will also fail' (factors of 15)."""
        assert rows[3].balances["xor"] > 1.1
        assert rows[5].balances["xor"] > 1.1
        assert rows[3].concentrations["xor"] > 10

    def test_pmod_safe_at_the_same_strides(self, rows):
        for stride in (1, 3, 5, 15, 16, 17):
            assert rows[stride].balances["pmod"] < 1.2, stride
            assert rows[stride].concentrations["pmod"] == 0.0, stride

    def test_traditional_fails_only_on_even(self, rows):
        assert rows[16].balances["traditional"] > 2
        assert rows[17].balances["traditional"] < 1.1


class TestHierarchyComparison:
    def test_xor_l1_never_beats_traditional_on_dense_codes(self):
        results = l1_hashing.l1_miss_comparison(
            RunConfig(scale=0.15), apps=("swim", "lu"))
        for app, by_key in results.items():
            assert by_key["xor"] >= by_key["traditional"] * 0.98, app

    def test_render(self):
        rows = l1_hashing.example_balance()
        misses = l1_hashing.l1_miss_comparison(RunConfig(scale=0.1),
                                               apps=("lu",))
        out = l1_hashing.render(rows, misses)
        assert "16 sets" in out and "lu" in out


class TestWarmup:
    def test_warmup_removes_cold_misses(self):
        from repro.cpu import simulate_scheme
        from repro.workloads import get_workload
        trace = get_workload("lu").trace(scale=0.1, seed=0)
        cold = simulate_scheme(trace, "base")
        warm = simulate_scheme(trace, "base", warmup_fraction=0.5)
        assert warm.l2_misses < cold.l2_misses

    def test_warmup_validation(self):
        from repro.cpu import simulate_scheme
        from repro.workloads import get_workload
        trace = get_workload("lu").trace(scale=0.05, seed=0)
        import pytest
        with pytest.raises(ValueError):
            simulate_scheme(trace, "base", warmup_fraction=1.0)

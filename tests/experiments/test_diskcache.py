"""Tests for the disk-backed result cache."""

import pytest

from repro.experiments.common import ResultStore, RunConfig
from repro.experiments.diskcache import CachedResultStore

CONFIG = RunConfig(scale=0.05)


class TestCachedResultStore:
    def test_first_run_simulates_and_persists(self, tmp_path):
        store = CachedResultStore(CONFIG, cache_dir=tmp_path)
        result = store.result("lu", "base")
        assert store.disk_misses == 1
        assert list(tmp_path.rglob("*.json"))
        assert result.l2_misses > 0

    def test_second_store_reads_from_disk(self, tmp_path):
        first = CachedResultStore(CONFIG, cache_dir=tmp_path)
        original = first.result("lu", "base")
        second = CachedResultStore(CONFIG, cache_dir=tmp_path)
        reloaded = second.result("lu", "base")
        assert second.disk_hits == 1
        assert reloaded.l2_misses == original.l2_misses
        assert reloaded.cycles == pytest.approx(original.cycles)

    def test_matches_uncached_store(self, tmp_path):
        cached = CachedResultStore(CONFIG, cache_dir=tmp_path)
        plain = ResultStore(CONFIG)
        a = cached.result("tree", "pmod")
        b = plain.result("tree", "pmod")
        assert a.l2_misses == b.l2_misses

    def test_key_separates_configs(self, tmp_path):
        a = CachedResultStore(RunConfig(scale=0.05), cache_dir=tmp_path)
        b = CachedResultStore(RunConfig(scale=0.08), cache_dir=tmp_path)
        a.result("lu", "base")
        b.result("lu", "base")
        assert len(list(tmp_path.rglob("*.json"))) == 2

    def test_memory_cache_still_works(self, tmp_path):
        store = CachedResultStore(CONFIG, cache_dir=tmp_path)
        first = store.result("lu", "base")
        second = store.result("lu", "base")
        assert first is second
        assert store.disk_misses == 1

"""Tests for the DRAM model."""

import pytest

from repro.memory import DramConfig, DramModel


class TestDramConfig:
    def test_paper_defaults(self):
        cfg = DramConfig()
        assert cfg.row_hit_cycles == 208
        assert cfg.row_miss_cycles == 243
        assert cfg.channels == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            DramConfig(channels=0)
        with pytest.raises(ValueError):
            DramConfig(row_blocks=0)
        with pytest.raises(ValueError):
            DramConfig(row_hit_cycles=300, row_miss_cycles=243)


class TestRowBuffer:
    def test_first_access_is_row_miss(self):
        dram = DramModel()
        assert dram.service(0, 0) == 243
        assert dram.stats.row_misses == 1

    def test_same_row_hit(self):
        dram = DramModel()
        dram.service(0, 0)
        # Block 2 shares channel 0, bank 0, row 0 with block 0.
        latency = dram.service(1000, 2 * 2 * 8)
        assert dram.stats.row_hits == 1 or latency in (208, 243)
        # Be precise: block addresses on channel 0, bank 0 are
        # multiples of channels*banks... verify via stats instead.

    def test_row_conflict_reopens(self):
        dram = DramModel(DramConfig(channels=1, banks_per_channel=1, row_blocks=4))
        dram.service(0, 0)       # row 0
        dram.service(1000, 4)    # row 1 -> miss
        dram.service(2000, 0)    # row 0 again -> miss
        assert dram.stats.row_misses == 3

    def test_sequential_blocks_hit_open_row(self):
        dram = DramModel(DramConfig(channels=1, banks_per_channel=1, row_blocks=64))
        dram.service(0, 0)
        for i in range(1, 64):
            dram.service(i * 1000, i)
        assert dram.stats.row_hits == 63

    def test_channel_interleaving(self):
        """Adjacent blocks go to different channels."""
        dram = DramModel()
        dram.service(0, 0)
        dram.service(0, 1)   # other channel: no queueing despite t=0
        assert dram.stats.busy_wait_cycles == 0


class TestContention:
    def test_back_to_back_same_channel_queues(self):
        dram = DramModel(DramConfig(channels=1))
        first = dram.service(0, 0)
        second = dram.service(0, 2)  # channel busy for 32 cycles
        assert second > first - 243 + 208  # includes queueing
        assert dram.stats.busy_wait_cycles == 32

    def test_spaced_requests_do_not_queue(self):
        dram = DramModel(DramConfig(channels=1))
        dram.service(0, 0)
        dram.service(100, 2)
        assert dram.stats.busy_wait_cycles == 0

    def test_write_counted(self):
        dram = DramModel()
        dram.service(0, 0, is_write=True)
        assert dram.stats.writes == 1 and dram.stats.reads == 0

    def test_row_hit_rate(self):
        dram = DramModel(DramConfig(channels=1, banks_per_channel=1, row_blocks=64))
        dram.service(0, 0)
        dram.service(1000, 1)
        assert dram.stats.row_hit_rate == 0.5

    def test_rejects_negative_block(self):
        with pytest.raises(ValueError):
            DramModel().service(0, -1)

"""Property tests on the DRAM model's timing invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.memory import DramConfig, DramModel

BLOCKS = st.lists(st.integers(0, 1 << 20), min_size=1, max_size=200)


class TestLatencyBounds:
    @settings(max_examples=40, deadline=None)
    @given(BLOCKS)
    def test_read_latency_never_below_row_hit(self, blocks):
        dram = DramModel()
        now = 0.0
        for block in blocks:
            latency = dram.service(now, block)
            assert latency >= dram.config.row_hit_cycles
            now += 1.0

    @settings(max_examples=40, deadline=None)
    @given(BLOCKS)
    def test_unqueued_latency_bounded_by_row_miss(self, blocks):
        """With requests spaced beyond the bus occupancy there is no
        queueing, so every latency is exactly hit or miss."""
        dram = DramModel()
        now = 0.0
        cfg = dram.config
        for block in blocks:
            latency = dram.service(now, block)
            assert latency in (cfg.row_hit_cycles, cfg.row_miss_cycles)
            now += cfg.bus_cycles_per_block + 1

    @settings(max_examples=40, deadline=None)
    @given(BLOCKS)
    def test_accounting_identities(self, blocks):
        dram = DramModel()
        for i, block in enumerate(blocks):
            dram.service(float(i * 500), block, is_write=(i % 3 == 0))
        stats = dram.stats
        assert stats.reads + stats.writes == len(blocks)
        # Only reads touch the row buffers in this model.
        assert stats.row_hits + stats.row_misses == stats.reads

    def test_row_hit_sequence_is_deterministic(self):
        a, b = DramModel(), DramModel()
        rng = np.random.default_rng(3)
        for i, block in enumerate(rng.integers(0, 4096, size=500)):
            la = a.service(float(i), int(block))
            lb = b.service(float(i), int(block))
            assert la == lb


class TestChannelMapping:
    def test_blocks_cover_all_channels_and_banks(self):
        dram = DramModel(DramConfig(channels=2, banks_per_channel=8))
        seen = set()
        for block in range(256):
            channel, bank, _ = dram._locate(block)
            seen.add((channel, bank))
        assert len(seen) == 16

    def test_same_block_same_location(self):
        dram = DramModel()
        assert dram._locate(12345) == dram._locate(12345)

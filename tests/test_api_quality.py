"""Release-quality meta-tests on the public API surface.

Every public module, class and function exported from a package
``__init__`` must carry a docstring, and the package must expose a
consistent registry surface.  These tests keep the documentation
guarantee (deliverable (e)) from regressing.
"""

import importlib
import inspect

import pytest

PUBLIC_PACKAGES = (
    "repro",
    "repro.adversary",
    "repro.cache",
    "repro.cpu",
    "repro.experiments",
    "repro.hardware",
    "repro.hashing",
    "repro.mathutil",
    "repro.memory",
    "repro.reporting",
    "repro.trace",
    "repro.vm",
    "repro.workloads",
)

EXPERIMENT_MODULES = (
    "fragmentation", "qualitative", "machine", "summary", "stride_sweep",
    "single_hash", "multi_hash", "miss_reduction", "miss_distribution",
    "uniformity_table", "l1_hashing", "design_space", "sensitivity",
    "page_allocation", "shared_cache", "seeds", "l3_hashing",
)


@pytest.mark.parametrize("package_name", PUBLIC_PACKAGES)
def test_package_has_docstring(package_name):
    package = importlib.import_module(package_name)
    assert package.__doc__ and package.__doc__.strip()


@pytest.mark.parametrize("package_name", PUBLIC_PACKAGES)
def test_every_exported_item_is_documented(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", [])
    undocumented = []
    for name in exported:
        item = getattr(package, name)
        if inspect.isclass(item) or inspect.isfunction(item):
            if not (item.__doc__ and item.__doc__.strip()):
                undocumented.append(f"{package_name}.{name}")
    assert not undocumented, undocumented


@pytest.mark.parametrize("package_name", PUBLIC_PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    for name in getattr(package, "__all__", []):
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("module_name", EXPERIMENT_MODULES)
def test_every_experiment_has_run_render_main(module_name):
    module = importlib.import_module(f"repro.experiments.{module_name}")
    if module_name == "machine":
        assert callable(module.render) and callable(module.main)
        return
    assert callable(module.run)
    assert callable(module.render)
    assert callable(module.main)
    assert module.__doc__ and module.__doc__.strip()


def test_version_exposed():
    import repro
    assert repro.__version__

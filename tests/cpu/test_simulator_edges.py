"""Edge-case and invariant tests for the timing simulator."""

import numpy as np
import pytest

from repro.cpu import MachineConfig, simulate_scheme
from repro.trace import Trace, TraceMetadata, strided_stream


def trace_of(addresses, **meta):
    addresses = np.asarray(addresses, dtype=np.uint64)
    return Trace("edge", addresses, np.zeros(len(addresses), dtype=bool),
                 TraceMetadata(**meta))


class TestSingleAccess:
    def test_one_access_runs(self):
        r = simulate_scheme(trace_of([0]), "base")
        assert r.l2_misses == 1
        assert r.cycles > 0

    def test_components_non_negative(self):
        r = simulate_scheme(trace_of([0, 64, 128]), "pmod")
        assert r.busy >= 0 and r.other_stalls >= 0 and r.memory_stall >= 0


class TestMonotonicity:
    def test_more_conflicts_cost_more_cycles(self):
        friendly = trace_of(strided_stream(0, 64, 64, repeats=30))
        hostile = trace_of(strided_stream(0, 2048 * 64, 64, repeats=30))
        base_friendly = simulate_scheme(friendly, "base")
        base_hostile = simulate_scheme(hostile, "base")
        assert base_hostile.cycles > base_friendly.cycles

    def test_stall_scales_with_misses_across_schemes(self):
        """For one trace, the scheme with fewer L2 misses never has a
        larger memory stall (identical CPU-side components)."""
        hostile = trace_of(strided_stream(0, 2048 * 64, 64, repeats=30))
        base = simulate_scheme(hostile, "base")
        pmod = simulate_scheme(hostile, "pmod")
        assert pmod.l2_misses < base.l2_misses
        assert pmod.memory_stall < base.memory_stall
        assert pmod.busy == base.busy
        assert pmod.other_stalls == base.other_stalls


class TestWarmupEdges:
    def test_zero_warmup_is_default(self):
        t = trace_of(strided_stream(0, 64, 500))
        assert simulate_scheme(t, "base").cycles == \
            simulate_scheme(t, "base", warmup_fraction=0.0).cycles

    def test_warmup_shrinks_measured_accesses(self):
        t = trace_of(strided_stream(0, 64, 1000))
        full = simulate_scheme(t, "base")
        warm = simulate_scheme(t, "base", warmup_fraction=0.5)
        assert warm.busy == pytest.approx(full.busy / 2)

    def test_negative_warmup_rejected(self):
        t = trace_of([0])
        with pytest.raises(ValueError):
            simulate_scheme(t, "base", warmup_fraction=-0.1)


class TestConfigVariations:
    def test_narrower_issue_width_raises_busy(self):
        t = trace_of(strided_stream(0, 64, 400), instructions_per_access=8)
        wide = simulate_scheme(t, "base", MachineConfig())
        import dataclasses
        narrow_cfg = dataclasses.replace(MachineConfig(), issue_width=2)
        narrow = simulate_scheme(t, "base", narrow_cfg)
        assert narrow.busy == pytest.approx(3 * wide.busy)

    def test_zero_exposure_hides_l2_hits(self):
        import dataclasses
        cfg = dataclasses.replace(MachineConfig(), l2_exposed_fraction=0.0)
        # Footprint fitting L2 but not L1: after the cold pass all L2
        # hits, which cost nothing at zero exposure.
        t = trace_of(strided_stream(0, 64, 1024, repeats=3))
        r = simulate_scheme(t, "base", cfg)
        cold = simulate_scheme(trace_of(strided_stream(0, 64, 1024)),
                               "base", cfg)
        assert r.memory_stall == pytest.approx(cold.memory_stall, rel=0.01)

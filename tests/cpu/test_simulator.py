"""Tests for the trace-driven timing simulator."""

import numpy as np
import pytest

from repro.cpu import MachineConfig, simulate_scheme
from repro.trace import Trace, TraceMetadata, strided_stream, write_mask


def make_trace(addresses, name="t", writes=None, **meta_kw):
    addresses = np.asarray(addresses, dtype=np.uint64)
    if writes is None:
        writes = np.zeros(len(addresses), dtype=bool)
    return Trace(name, addresses, writes, TraceMetadata(**meta_kw))


class TestBusyAndStalls:
    def test_busy_scales_with_instructions(self):
        t1 = make_trace(strided_stream(0, 64, 1000), instructions_per_access=6)
        t2 = make_trace(strided_stream(0, 64, 1000), instructions_per_access=12)
        r1 = simulate_scheme(t1, "base")
        r2 = simulate_scheme(t2, "base")
        assert r2.busy == pytest.approx(2 * r1.busy)

    def test_other_stalls_from_mispredicts(self):
        t = make_trace(strided_stream(0, 64, 1000), mispredicts_per_kaccess=10)
        r = simulate_scheme(t, "base")
        # 1000 accesses * 10/1000 mispredicts * 12-cycle penalty
        assert r.other_stalls == pytest.approx(120)

    def test_l1_hits_are_free(self):
        """Re-walking a tiny footprint: everything after warm-up hits L1
        and contributes zero memory stall."""
        warm = make_trace(strided_stream(0, 32, 16, repeats=100))
        r = simulate_scheme(warm, "base")
        cold = simulate_scheme(make_trace(strided_stream(0, 32, 16)), "base")
        assert r.memory_stall == pytest.approx(cold.memory_stall)

    def test_l2_hits_cost_exposed_fraction(self):
        cfg = MachineConfig.paper_default()
        # Footprint bigger than L1 (16KB) but within L2 (512KB).
        sweep = strided_stream(0, 64, 1024, repeats=3)  # 64KB
        r = simulate_scheme(make_trace(sweep), "base", cfg)
        # After the cold sweep, L2 hits at 16 * 0.7 cycles each.
        assert r.memory_stall > 1024 * cfg.l2_hit_cycles * cfg.l2_exposed_fraction

    def test_memory_latency_divided_by_mlp(self):
        sweep = strided_stream(0, 4096, 2000)  # all DRAM, no reuse
        low = simulate_scheme(make_trace(sweep, mlp=1.0), "base")
        high = simulate_scheme(make_trace(sweep, mlp=4.0), "base")
        assert high.memory_stall < low.memory_stall
        assert high.memory_stall == pytest.approx(low.memory_stall / 4, rel=0.25)

    def test_mlp_clamped_to_pending_loads(self):
        sweep = strided_stream(0, 4096, 500)
        r8 = simulate_scheme(make_trace(sweep, mlp=8.0), "base")
        r99 = simulate_scheme(make_trace(sweep, mlp=99.0), "base")
        assert r8.memory_stall == pytest.approx(r99.memory_stall)


class TestMissAccounting:
    def test_l2_misses_reported(self):
        sweep = strided_stream(0, 4096, 100)
        r = simulate_scheme(make_trace(sweep), "base")
        assert r.l2_misses == 100
        assert r.l1_misses == 100

    def test_row_behavior_reported(self):
        sweep = strided_stream(0, 64, 5000)
        r = simulate_scheme(make_trace(sweep), "base")
        assert r.dram_row_hits + r.dram_row_misses >= r.l2_misses

    def test_writes_tracked_through_hierarchy(self):
        addrs = strided_stream(0, 64, 2000)
        t = make_trace(addrs, writes=write_mask(2000, 0.5, seed=3))
        r = simulate_scheme(t, "base")
        assert r.l2_misses > 0


class TestSpeedupAndNormalization:
    def test_speedup_identity(self):
        t = make_trace(strided_stream(0, 64, 500))
        r = simulate_scheme(t, "base")
        assert r.speedup_over(r) == 1.0

    def test_pmod_beats_base_on_power_of_two_stride(self):
        """The headline effect, end to end: a 128 KB-apart stream (same
        traditional L2 set) thrashes Base but not pMod."""
        conflicting = strided_stream(0, 2048 * 64, 32, repeats=80)
        base = simulate_scheme(make_trace(conflicting, name="storm"), "base")
        pmod = simulate_scheme(make_trace(conflicting, name="storm"), "pmod")
        assert pmod.l2_misses < base.l2_misses / 4
        assert pmod.speedup_over(base) > 1.3

    def test_normalized_components_sum(self):
        t = make_trace(strided_stream(0, 64, 500))
        base = simulate_scheme(t, "base")
        norm = base.normalized_to(base)
        assert norm.total == pytest.approx(1.0)

    def test_cycles_is_component_sum(self):
        t = make_trace(strided_stream(0, 64, 500))
        r = simulate_scheme(t, "base")
        assert r.cycles == pytest.approx(r.busy + r.other_stalls + r.memory_stall)

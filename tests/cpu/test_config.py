"""Tests for MachineConfig and the scheme factories."""

import pytest

from repro.cache import (
    FullyAssociativeCache,
    SetAssociativeCache,
    SkewedAssociativeCache,
)
from repro.cpu import SCHEMES, MachineConfig, build_hierarchy, build_l2


class TestMachineConfig:
    def test_table3_geometry(self):
        cfg = MachineConfig.paper_default()
        assert cfg.l1_sets == 256      # 16KB / (32B * 2)
        assert cfg.l2_sets == 2048     # 512KB / (64B * 4)
        assert cfg.l2_blocks == 8192
        assert cfg.issue_width == 6
        assert cfg.branch_penalty == 12

    def test_dram_config_latencies(self):
        dram = MachineConfig.paper_default().dram_config()
        assert dram.row_hit_cycles == 208
        assert dram.row_miss_cycles == 243


class TestBuildL2:
    def test_all_schemes_construct(self):
        for scheme in SCHEMES:
            assert build_l2(scheme) is not None

    def test_unknown_scheme(self):
        with pytest.raises(KeyError, match="unknown scheme"):
            build_l2("victim-cache")

    def test_base_geometry(self):
        l2 = build_l2("base")
        assert isinstance(l2, SetAssociativeCache)
        assert l2.n_sets_physical == 2048 and l2.assoc == 4

    def test_8way_halves_sets(self):
        l2 = build_l2("8way")
        assert l2.n_sets_physical == 1024 and l2.assoc == 8
        assert l2.n_blocks == build_l2("base").n_blocks  # same capacity

    def test_pmod_uses_2039_sets(self):
        assert build_l2("pmod").indexing.n_sets == 2039

    def test_pdisp_constant(self):
        assert build_l2("pdisp").indexing.displacement == 9

    def test_skewed_variants(self):
        skw = build_l2("skw")
        assert isinstance(skw, SkewedAssociativeCache)
        assert skw.n_banks == 4
        spd = build_l2("skw+pdisp")
        assert spd.family.displacements == (9, 19, 31, 37)

    def test_skew_replacement_selectable(self):
        l2 = build_l2("skw", skew_replacement="nrunrw")
        assert type(l2.policy).__name__ == "NrunrwPolicy"

    def test_fa_capacity(self):
        fa = build_l2("fa")
        assert isinstance(fa, FullyAssociativeCache)
        assert fa.n_blocks == 8192

    def test_all_same_capacity(self):
        """Every scheme must model the same 512 KB of storage (the prime
        modulo scheme wastes its fragmented sets internally)."""
        for scheme in SCHEMES:
            l2 = build_l2(scheme)
            assert l2.n_blocks == 8192, scheme


class TestBuildHierarchy:
    def test_l1_is_traditional_256_sets(self):
        h = build_hierarchy("pmod")
        assert h.l1.n_sets_physical == 256
        assert h.l1.indexing.name == "Base"

    def test_l2_matches_scheme(self):
        assert build_hierarchy("xor").l2.indexing.name == "XOR"

"""The embedded time-series store: retention, downsampling,
persistence, and the query API."""

import json
import math

import numpy as np
import pytest

from repro.obs import Journal
from repro.obs.registry import MetricsRegistry
from repro.obs.sketch import QuantileSketch
from repro.obs.tsdb import Point, TimeSeriesStore


def _store(**kwargs):
    kwargs.setdefault("retention_points", 16)
    kwargs.setdefault("downsample_ratio", 4)
    kwargs.setdefault("registry", MetricsRegistry(enabled=True))
    return TimeSeriesStore(**kwargs)


class TestAppend:
    def test_append_and_range(self):
        ts = _store()
        for t in range(10):
            ts.append("g", float(t), t * 2.0)
        points = ts.range("g")
        assert len(points) == 10
        assert [p.t_s for p in points] == [float(t) for t in range(10)]
        assert ts.range("g", 3.0, 6.0)[0].value == 6.0
        assert len(ts.range("g", 3.0, 6.0)) == 3  # t in [3, 6)

    def test_out_of_order_append_rejected(self):
        ts = _store()
        ts.append("g", 5.0, 1.0)
        with pytest.raises(ValueError, match="append-only"):
            ts.append("g", 4.0, 1.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            _store().append("g", 0.0, 1.0, kind="whatever")

    def test_sketch_accepts_dict_payload(self):
        sketch = QuantileSketch()
        sketch.add(0.5)
        ts = _store()
        ts.append("s", 0.0, sketch.as_dict(), kind="sketch")
        (point,) = ts.range("s")
        assert isinstance(point.value, QuantileSketch)
        assert point.value.count == 1

    def test_appends_counted_on_registry(self):
        registry = MetricsRegistry(enabled=True)
        ts = _store(registry=registry)
        ts.append("g", 0.0, 1.0)
        ts.append("g", 1.0, 2.0)
        assert registry.counter("fed.tsdb.appends").value == 2
        assert ts.appends == 2


class TestRetentionAndDownsampling:
    def test_raw_tier_is_bounded(self):
        ts = _store(retention_points=16, downsample_ratio=4)
        for t in range(200):
            ts.append("g", float(t), float(t))
        raw = [p for p in ts.range("g") if p.span == 1]
        assert 0 < len(raw) <= 16
        assert ts.evictions > 0

    def test_gauge_blocks_age_to_mean(self):
        ts = _store(retention_points=4, downsample_ratio=4)
        for t in range(8):  # first block [0..3] ages out
            ts.append("g", float(t), float(t))
        aged = [p for p in ts.range("g") if p.span > 1]
        assert len(aged) == 1
        assert aged[0].value == pytest.approx((0 + 1 + 2 + 3) / 4)
        assert aged[0].span == 4

    def test_counter_blocks_age_to_rate(self):
        ts = _store(retention_points=4, downsample_ratio=4)
        for t in range(8):  # cumulative counter growing 10/tick
            ts.append("c", float(t), t * 10.0, kind="counter")
        (aged,) = [p for p in ts.range("c") if p.kind == "rate"]
        assert aged.value == pytest.approx(10.0)  # d(value)/d(t)

    def test_sketch_blocks_age_by_merge(self):
        ts = _store(retention_points=4, downsample_ratio=4)
        values = np.random.default_rng(0).lognormal(-9, 0.5, 8 * 100)
        for block in range(8):
            sketch = QuantileSketch()
            for v in values[block * 100:(block + 1) * 100]:
                sketch.add(v)
            ts.append("s", float(block), sketch, kind="sketch")
        aged = [p for p in ts.range("s") if p.span > 1]
        assert aged and aged[0].value.count == 400  # 4 sketches merged

    def test_evictions_journaled(self):
        journal = Journal()
        ts = _store(retention_points=4, downsample_ratio=4,
                    journal=journal)
        for t in range(8):
            ts.append("g", float(t), 1.0)
        (event,) = journal.find("obs.tsdb_evict")
        assert event.fields["series"] == "g"
        assert event.fields["points"] == 4
        assert ts.evictions == 1

    def test_quantile_spans_both_tiers(self):
        ts = _store(retention_points=8, downsample_ratio=4)
        rng = np.random.default_rng(1)
        all_values = []
        for block in range(6):
            sketch = QuantileSketch()
            chunk = rng.lognormal(-9, 0.5, 200)
            all_values.extend(chunk)
            for v in chunk:
                sketch.add(v)
            ts.append("s", float(block), sketch, kind="sketch")
        exact = float(np.percentile(np.asarray(all_values), 99))
        got = ts.quantile("s", 99)
        assert abs(got - exact) / exact <= 0.02

    def test_rate_over_raw_window(self):
        ts = _store(retention_points=32, downsample_ratio=4)
        for t in range(10):
            ts.append("c", float(t), t * 7.0, kind="counter")
        assert ts.rate("c") == pytest.approx(7.0)

    def test_rate_falls_back_to_block_rates(self):
        ts = _store(retention_points=4, downsample_ratio=4)
        for t in range(20):
            ts.append("c", float(t), t * 3.0, kind="counter")
        # Restrict the window to the downsampled tier only.
        aged_t = [p.t_s for p in ts.range("c") if p.kind == "rate"]
        got = ts.rate("c", -math.inf, max(aged_t) + 0.5)
        assert got == pytest.approx(3.0)


class TestQueries:
    def test_merge_quantile_pools_series(self):
        ts = _store(retention_points=32)
        rng = np.random.default_rng(2)
        pooled = []
        for node in range(3):
            sketch = QuantileSketch()
            chunk = rng.lognormal(-9 + node * 0.2, 0.4, 500)
            pooled.extend(chunk)
            for v in chunk:
                sketch.add(v)
            ts.append(f"node{node}.lat", 0.0, sketch, kind="sketch")
        exact = float(np.percentile(np.asarray(pooled), 99))
        got = ts.merge_quantile([f"node{n}.lat" for n in range(3)], 99)
        assert abs(got - exact) / exact <= 0.02

    def test_empty_queries(self):
        ts = _store()
        assert ts.range("nothing") == []
        assert ts.rate("nothing") == 0.0
        assert math.isnan(ts.quantile("nothing", 99))
        assert math.isnan(ts.merge_quantile(["a", "b"], 50))

    def test_series_names_sorted(self):
        ts = _store()
        ts.append("b", 0.0, 1.0)
        ts.append("a", 0.0, 1.0)
        assert ts.series_names() == ["a", "b"]


class TestPersistence:
    def test_jsonl_round_trip_is_lossless(self, tmp_path):
        ts = _store(root=tmp_path, retention_points=8,
                    downsample_ratio=4)
        for t in range(30):
            ts.append("g", float(t), float(t % 5))
            ts.append("c", float(t), t * 2.0, kind="counter")
        sketch = QuantileSketch()
        sketch.add(0.25)
        ts.append("s", 100.0, sketch, kind="sketch")

        reopened = TimeSeriesStore.open(tmp_path, retention_points=8,
                                        downsample_ratio=4)
        assert reopened.series_names() == ts.series_names()
        for name in ts.series_names():
            live = ts.range(name)
            back = reopened.range(name)
            assert [p.t_s for p in back] == [p.t_s for p in live]
            assert [p.kind for p in back] == [p.kind for p in live]
            assert [p.span for p in back] == [p.span for p in live]
        assert reopened.quantile("s", 50) == ts.quantile("s", 50)
        assert reopened.rate("c") == ts.rate("c")

    def test_compaction_bounds_file_size(self, tmp_path):
        ts = _store(root=tmp_path, retention_points=8,
                    downsample_ratio=4)
        for t in range(500):
            ts.append("g", float(t), 1.0)
        path = tmp_path / "g.jsonl"
        lines = path.read_text().splitlines()
        live = len(ts.range("g"))
        assert len(lines) <= 2 * max(live, 1) + 1
        # Every surviving line is valid JSON for this series.
        assert all(json.loads(line)["series"] == "g" for line in lines)

    def test_open_missing_directory_is_empty(self, tmp_path):
        ts = TimeSeriesStore.open(tmp_path / "nope")
        assert ts.series_names() == []

    def test_series_name_sanitized_for_filesystem(self, tmp_path):
        ts = _store(root=tmp_path)
        ts.append("weird/series:name", 0.0, 1.0)
        (path,) = tmp_path.glob("*.jsonl")
        assert "/" not in path.name[:-6]

    def test_memory_only_without_root(self):
        ts = _store(root=None)
        ts.append("g", 0.0, 1.0)
        assert ts.range("g")


class TestValidation:
    def test_retention_floor(self):
        with pytest.raises(ValueError, match="retention_points"):
            TimeSeriesStore(retention_points=1)

    def test_ratio_floor(self):
        with pytest.raises(ValueError, match="downsample_ratio"):
            TimeSeriesStore(downsample_ratio=1)

    def test_point_repr_and_dict(self):
        point = Point(1.5, 2.0, "gauge")
        assert point.as_dict() == {"t_s": 1.5, "value": 2.0,
                                   "kind": "gauge", "span": 1}
        assert "gauge" in repr(point)

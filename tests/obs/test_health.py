"""SLO burn-rate engine and hash-quality drift detection."""

import math

import pytest

from repro.obs import Journal, MetricsRegistry
from repro.obs.health import (
    DEFAULT_DRIFT_BANDS,
    FAST_BURN_THRESHOLD,
    SLOW_BURN_THRESHOLD,
    DriftBand,
    HashQualityDetector,
    SloEngine,
    SloSpec,
    default_slos,
    strict_bands,
)


def make_registry():
    return MetricsRegistry(enabled=True)


class TestSloSpec:
    def test_ratio_constructor(self):
        spec = SloSpec.ratio("rejects", bad="serve.rejected",
                             total="serve.requests", objective=0.95)
        assert spec.kind == "ratio"
        assert spec.total == ("serve.requests",)
        assert spec.budget == pytest.approx(0.05)

    def test_ratio_total_may_sum_counters(self):
        spec = SloSpec.ratio("hits", bad="m", total=("h", "m"),
                             objective=0.5)
        assert spec.total == ("h", "m")

    def test_latency_constructor(self):
        spec = SloSpec.latency("p99", metric="serve.latency_s",
                               threshold_s=0.05, objective=0.99)
        assert spec.kind == "latency"
        assert spec.threshold_s == 0.05

    @pytest.mark.parametrize("kwargs", [
        dict(name="x", description="", objective=1.0, kind="ratio",
             bad="b", total=("t",)),
        dict(name="x", description="", objective=0.9, kind="ratio"),
        dict(name="x", description="", objective=0.9, kind="latency",
             metric="m"),
        dict(name="x", description="", objective=0.9, kind="latency",
             metric="m", threshold_s=0.0),
        dict(name="x", description="", objective=0.9, kind="nope"),
    ])
    def test_invalid_specs_raise(self, kwargs):
        with pytest.raises(ValueError):
            SloSpec(**kwargs)


class TestRatioBurn:
    def spec(self):
        return SloSpec.ratio("rejects", bad="serve.rejected",
                             total="serve.requests", objective=0.9)

    def test_burn_is_bad_fraction_over_budget(self):
        registry = make_registry()
        registry.counter("serve.requests").inc(100)
        registry.counter("serve.rejected").inc(20)
        engine = SloEngine([self.spec()], registry=registry,
                           journal=Journal())
        (status,) = engine.evaluate()
        # 20% bad over a 10% budget = burn 2.0 on both windows.
        assert status.fast_burn == pytest.approx(2.0)
        assert status.slow_burn == pytest.approx(2.0)
        assert not status.alerting

    def test_fast_window_is_delta_since_last_evaluate(self):
        registry = make_registry()
        requests = registry.counter("serve.requests")
        rejected = registry.counter("serve.rejected")
        requests.inc(100)
        engine = SloEngine([self.spec()], registry=registry,
                           journal=Journal())
        engine.evaluate()
        requests.inc(100)
        rejected.inc(100)  # everything since the last evaluation is bad
        (status,) = engine.evaluate()
        assert status.fast_bad == pytest.approx(100)
        assert status.fast_total == pytest.approx(100)
        assert status.fast_burn == pytest.approx(10.0)
        # Slow window is lifetime: 100 bad of 200 total.
        assert status.slow_burn == pytest.approx(5.0)
        # Burn 10 pages nothing (fast threshold 14.4) but tickets
        # (slow threshold 3.0): the multi-window split in action.
        assert not status.fast_alert
        assert status.slow_alert

    def test_no_traffic_means_zero_burn(self):
        engine = SloEngine([self.spec()], registry=make_registry(),
                           journal=Journal())
        (status,) = engine.evaluate()
        assert status.fast_burn == status.slow_burn == 0.0

    def test_label_subset_matching_sums_series(self):
        registry = make_registry()
        registry.counter("serve.requests", scheme="pmod", op="get").inc(50)
        registry.counter("serve.requests", scheme="pmod", op="put").inc(50)
        registry.counter("serve.rejected", scheme="pmod",
                         reason="queue").inc(30)
        engine = SloEngine([self.spec()], registry=registry,
                           journal=Journal())
        (status,) = engine.evaluate()
        assert status.slow_total == pytest.approx(100)
        assert status.slow_bad == pytest.approx(30)


class TestThresholds:
    def test_fast_page_fires_at_threshold(self):
        registry = make_registry()
        spec = SloSpec.ratio("r", bad="bad", total="total", objective=0.9)
        registry.counter("total").inc(100)
        registry.counter("bad").inc(100)  # 100% bad, burn 10.0
        engine = SloEngine([spec], registry=registry, journal=Journal(),
                           fast_threshold=10.0, slow_threshold=100.0)
        (status,) = engine.evaluate()
        assert status.fast_alert and not status.slow_alert
        (alert,) = engine.active_alerts()
        assert alert.window == "fast"
        assert alert.severity == "page"

    def test_default_thresholds_are_srep_multiwindow(self):
        assert FAST_BURN_THRESHOLD == 14.4
        assert SLOW_BURN_THRESHOLD == 3.0

    def test_alerts_are_edge_triggered_onto_journal(self):
        registry = make_registry()
        journal = Journal()
        spec = SloSpec.ratio("r", bad="bad", total="total", objective=0.9)
        bad, total = registry.counter("bad"), registry.counter("total")
        engine = SloEngine([spec], registry=registry, journal=journal,
                           fast_threshold=5.0, slow_threshold=1000.0)
        total.inc(10)
        bad.inc(10)
        engine.evaluate()  # fast window 100% bad: fires once
        engine.evaluate()  # fast window empty (delta 0): resolves
        total.inc(1000)  # all-good traffic: stays resolved
        engine.evaluate()
        fired = journal.find("health.alert_fired")
        resolved = journal.find("health.alert_resolved")
        assert len(fired) == 1
        assert fired[0].fields["slo"] == "r"
        assert len(resolved) == 1
        assert registry.counter("health.alerts").value == 1

    def test_burn_gauges_published_per_window(self):
        registry = make_registry()
        spec = SloSpec.ratio("r", bad="bad", total="total", objective=0.9)
        engine = SloEngine([spec], registry=registry, journal=Journal())
        engine.evaluate()
        windows = {g.labels["window"]
                   for g in registry.matching("health.burn_rate", slo="r")}
        assert windows == {"fast", "slow"}


class TestLatencySlo:
    def spec(self, threshold_s=0.1, objective=0.9):
        return SloSpec.latency("lat", metric="serve.latency_s",
                               threshold_s=threshold_s, objective=objective)

    def test_fast_window_counts_threshold_crossings_exactly(self):
        registry = make_registry()
        histogram = registry.histogram("serve.latency_s")
        for value in (0.01, 0.01, 0.5, 0.5, 0.5):  # 3 of 5 bad
            histogram.observe(value)
        engine = SloEngine([self.spec()], registry=registry,
                           journal=Journal())
        (status,) = engine.evaluate()
        assert status.fast_bad == 3
        assert status.fast_total == 5
        assert status.fast_burn == pytest.approx(6.0)

    def test_slow_window_accumulates_across_evaluations(self):
        registry = make_registry()
        histogram = registry.histogram("serve.latency_s")
        engine = SloEngine([self.spec()], registry=registry,
                           journal=Journal())
        for _ in range(4):
            histogram.observe(0.5)  # all bad
        engine.evaluate()
        for _ in range(4):
            histogram.observe(0.5)
        (status,) = engine.evaluate()
        assert status.slow_total == pytest.approx(8)
        assert status.slow_bad == pytest.approx(8)

    def test_duplicate_slo_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            SloEngine([self.spec(), self.spec()],
                      registry=make_registry(), journal=Journal())


class TestDefaultSlos:
    def test_covers_serving_and_engine_cache(self):
        names = {spec.name for spec in default_slos()}
        assert names == {"serve-p99-latency", "serve-reject-rate",
                         "engine-cache-hit-ratio"}

    def test_all_evaluate_cleanly_on_empty_registry(self):
        engine = SloEngine(default_slos(), registry=make_registry(),
                           journal=Journal())
        statuses = engine.evaluate()
        assert len(statuses) == 3
        assert not any(s.alerting for s in statuses)


class TestDriftBands:
    def test_traditional_is_unmonitored_by_default(self):
        band = DEFAULT_DRIFT_BANDS["traditional"]
        assert math.isinf(band.balance_max)

    def test_prime_schemes_hold_near_ideal_band(self):
        for scheme in ("pmod", "pdisp"):
            assert DEFAULT_DRIFT_BANDS[scheme].balance_max == 1.5

    def test_strict_bands_cover_every_scheme(self):
        bands = strict_bands(64)
        assert set(bands) == set(DEFAULT_DRIFT_BANDS)
        for band in bands.values():
            assert band.balance_max == 1.5
            assert band.concentration_max == 16.0


class TestHashQualityDetector:
    def test_grade_inside_band_is_ok(self):
        detector = HashQualityDetector(strict_bands(64),
                                       registry=make_registry(),
                                       journal=Journal())
        status = detector.grade("pmod", balance=1.01, concentration=2.0)
        assert status.ok
        assert detector.tripped() == []

    def test_grade_outside_band_trips_and_journals(self):
        registry = make_registry()
        journal = Journal()
        detector = HashQualityDetector(strict_bands(64), registry=registry,
                                       journal=journal)
        status = detector.grade("traditional", balance=63.6,
                                concentration=63.0)
        assert not status.ok
        assert [s.scheme for s in detector.tripped()] == ["traditional"]
        (event,) = journal.find("health.drift_tripped")
        assert event.fields["scheme"] == "traditional"
        assert registry.counter("health.drift.trips").value == 1
        ok_gauge = registry.gauge("health.drift.ok", scheme="traditional")
        assert ok_gauge.value == 0.0

    def test_recovery_is_edge_triggered(self):
        journal = Journal()
        detector = HashQualityDetector(strict_bands(64),
                                       registry=make_registry(),
                                       journal=journal)
        detector.grade("pmod", balance=50.0, concentration=0.0)
        detector.grade("pmod", balance=50.0, concentration=0.0)
        detector.grade("pmod", balance=1.0, concentration=0.0)
        assert len(journal.find("health.drift_tripped")) == 1
        assert len(journal.find("health.drift_recovered")) == 1
        assert detector.tripped() == []

    def test_nan_is_not_drift(self):
        detector = HashQualityDetector(strict_bands(64),
                                       registry=make_registry(),
                                       journal=Journal())
        status = detector.grade("pmod", balance=math.nan,
                                concentration=math.nan)
        assert status.ok

    def test_unknown_scheme_is_unmonitored(self):
        detector = HashQualityDetector({}, registry=make_registry(),
                                       journal=Journal())
        assert detector.grade("mystery", balance=1e9,
                              concentration=1e9).ok

    def test_evaluate_reads_store_gauges_by_scheme(self):
        registry = make_registry()
        for scheme, balance in (("traditional", 63.6), ("pmod", 1.0)):
            registry.gauge("store.balance", scheme=scheme).set(balance)
            registry.gauge("store.concentration", scheme=scheme).set(1.0)
        detector = HashQualityDetector(strict_bands(64), registry=registry,
                                       journal=Journal())
        statuses = {s.scheme: s for s in detector.evaluate()}
        assert not statuses["traditional"].ok
        assert statuses["pmod"].ok

    def test_as_dict_maps_inf_to_none(self):
        detector = HashQualityDetector(registry=make_registry(),
                                       journal=Journal())
        row = detector.grade("traditional", balance=99.0,
                             concentration=99.0).as_dict()
        assert row["balance_max"] is None
        assert row["ok"] is True  # unmonitored: inside the infinite band

"""End-to-end: the shared CLI's --metrics-out / --trace surface."""

import json

from repro.experiments.__main__ import main
from repro.obs import validate_snapshot


def _run(tmp_path, capsys, *extra):
    metrics_path = tmp_path / "metrics.json"
    main([
        "store_sharding",
        "--metrics-out", str(metrics_path),
        "--cache-dir", str(tmp_path / "cache"),
        "--param", "requests=800",
        "--param", "n_shards=16",
        "--param", "shard_capacity=64",
        *extra,
    ])
    capsys.readouterr()
    return metrics_path


class TestMetricsOut:
    def test_snapshot_validates_and_has_engine_cache_counters(
            self, tmp_path, capsys):
        metrics_path = _run(tmp_path, capsys)
        snapshot = json.loads(metrics_path.read_text())
        validate_snapshot(snapshot)

        counters = {c["name"]: c["value"]
                    for c in snapshot["metrics"]["counters"]}
        # engine cache counters are always present (declared at enable);
        # the cold store_sharding run actually missed and wrote entries
        for name in ("engine.cache.hits", "engine.cache.misses",
                     "engine.cache.writes", "engine.cache.corrupt"):
            assert name in counters
        assert counters["engine.cache.misses"] > 0
        assert counters["engine.cache.writes"] > 0

        # the store layer reported per-shard series and quality gauges
        histograms = snapshot["metrics"]["histograms"]
        assert any(h["name"] == "store.shard.latency_s" for h in histograms)
        assert any(h["name"] == "store.op.latency_s" for h in histograms)
        gauges = {g["name"] for g in snapshot["metrics"]["gauges"]}
        assert "store.balance" in gauges
        assert "store.shard.occupancy" in gauges

        # the run traced: one experiment root with replay children
        spans = snapshot["spans"]
        assert spans[0]["name"] == "experiment"
        assert spans[0]["parent"] is None
        assert any(s["name"] == "replay" and s["parent"] == 0
                   for s in spans)

    def test_warm_cache_run_reports_hits(self, tmp_path, capsys):
        _run(tmp_path, capsys)
        metrics_path = _run(tmp_path, capsys)  # same cache dir: all hits
        snapshot = json.loads(metrics_path.read_text())
        validate_snapshot(snapshot)
        counters = {c["name"]: c["value"]
                    for c in snapshot["metrics"]["counters"]}
        assert counters["engine.cache.hits"] > 0
        assert counters["engine.cache.writes"] == 0

    def test_trace_flag_prints_span_tree(self, tmp_path, capsys):
        main([
            "store_sharding",
            "--trace",
            "--param", "requests=400",
            "--param", "n_shards=16",
            "--param", "shard_capacity=64",
        ])
        out = capsys.readouterr().out
        assert "experiment experiment=store_sharding" in out
        assert "replay scheme=" in out
        assert "ms" in out

    def test_without_flags_observability_stays_off(self, tmp_path, capsys):
        from repro.obs import get_registry

        main([
            "store_sharding",
            "--param", "requests=400",
            "--param", "n_shards=16",
            "--param", "shard_capacity=64",
        ])
        capsys.readouterr()
        assert get_registry().enabled is False
        assert len(get_registry()) == 0

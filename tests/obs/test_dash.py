"""The unified dashboard: model assembly, terminal and HTML rendering."""

import json

import pytest

from repro.obs import Journal, MetricsRegistry
from repro.obs.dash import (
    build_dashboard,
    render_html,
    render_text,
    write_dashboard,
)
from repro.obs.dash import _spark, main as dash_main
from repro.obs.health import (
    HashQualityDetector,
    SloEngine,
    default_slos,
    strict_bands,
)


def seeded_sources(tmp_path):
    """A live registry + journal + health results + bench root, with one
    drifting scheme and one hostile journal field."""
    registry = MetricsRegistry(enabled=True)
    journal = Journal(path=tmp_path / "events.jsonl")
    registry.counter("serve.requests").inc(10)
    registry.gauge("store.balance", scheme="pmod").set(1.0)
    registry.histogram("serve.latency_s").observe(0.003)
    journal.emit("serve.fault.stall", queue_id=3, stall_s=0.25)
    journal.emit("odd.payload", note="<script>alert(1)</script>")

    engine = SloEngine(default_slos(), registry=registry, journal=journal)
    statuses = engine.evaluate()
    detector = HashQualityDetector(strict_bands(8), registry=registry,
                                   journal=journal)
    drift = [detector.grade("pmod", balance=1.0, concentration=0.5),
             detector.grade("traditional", balance=7.9, concentration=7.0)]

    bench_root = tmp_path / "bench"
    bench_root.mkdir()
    (bench_root / "BENCH_obs.json").write_text(json.dumps(
        {"bench": "obs_overhead", "disabled_s": 0.5}))
    (bench_root / "BENCH_history.json").write_text(json.dumps({
        "schema_version": 1,
        "entries": [
            {"recorded_at": "t0",
             "metrics": {"obs_overhead.disabled_s": 0.48}},
            {"recorded_at": "t1",
             "metrics": {"obs_overhead.disabled_s": 0.52}},
        ],
    }))
    model = build_dashboard(
        registry=registry, journal=journal, slo_statuses=statuses,
        alerts=engine.active_alerts(), drift_statuses=drift,
        checks={"healthy_phase_quiet": True, "drift_trips": False},
        bench_root=bench_root)
    return model


class TestModel:
    def test_sections_are_json_serializable(self, tmp_path):
        model = seeded_sources(tmp_path)
        json.dumps(model)  # must not raise
        assert model["metrics"] is not None
        assert model["journal_events_total"] == 3  # 2 manual + 1 drift trip
        assert [s["name"] for s in model["slos"]] == [
            spec.name for spec in default_slos()]
        assert {d["scheme"] for d in model["drift"]} == {
            "pmod", "traditional"}
        assert model["checks"] == {"healthy_phase_quiet": True,
                                   "drift_trips": False}

    def test_bench_section_carries_trajectory(self, tmp_path):
        model = seeded_sources(tmp_path)
        cell = model["bench"]["obs_overhead.disabled_s"]
        assert cell["current"] == 0.5
        assert cell["direction"] == "lower"
        assert cell["history"] == [0.48, 0.52]

    def test_tail_is_bounded_by_tail_rows(self, tmp_path):
        journal = Journal()
        for i in range(10):
            journal.emit("k", i=i)
        model = build_dashboard(journal=journal, tail_rows=4)
        assert [e["fields"]["i"] for e in model["journal_tail"]] == [
            6, 7, 8, 9]
        assert model["journal_events_total"] == 10

    def test_journal_events_may_come_from_disk(self, tmp_path):
        events = [{"seq": 0, "mono_s": 0.1, "kind": "replayed",
                   "fields": {}, "ts_unix_s": 1.0, "schema_version": 1}]
        model = build_dashboard(journal_events=events)
        assert model["journal_tail"][0]["kind"] == "replayed"

    def test_empty_model_renders_both_ways(self):
        model = build_dashboard()
        assert "alerts: none active" in render_text(model)
        assert "<html" in render_html(model)


class TestFederationAndTsdbPanels:
    def _federated(self):
        from repro.cluster import Cluster
        from repro.obs import declare_core_metrics
        from repro.obs.fed import Federation

        cluster = Cluster(n_nodes=4, node_scheme="pmod",
                          shard_scheme="pmod", node_registries=True)
        for i in range(400):
            cluster.put(f"k{i}", i)
        local = MetricsRegistry(enabled=True)
        declare_core_metrics(local)
        fed = Federation.for_cluster(cluster, registry=local)
        fed.collect(cluster.virtual_now_s)
        return cluster, fed

    def _tsdb(self):
        from repro.obs.tsdb import TimeSeriesStore

        store = TimeSeriesStore(retention_points=8, downsample_ratio=4,
                                registry=MetricsRegistry(enabled=True))
        for t in range(40):
            store.append("cluster.ops", float(t), t * 3.0,
                         kind="counter")
        return store

    def test_federation_panel_from_a_live_federation(self):
        cluster, fed = self._federated()
        model = build_dashboard(
            federation=fed, federation_elapsed_s=cluster.virtual_now_s)
        json.dumps(model)  # sketches must not leak into the model
        panel = model["federation"]
        assert panel["targets"] == len(cluster.nodes)
        assert panel["scrapes"] + panel["misses"] == panel["targets"]
        assert panel["merges"] == 1
        assert panel["utilization"] is not None
        scraped = [n for n in panel["nodes"] if n["scraped"]]
        assert scraped and all(n["state"] == "up" for n in scraped)
        assert any(row["name"] == "cluster.node.request_latency_s"
                   for row in panel["histograms"])
        assert all("sketch" not in row for row in panel["histograms"])

    def test_tsdb_panel_scalarizes_and_bounds_sparklines(self):
        model = build_dashboard(tsdb=self._tsdb())
        json.dumps(model)
        panel = model["tsdb"]
        assert panel["retention_points"] == 8
        (series,) = panel["series"]
        assert series["name"] == "cluster.ops"
        assert series["downsampled"] > 0  # rate blocks aged in
        assert len(series["values"]) <= 40
        assert series["latest"] == series["values"][-1]

    def test_prebuilt_mappings_pass_through(self):
        model = build_dashboard(federation={"targets": 2},
                                tsdb={"series": []})
        assert model["federation"] == {"targets": 2}
        assert model["tsdb"] == {"series": []}

    def test_panels_render_in_text_and_html(self):
        cluster, fed = self._federated()
        model = build_dashboard(
            federation=fed, federation_elapsed_s=cluster.virtual_now_s,
            tsdb=self._tsdb())
        text = render_text(model)
        assert "metrics federation" in text
        assert "cluster-wide merged quantiles" in text
        assert "time series" in text
        html = render_html(model)
        assert "Metrics federation" in html
        assert "Time series" in html

    def test_absent_panels_stay_out_of_the_model(self):
        model = build_dashboard()
        assert model["federation"] is None
        assert model["tsdb"] is None
        assert "metrics federation" not in render_text(model)


class TestRenderText:
    def test_all_sections_present(self, tmp_path):
        text = render_text(seeded_sources(tmp_path))
        for needle in ("health dashboard", "SLO burn rates",
                       "hash-quality drift", "checks (1/2 hold)",
                       "bench trajectory", "journal tail",
                       "metrics snapshot"):
            assert needle in text
        assert "DRIFT" in text  # traditional out of the strict band
        assert "serve.fault.stall" in text


class TestRenderHtml:
    def test_self_contained_zero_external_assets(self, tmp_path):
        page = render_html(seeded_sources(tmp_path))
        assert page.startswith("<!DOCTYPE html>")
        for forbidden in ("<script", "http://", "https://", "src=",
                          "@import", "url("):
            assert forbidden not in page, forbidden
        assert "<style>" in page  # CSS is inline

    def test_journal_fields_are_escaped(self, tmp_path):
        page = render_html(seeded_sources(tmp_path))
        assert "<script>alert(1)</script>" not in page
        assert "&lt;script&gt;" in page

    def test_drift_and_checks_verdicts_rendered(self, tmp_path):
        page = render_html(seeded_sources(tmp_path))
        assert '<span class="bad">DRIFT</span>' in page
        assert '<span class="ok">ok</span>' in page
        assert "Bench trajectory" in page


class TestSpark:
    def test_needs_two_finite_points(self):
        assert _spark([]) == ""
        assert _spark([1.0]) == ""
        assert _spark([1.0, float("nan")]) == ""

    def test_flat_series_renders_floor_glyphs(self):
        assert _spark([2.0, 2.0, 2.0]) == "▁▁▁"

    def test_rising_series_rises(self):
        bar = _spark([0.0, 0.5, 1.0])
        assert len(bar) == 3
        assert bar[0] < bar[-1]  # glyphs are ordered by codepoint


class TestWriteAndCli:
    def test_write_dashboard_creates_parents(self, tmp_path):
        out = tmp_path / "deep" / "nested" / "dash.html"
        written = write_dashboard(out, build_dashboard())
        assert written == out
        assert out.read_text().startswith("<!DOCTYPE html>")

    def test_cli_renders_files_from_disk(self, tmp_path, capsys):
        journal = Journal(path=tmp_path / "run.jsonl")
        journal.emit("cli.smoke", n=1)
        out = tmp_path / "dash.html"
        dash_main(["--journal", str(tmp_path / "run.jsonl"),
                   "--out", str(out)])
        assert "dashboard written to" in capsys.readouterr().out
        assert "cli.smoke" in out.read_text()

    def test_cli_defaults_to_terminal_rendering(self, tmp_path, capsys):
        snapshot_path = tmp_path / "metrics.json"
        registry = MetricsRegistry(enabled=True)
        registry.counter("serve.requests").inc(3)
        from repro.obs.sinks import metrics_snapshot

        snapshot_path.write_text(json.dumps(metrics_snapshot(registry)))
        dash_main(["--snapshot", str(snapshot_path)])
        assert "metrics snapshot" in capsys.readouterr().out

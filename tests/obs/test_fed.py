"""Metrics federation: scraping over the fabric, merge semantics,
and the unchanged health layer on the merged registry."""

import math

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.cluster.interconnect import make_fabric
from repro.cluster.node import NodeDownError
from repro.obs import Journal, declare_core_metrics
from repro.obs.fed import (
    Aggregator,
    Federation,
    MergedHistogram,
    Scraper,
)
from repro.obs.health import SloEngine, SloSpec
from repro.obs.registry import MetricsRegistry
from repro.obs.sketch import QuantileSketch


class FakeNode:
    """Duck-typed scrape target with a controllable snapshot."""

    def __init__(self, name, doc=None, version=1):
        self.name = name
        self.version = version
        self.doc = doc or {"metrics": {"counters": [], "gauges": [],
                                       "histograms": []}}
        self.down = False

    def metrics_snapshot(self):
        if self.down:
            raise NodeDownError(f"{self.name} is down")
        doc = dict(self.doc)
        doc["fed"] = {"node": self.name, "version": self.version,
                      "state": "up"}
        return doc


def _counter_row(name, value, **labels):
    return {"name": name, "labels": labels, "value": value}


def _gauge_row(name, value, **labels):
    return {"name": name, "labels": labels, "value": value}


def _sketch_row(name, values, **labels):
    sketch = QuantileSketch()
    for v in values:
        sketch.add(v)
    return {"name": name, "labels": labels, "count": len(values),
            "sum": float(sum(values)), "min": min(values),
            "max": max(values), "sketch": sketch.as_dict()}


def _doc(counters=(), gauges=(), histograms=()):
    return {"metrics": {"counters": list(counters),
                        "gauges": list(gauges),
                        "histograms": list(histograms)}}


class TestScraper:
    def test_out_of_band_scrape_collects_every_target(self):
        nodes = [FakeNode(f"n{i}") for i in range(3)]
        scraper = Scraper([(n.name, n) for n in nodes],
                          registry=MetricsRegistry(enabled=True))
        results = scraper.scrape(now_s=1.0)
        assert all(r.ok for r in results)
        assert scraper.scrapes == 3
        assert set(scraper.latest) == {"n0", "n1", "n2"}

    def test_down_node_is_a_journaled_miss(self):
        node = FakeNode("n0")
        node.down = True
        journal = Journal()
        scraper = Scraper([("n0", node)], journal=journal,
                          registry=MetricsRegistry(enabled=True))
        (result,) = scraper.scrape()
        assert not result.ok
        assert result.reason == "NodeDownError"
        (event,) = journal.find("obs.scrape_miss")
        assert event.fields["endpoint"] == "n0"
        assert scraper.misses == 1

    def test_miss_keeps_previous_snapshot(self):
        node = FakeNode("n0")
        scraper = Scraper([("n0", node)],
                          registry=MetricsRegistry(enabled=True))
        scraper.scrape(now_s=1.0)
        node.down = True
        scraper.scrape(now_s=2.0)
        doc, arrival = scraper.latest["n0"]
        assert arrival == 1.0  # the stale-but-present snapshot

    def test_stale_version_rejected(self):
        node = FakeNode("n0", version=5)
        journal = Journal()
        scraper = Scraper([("n0", node)], journal=journal,
                          registry=MetricsRegistry(enabled=True))
        scraper.scrape(now_s=1.0)
        # The exporter re-delivers the same version: not merged again.
        (result,) = scraper.scrape(now_s=2.0)
        assert not result.ok and result.reason == "stale_version"
        node.version = 6
        (result,) = scraper.scrape(now_s=3.0)
        assert result.ok

    def test_fabric_scrape_charges_links_and_advances_arrival(self):
        fabric = make_fabric("star", 2)
        node = FakeNode("node0")
        scraper = Scraper([("node0", node)], fabric=fabric,
                          source_endpoint="frontend",
                          registry=MetricsRegistry(enabled=True))
        (result,) = scraper.scrape(now_s=0.0)
        assert result.ok
        assert result.arrival_s > 0.0  # round trip took virtual time
        assert scraper.scrape_busy_s  # serialization was attributed
        assert 0.0 < scraper.scrape_utilization(1.0) < 1.0

    def test_utilization_zero_before_any_scrape(self):
        scraper = Scraper([], registry=MetricsRegistry(enabled=True))
        assert scraper.scrape_utilization(10.0) == 0.0


class TestAggregator:
    def test_counters_sum_by_identity(self):
        docs = [
            _doc(counters=[_counter_row("ops", 10, node="a")]),
            _doc(counters=[_counter_row("ops", 5, node="a"),
                           _counter_row("ops", 7, node="b")]),
        ]
        merged = Aggregator().merge(docs)
        (a,) = merged.matching("ops", node="a")
        (b,) = merged.matching("ops", node="b")
        assert a.value == 15
        assert b.value == 7

    def test_gauge_policies_max_min_last(self):
        docs = [
            _doc(gauges=[_gauge_row("store.balance", 1.2),
                         _gauge_row("store.hit_rate", 0.9),
                         _gauge_row("custom.gauge", 1.0)]),
            _doc(gauges=[_gauge_row("store.balance", 1.5),
                         _gauge_row("store.hit_rate", 0.4),
                         _gauge_row("custom.gauge", 2.0)]),
        ]
        merged = Aggregator().merge(docs)
        assert merged.matching("store.balance")[0].value == 1.5  # max
        assert merged.matching("store.hit_rate")[0].value == 0.4  # min
        assert merged.matching("custom.gauge")[0].value == 2.0  # last

    def test_sketch_histograms_merge_exactly(self):
        rng = np.random.default_rng(0)
        left = rng.lognormal(-9, 0.5, 3000)
        right = rng.lognormal(-8.5, 0.5, 3000)
        docs = [_doc(histograms=[_sketch_row("lat", list(left))]),
                _doc(histograms=[_sketch_row("lat", list(right))])]
        merged = Aggregator().merge(docs)
        (hist,) = merged.matching("lat")
        assert hist.mergeable
        pooled = np.concatenate([left, right])
        exact = float(np.percentile(pooled, 99))
        assert abs(hist.percentile(99) - exact) / exact <= 0.02
        assert hist.count == 6000
        assert len(hist.window_values()) == 6000

    def test_sketchless_histograms_merge_conservatively(self):
        docs = [
            _doc(histograms=[{"name": "lat", "labels": {}, "count": 10,
                              "sum": 1.0, "min": 0.05, "max": 0.2,
                              "p50": 0.1, "p95": 0.15, "p99": 0.2}]),
            _doc(histograms=[{"name": "lat", "labels": {}, "count": 5,
                              "sum": 2.0, "min": 0.01, "max": 0.9,
                              "p50": 0.4, "p95": 0.8, "p99": 0.9}]),
        ]
        merged = Aggregator().merge(docs)
        (hist,) = merged.matching("lat")
        assert not hist.mergeable
        assert hist.count == 15
        assert hist.min == 0.01 and hist.max == 0.9
        assert hist.percentile(99) == 0.9  # per-node max: tail bound
        assert hist.window_values() == []  # no raw data to pretend


class TestMergedHistogram:
    def test_summary_shape_matches_histogram_row(self):
        hist = MergedHistogram("lat", {})
        hist.absorb(_sketch_row("lat", [0.1, 0.2, 0.3]))
        row = hist.as_dict()
        for key in ("name", "labels", "count", "sum", "min", "max",
                    "mean", "p50", "p95", "p99", "exemplars"):
            assert key in row
        assert "sketch" in row  # stays mergeable downstream

    def test_empty_summary_is_nan(self):
        summary = MergedHistogram("lat", {}).summary()
        assert summary["count"] == 0
        assert math.isnan(summary["min"])


class TestFederationOnCluster:
    @pytest.fixture(scope="class")
    def served_cluster(self):
        cluster = Cluster(n_nodes=4, node_scheme="pmod",
                          shard_scheme="pmod", node_registries=True)
        for i in range(1500):
            cluster.put(f"k{i}", i)
            cluster.get(f"k{i // 2}")
        return cluster

    def test_merged_p99_matches_exact_pool(self, served_cluster):
        local = MetricsRegistry(enabled=True)
        declare_core_metrics(local)
        fed = Federation.for_cluster(served_cluster, registry=local)
        fed.collect(served_cluster.virtual_now_s)
        exact = float(np.percentile(
            np.asarray(served_cluster._latencies, dtype=float), 99))
        got = fed.quantile("cluster.node.request_latency_s", 99)
        assert abs(got - exact) / exact <= 0.02

    def test_collect_publishes_staleness_and_fed_counters(
            self, served_cluster):
        local = MetricsRegistry(enabled=True)
        declare_core_metrics(local)
        fed = Federation.for_cluster(served_cluster, registry=local)
        fed.collect(served_cluster.virtual_now_s)
        # pMod fragments 4 physical nodes down to the prime ring of 3.
        ring = len(served_cluster.nodes)
        assert ring == 3
        assert local.counter("fed.merges").value == 1
        # A same-instant sweep can tail-drop on the shared frontend
        # link — that's the fabric doing its job, not a test failure.
        scrapes = local.counter("fed.scrapes").value
        misses = local.counter("fed.scrape_misses").value
        assert scrapes + misses == ring
        assert scrapes >= ring - 1
        staleness = [g for g in local.matching("fed.node.staleness_s")
                     if "node" in g.labels]  # skip the declared stub
        assert len(staleness) == scrapes
        assert all(g.value >= 0.0 for g in staleness)

    def test_slo_engine_runs_unchanged_on_merged_registry(
            self, served_cluster):
        local = MetricsRegistry(enabled=True)
        declare_core_metrics(local)
        fed = Federation.for_cluster(served_cluster, registry=local)
        merged = fed.collect(served_cluster.virtual_now_s)
        spec = SloSpec.latency("p99", "cluster.node.request_latency_s",
                               threshold_s=10.0, objective=0.99)
        engine = SloEngine([spec], registry=merged)
        (status,) = engine.evaluate()
        assert not status.alerting  # nothing is over a 10s threshold
        assert status.fast_burn == 0.0

    def test_quantile_before_collect_raises(self, served_cluster):
        fed = Federation.for_cluster(
            served_cluster, registry=MetricsRegistry(enabled=True))
        with pytest.raises(RuntimeError, match="collect"):
            fed.quantile("cluster.node.request_latency_s", 99)

    def test_unknown_sketch_series_raises(self, served_cluster):
        local = MetricsRegistry(enabled=True)
        fed = Federation.for_cluster(served_cluster, registry=local)
        fed.collect(served_cluster.virtual_now_s)
        with pytest.raises(KeyError, match="no sketch-backed series"):
            fed.quantile("no.such.series", 99)

    def test_node_without_registry_is_scrape_error(self):
        cluster = Cluster(n_nodes=4, node_scheme="pmod",
                          shard_scheme="pmod")  # no node_registries
        with pytest.raises(RuntimeError, match="node_registries"):
            cluster.nodes[0].metrics_snapshot()

    def test_rebind_preserves_engine_state(self, served_cluster):
        local = MetricsRegistry(enabled=True)
        declare_core_metrics(local)
        fed = Federation.for_cluster(served_cluster, registry=local)
        merged = fed.collect(served_cluster.virtual_now_s)
        spec = SloSpec.latency("p99", "cluster.node.request_latency_s",
                               threshold_s=10.0, objective=0.99)
        engine = SloEngine([spec], registry=merged)
        engine.evaluate()
        evaluations = engine.evaluations
        remerged = fed.collect(served_cluster.virtual_now_s + 1.0)
        assert engine.rebind(remerged) is engine
        engine.evaluate()
        assert engine.evaluations == evaluations + 1

"""Bench-regression gating: extraction, history, the noise-floored gate."""

import json

import pytest

from repro.obs.benchguard import (
    DEFAULT_HISTORY_NAME,
    DEFAULT_NOISE_FLOOR,
    HISTORY_SCHEMA_VERSION,
    MAX_HISTORY_ENTRIES,
    MIN_HISTORY_RUNS,
    MIN_TREND_RUNS,
    TREND_Z_THRESHOLD,
    append_history,
    check,
    current_metrics,
    extract_metrics,
    load_bench_files,
    load_history,
    main,
    mann_kendall,
    metric_trajectories,
    theil_sen_slope,
    trend_check,
    trend_table,
    write_history,
)


def history_with(name, samples):
    return {"schema_version": HISTORY_SCHEMA_VERSION,
            "entries": [{"recorded_at": f"t{i}", "metrics": {name: v}}
                        for i, v in enumerate(samples)]}


class TestExtraction:
    def test_obs_doc_yields_its_gated_metric(self):
        rows = extract_metrics({"bench": "obs_overhead", "disabled_s": 0.4,
                                "overhead_frac": 0.01})
        assert rows == [("disabled_s", 0.4, "lower")]

    def test_nested_paths_resolve(self):
        doc = {"bench": "serve",
               "closed_loop": {"throughput_rps": 1200.0},
               "open_loop": {"schemes": {"pmod": {"latency": {"p99": 0.02}}}}}
        assert dict((m, v) for m, v, _ in extract_metrics(doc)) == {
            "closed_loop_throughput_rps": 1200.0,
            "open_pmod_p99_s": 0.02,
        }

    def test_unknown_bench_and_missing_paths_extract_nothing(self):
        assert extract_metrics({"bench": "mystery", "x": 1}) == []
        assert extract_metrics({"bench": "serve"}) == []

    def test_bool_values_are_not_metrics(self):
        assert extract_metrics({"bench": "obs_overhead",
                                "disabled_s": True}) == []

    def test_load_bench_files_skips_history_and_junk(self, tmp_path):
        (tmp_path / "BENCH_a.json").write_text(
            json.dumps({"bench": "obs_overhead", "disabled_s": 1.0}))
        (tmp_path / DEFAULT_HISTORY_NAME).write_text(
            json.dumps({"bench": "bogus"}))
        (tmp_path / "BENCH_broken.json").write_text("{not json")
        (tmp_path / "BENCH_unnamed.json").write_text(json.dumps({"x": 1}))
        docs = load_bench_files(tmp_path)
        assert set(docs) == {"obs_overhead"}

    def test_current_metrics_prefixes_bench_name(self, tmp_path):
        (tmp_path / "BENCH_obs.json").write_text(
            json.dumps({"bench": "obs_overhead", "disabled_s": 0.3}))
        assert current_metrics(tmp_path) == {
            "obs_overhead.disabled_s": (0.3, "lower")}


class TestHistory:
    def test_absent_or_corrupt_resets_to_empty(self, tmp_path):
        empty = {"schema_version": HISTORY_SCHEMA_VERSION, "entries": []}
        assert load_history(tmp_path / "missing.json") == empty
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert load_history(bad) == empty
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"schema_version": 99, "entries": []}))
        assert load_history(wrong) == empty

    def test_append_trims_to_cap(self):
        history = history_with("m", range(MAX_HISTORY_ENTRIES))
        append_history(history, {"m": (999.0, "lower")})
        assert len(history["entries"]) == MAX_HISTORY_ENTRIES
        assert history["entries"][-1]["metrics"] == {"m": 999.0}
        assert history["entries"][0]["metrics"] == {"m": 1.0}  # oldest dropped

    def test_round_trip_through_disk(self, tmp_path):
        path = tmp_path / DEFAULT_HISTORY_NAME
        write_history(path, history_with("m", [1.0, 2.0]))
        assert metric_trajectories(load_history(path)) == {"m": [1.0, 2.0]}

    def test_trajectories_skip_non_numeric(self):
        history = {"schema_version": 1, "entries": [
            {"metrics": {"m": 1.0, "note": "text"}},
            {"metrics": {"m": 2.0}},
        ]}
        assert metric_trajectories(history) == {"m": [1.0, 2.0]}


class TestCheck:
    def test_lower_is_better_flags_slowdowns_only(self):
        history = history_with("fastsim.vectorized_s", [1.0, 1.0, 1.1])
        slow = check({"fastsim.vectorized_s": (2.0, "lower")}, history)
        (regression,) = slow
        assert regression.delta_frac == pytest.approx(1.0)
        assert "slower" in regression.describe()
        fast = check({"fastsim.vectorized_s": (0.5, "lower")}, history)
        assert fast == []  # improvements never flag

    def test_higher_is_better_flags_drops_only(self):
        history = history_with("serve.rps", [1000.0, 1000.0])
        assert check({"serve.rps": (400.0, "higher")}, history)
        assert check({"serve.rps": (5000.0, "higher")}, history) == []

    def test_noise_floor_absorbs_jitter(self):
        history = history_with("m", [1.0, 1.0])
        within = 1.0 + DEFAULT_NOISE_FLOOR * 0.9
        beyond = 1.0 + DEFAULT_NOISE_FLOOR * 1.1
        assert check({"m": (within, "lower")}, history) == []
        assert check({"m": (beyond, "lower")}, history)

    def test_thin_history_is_not_gated(self):
        history = history_with("m", [1.0] * (MIN_HISTORY_RUNS - 1))
        assert check({"m": (100.0, "lower")}, history) == []

    def test_zero_median_is_skipped(self):
        history = history_with("m", [0.0, 0.0])
        assert check({"m": (100.0, "lower")}, history) == []

    def test_gate_uses_median_not_latest(self):
        # One anomalous fast run must not make the next normal run
        # look like a regression.
        history = history_with("m", [1.0, 1.0, 0.1])
        assert check({"m": (1.1, "lower")}, history) == []


class TestMain:
    def seed(self, tmp_path, disabled_s=0.5, runs=2):
        (tmp_path / "BENCH_obs.json").write_text(json.dumps(
            {"bench": "obs_overhead", "disabled_s": disabled_s}))
        write_history(tmp_path / DEFAULT_HISTORY_NAME,
                      history_with("obs_overhead.disabled_s",
                                   [0.5] * runs))

    def test_clean_run_appends_to_history(self, tmp_path, capsys):
        self.seed(tmp_path)
        assert main(["--root", str(tmp_path)]) == 0
        assert "run appended" in capsys.readouterr().out
        entries = load_history(tmp_path / DEFAULT_HISTORY_NAME)["entries"]
        assert len(entries) == 3

    def test_no_update_leaves_history_alone(self, tmp_path, capsys):
        self.seed(tmp_path)
        assert main(["--root", str(tmp_path), "--no-update"]) == 0
        assert "history not updated" in capsys.readouterr().out
        entries = load_history(tmp_path / DEFAULT_HISTORY_NAME)["entries"]
        assert len(entries) == 2

    def test_regression_exits_one_and_preserves_history(self, tmp_path,
                                                        capsys):
        self.seed(tmp_path, disabled_s=2.0)  # 4x the recorded median
        assert main(["--root", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.err
        assert "history left untouched" in captured.err
        entries = load_history(tmp_path / DEFAULT_HISTORY_NAME)["entries"]
        assert len(entries) == 2

    def test_thin_history_records_without_gating(self, tmp_path, capsys):
        self.seed(tmp_path, disabled_s=2.0, runs=1)  # would regress if gated
        assert main(["--root", str(tmp_path)]) == 0
        assert "recording (1/2 runs)" in capsys.readouterr().out

    def test_empty_root_is_not_an_error(self, tmp_path, capsys):
        assert main(["--root", str(tmp_path)]) == 0
        assert "nothing to gate" in capsys.readouterr().out

    def test_custom_noise_floor_flag(self, tmp_path):
        self.seed(tmp_path, disabled_s=0.6)  # +20%: inside default floor
        assert main(["--root", str(tmp_path), "--no-update",
                     "--noise-floor", "0.1"]) == 1


def drifting(start, frac_per_run, runs):
    """A series compounding ``frac_per_run`` each run (+2% = 0.02)."""
    return [start * (1.0 + frac_per_run) ** i for i in range(runs)]


class TestTrendEstimators:
    def test_theil_sen_recovers_a_clean_slope(self):
        assert theil_sen_slope([1.0, 3.0, 5.0, 7.0]) == pytest.approx(2.0)

    def test_theil_sen_shrugs_off_one_outlier(self):
        # One wild run perturbs a few pairwise slopes, not their median.
        assert theil_sen_slope([1.0, 2.0, 3.0, 4.0, 50.0]) == (
            pytest.approx(1.0))

    def test_theil_sen_short_series_is_flat(self):
        assert theil_sen_slope([]) == 0.0
        assert theil_sen_slope([5.0]) == 0.0

    def test_mann_kendall_monotonic_is_significant(self):
        s, z = mann_kendall([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s == 10  # every pair concordant
        assert z >= TREND_Z_THRESHOLD

    def test_mann_kendall_sign_tracks_direction(self):
        _, up = mann_kendall(drifting(1.0, 0.02, 6))
        _, down = mann_kendall(drifting(1.0, -0.02, 6))
        assert up > 0 > down

    def test_mann_kendall_constant_series_is_zero(self):
        s, z = mann_kendall([2.0] * 8)
        assert (s, z) == (0, 0.0)


class TestTrendCheck:
    """The acceptance fixture: a 5-PR monotonic 2%-per-step regression
    must trip the trend pass; flat and trendless series must not."""

    def test_rising_lower_is_better_metric_trips(self):
        history = history_with("fed.merge_ns_per_series",
                               drifting(7000.0, 0.02, MIN_TREND_RUNS))
        (alert,) = trend_check(history,
                               {"fed.merge_ns_per_series": "lower"})
        assert alert.metric == "fed.merge_ns_per_series"
        assert alert.slope_per_run > 0
        assert alert.slope_frac_per_run >= 0.01
        assert abs(alert.z) >= TREND_Z_THRESHOLD
        assert "rising" in alert.describe()

    def test_falling_higher_is_better_metric_trips(self):
        history = history_with("serve.rps",
                               drifting(1000.0, -0.02, MIN_TREND_RUNS))
        (alert,) = trend_check(history, {"serve.rps": "higher"})
        assert alert.slope_per_run < 0
        assert "falling" in alert.describe()

    def test_good_direction_drift_never_trips(self):
        history = history_with("serve.rps",
                               drifting(1000.0, 0.02, 8))  # improving
        assert trend_check(history, {"serve.rps": "higher"}) == []

    def test_flat_series_stays_green(self):
        history = history_with("m", [3.0] * 10)
        assert trend_check(history, {"m": "lower"}) == []

    def test_trendless_noise_stays_green(self):
        # Alternating jitter around a level: |S| stays small.
        series = [1.0 + 0.03 * (-1) ** i for i in range(10)]
        history = history_with("m", series)
        assert trend_check(history, {"m": "lower"}) == []

    def test_microscopic_drift_is_below_the_slope_floor(self):
        # Perfectly monotonic (z significant) but 0.1% per run: a
        # table row, not a page.
        history = history_with("m", drifting(1.0, 0.001, 10))
        assert trend_check(history, {"m": "lower"}) == []
        assert trend_check(history, {"m": "lower"}, slope_floor=0.0005)

    def test_short_series_is_not_judged(self):
        history = history_with(
            "m", drifting(1.0, 0.05, MIN_TREND_RUNS - 1))
        assert trend_check(history, {"m": "lower"}) == []

    def test_undirected_metrics_are_skipped(self):
        history = history_with("mystery.metric", drifting(1.0, 0.05, 8))
        assert trend_check(history, directions={}) == []

    def test_trend_table_lists_every_series(self):
        history = {"schema_version": HISTORY_SCHEMA_VERSION, "entries": [
            {"metrics": {"a": 1.0 + i, "b": 2.0}} for i in range(4)]}
        rows = trend_table(history, {"a": "lower", "b": "higher"})
        assert len(rows) == 2
        assert "a" in rows[0] and "4 runs" in rows[0]


class TestTrendGateInMain:
    def seed_drift(self, tmp_path, frac_per_run, runs=MIN_TREND_RUNS):
        """History drifting up plus a current run continuing the drift
        — each step far inside the 25% median noise floor, so only the
        trend pass can see it."""
        series = drifting(0.5, frac_per_run, runs + 1)
        (tmp_path / "BENCH_obs.json").write_text(json.dumps(
            {"bench": "obs_overhead", "disabled_s": series[-1]}))
        write_history(tmp_path / DEFAULT_HISTORY_NAME,
                      history_with("obs_overhead.disabled_s",
                                   series[:-1]))

    def test_sustained_drift_fails_the_gate(self, tmp_path, capsys):
        self.seed_drift(tmp_path, 0.02)
        assert main(["--root", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "TREND" in captured.err
        assert "history left untouched" in captured.err
        entries = load_history(tmp_path / DEFAULT_HISTORY_NAME)["entries"]
        assert len(entries) == MIN_TREND_RUNS  # failing run not recorded

    def test_stable_history_passes_the_gate(self, tmp_path):
        self.seed_drift(tmp_path, 0.0)
        assert main(["--root", str(tmp_path)]) == 0

    def test_trend_table_flag_prints_and_skips_gating(self, tmp_path,
                                                      capsys):
        self.seed_drift(tmp_path, 0.05)  # would fail the gate
        assert main(["--root", str(tmp_path), "--trend-table"]) == 0
        out = capsys.readouterr().out
        assert "obs_overhead.disabled_s" in out

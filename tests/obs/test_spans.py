"""Span tracer: nesting, timing, threads, flat export, rendering."""

import threading
import time

from repro.obs import SpanTracer, get_tracer, trace_span


class TestNesting:
    def test_nested_spans_form_a_tree(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner_a"):
                pass
            with tracer.span("inner_b"):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner_a", "inner_b"]

    def test_nested_durations_are_ordered(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.01)
        root = tracer.roots[0]
        inner = root.children[0]
        assert inner.duration_s >= 0.01
        assert root.duration_s >= inner.duration_s
        assert inner.start_s >= root.start_s

    def test_sequential_roots(self):
        tracer = SpanTracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.name for r in tracer.roots] == ["first", "second"]

    def test_exception_still_closes_span(self):
        tracer = SpanTracer()
        try:
            with tracer.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert tracer.roots[0].duration_s is not None
        # the stack unwound: the next span is a fresh root
        with tracer.span("after"):
            pass
        assert [r.name for r in tracer.roots] == ["boom", "after"]


class TestThreads:
    def test_each_thread_gets_its_own_stack(self):
        tracer = SpanTracer()

        def worker(tag):
            with tracer.span("chunk", tag=tag):
                time.sleep(0.002)

        with tracer.span("replay"):
            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # worker spans are *roots* of their own threads, not children
        # of the main thread's replay span
        names = sorted(r.name for r in tracer.roots)
        assert names == ["chunk"] * 4 + ["replay"]
        replay = [r for r in tracer.roots if r.name == "replay"][0]
        assert replay.children == []


class TestExports:
    def test_flat_depth_and_parent_indices(self):
        tracer = SpanTracer()
        with tracer.span("a", k="v"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        rows = tracer.flat()
        assert [(r["name"], r["depth"], r["parent"]) for r in rows] == [
            ("a", 0, None), ("b", 1, 0), ("c", 2, 1)
        ]
        assert rows[0]["labels"] == {"k": "v"}
        assert all(r["duration_s"] >= 0 for r in rows)

    def test_render_tree_shows_names_and_labels(self):
        tracer = SpanTracer()
        with tracer.span("experiment", experiment="demo"):
            with tracer.span("simulate", workload="tree"):
                pass
        rendered = tracer.render()
        assert "experiment experiment=demo" in rendered
        assert "simulate workload=tree" in rendered
        assert "ms" in rendered

    def test_render_empty(self):
        assert SpanTracer().render() == "(no spans recorded)"

    def test_clear_resets(self):
        tracer = SpanTracer()
        with tracer.span("a"):
            pass
        tracer.clear()
        assert tracer.roots == []
        assert tracer.flat() == []


class TestDisabled:
    def test_disabled_tracer_records_nothing(self):
        tracer = SpanTracer(enabled=False)
        with tracer.span("invisible"):
            pass
        assert tracer.roots == []

    def test_global_trace_span_is_noop_by_default(self):
        assert get_tracer().enabled is False
        before = len(get_tracer().roots)
        with trace_span("invisible"):
            pass
        assert len(get_tracer().roots) == before

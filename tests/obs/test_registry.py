"""Registry semantics: counters, gauges, histograms, labels, off path."""

import math
import threading

import pytest

from repro.obs import NULL, MetricsRegistry, get_registry, set_registry
from repro.obs.registry import DEFAULT_HISTOGRAM_WINDOW


class TestCounters:
    def test_counts_and_snapshot(self):
        registry = MetricsRegistry()
        counter = registry.counter("engine.cache.hits")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.snapshot()["counters"] == [
            {"name": "engine.cache.hits", "labels": {}, "value": 5}
        ]

    def test_get_or_create_returns_same_series(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert len(registry.counters()) == 1

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("a")


class TestLabels:
    def test_distinct_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("store.requests", scheme="pmod").inc()
        registry.counter("store.requests", scheme="xor").inc(2)
        values = {
            tuple(sorted(c.labels.items())): c.value
            for c in registry.counters()
        }
        assert values == {(("scheme", "pmod"),): 1, (("scheme", "xor"),): 2}

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.gauge("g", shard=1, scheme="pmod")
        b = registry.gauge("g", scheme="pmod", shard=1)
        assert a is b


class TestGauges:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("store.occupancy")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13


class TestHistograms:
    def test_summary_statistics(self):
        histogram = MetricsRegistry().histogram("lat")
        for value in [1.0, 2.0, 3.0, 4.0]:
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["sum"] == pytest.approx(10.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["p50"] == 2.0
        assert summary["p99"] == 4.0

    def test_percentiles_use_bounded_window(self):
        histogram = MetricsRegistry().histogram("lat", window=10)
        for value in range(1000):
            histogram.observe(float(value))
        # lifetime stats see everything...
        assert histogram.count == 1000
        assert histogram.min == 0.0
        # ...percentiles only the last 10 observations (990..999)
        assert histogram.percentile(50) >= 990.0
        assert histogram.summary()["window"] == 10

    def test_empty_histogram_is_nan_not_crash(self):
        summary = MetricsRegistry().histogram("lat").summary()
        assert math.isnan(summary["p50"])
        assert math.isnan(summary["mean"])

    def test_default_window(self):
        histogram = MetricsRegistry().histogram("lat")
        assert histogram.window == DEFAULT_HISTOGRAM_WINDOW

    def test_percentile_ordering(self):
        histogram = MetricsRegistry().histogram("lat")
        for value in range(100):
            histogram.observe(float(value))
        s = histogram.summary()
        assert s["p50"] <= s["p95"] <= s["p99"] <= s["max"]


class TestDisabledRegistry:
    def test_off_path_adds_no_entries(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("a").inc()
        registry.gauge("b", scheme="pmod").set(1.0)
        registry.histogram("c").observe(0.5)
        assert len(registry) == 0
        assert registry.snapshot() == {
            "counters": [], "gauges": [], "histograms": []
        }

    def test_disabled_instruments_are_the_shared_null(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("a") is NULL
        assert registry.gauge("b") is NULL
        assert registry.histogram("c") is NULL

    def test_enable_disable_roundtrip(self):
        registry = MetricsRegistry(enabled=False)
        registry.enable()
        registry.counter("a").inc()
        registry.disable()
        registry.counter("b").inc()
        assert [c.name for c in registry.counters()] == ["a"]


class TestGlobalRegistry:
    def test_default_global_is_disabled(self):
        assert get_registry().enabled is False

    def test_set_registry_swaps_and_returns_previous(self):
        mine = MetricsRegistry()
        previous = set_registry(mine)
        try:
            assert get_registry() is mine
        finally:
            set_registry(previous)
        assert get_registry() is previous


class TestThreadSafety:
    def test_concurrent_get_or_create_single_series(self):
        registry = MetricsRegistry()
        seen = []

        def worker():
            counter = registry.counter("shared")
            seen.append(counter)
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(map(id, seen))) == 1
        assert len(registry.counters()) == 1

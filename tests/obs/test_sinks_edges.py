"""Sink edge cases: empty exposition, label escaping, window eviction."""

import math

from repro.obs import MetricsRegistry
from repro.obs.sinks import metrics_snapshot, to_prometheus, validate_snapshot


def make_registry():
    return MetricsRegistry(enabled=True)


class TestEmptyRegistry:
    def test_prometheus_of_empty_registry_is_empty_string(self):
        assert to_prometheus(make_registry()) == ""

    def test_snapshot_of_empty_registry_still_validates(self):
        snapshot = metrics_snapshot(make_registry())
        validate_snapshot(snapshot)
        assert snapshot["metrics"] == {"counters": [], "gauges": [],
                                       "histograms": []}


class TestLabelEscaping:
    def test_quote_backslash_and_newline_are_escaped(self):
        registry = make_registry()
        registry.counter("odd", path='C:\\tmp\\"x"\nnext').inc()
        (line,) = [l for l in to_prometheus(registry).splitlines()
                   if not l.startswith("#")]
        assert line == ('odd_total{path="C:\\\\tmp\\\\\\"x\\"\\nnext"} 1')

    def test_escaped_exposition_stays_single_line_per_sample(self):
        registry = make_registry()
        registry.gauge("g", note="a\nb\nc").set(1.0)
        body = to_prometheus(registry)
        assert len(body.strip().splitlines()) == 2  # TYPE header + sample
        assert '\\n' in body

    def test_plain_labels_are_untouched(self):
        registry = make_registry()
        registry.counter("serve.requests", scheme="pmod").inc(3)
        assert 'scheme="pmod"' in to_prometheus(registry)


class TestHistogramWindowEviction:
    def test_window_drops_oldest_at_boundary(self):
        registry = make_registry()
        histogram = registry.histogram("h", window=4)
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        assert histogram.window_values() == [1.0, 2.0, 3.0, 4.0]
        histogram.observe(5.0)  # boundary crossed: 1.0 evicted
        assert histogram.window_values() == [2.0, 3.0, 4.0, 5.0]

    def test_lifetime_stats_survive_eviction(self):
        registry = make_registry()
        histogram = registry.histogram("h", window=2)
        for value in (10.0, 1.0, 1.0, 1.0):
            histogram.observe(value)
        # 10.0 left the window but lifetime count/sum/max keep it.
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["sum"] == 13.0
        assert summary["max"] == 10.0
        # Percentiles are windowed: the outlier no longer skews them.
        assert histogram.percentile(99) == 1.0

    def test_prometheus_summary_reflects_window_and_lifetime(self):
        registry = make_registry()
        histogram = registry.histogram("lat", window=2)
        for value in (5.0, 0.1, 0.2):
            histogram.observe(value)
        body = to_prometheus(registry)
        assert 'lat{quantile=0.99} 0.2' in body.replace('"', "")
        assert "lat_count 3" in body
        assert "lat_sum 5.3" in body

    def test_empty_histogram_serializes_nan_free(self):
        registry = make_registry()
        registry.histogram("empty")
        snapshot = metrics_snapshot(registry)
        (row,) = snapshot["metrics"]["histograms"]
        assert row["count"] == 0
        assert row["mean"] is None  # NaN became null-safe None
        validate_snapshot(snapshot)
        body = to_prometheus(registry)
        assert "NaN" in body  # exposition format spells it out instead

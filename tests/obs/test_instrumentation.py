"""The instrumented layers actually report: engine cache, store, driver."""

import numpy as np
import pytest

from repro.engine import ResultCache, RunConfig, SimulationKey, SimulationEngine
from repro.obs import MetricsRegistry, enable_observability, get_registry
from repro.store import ShardedStore, make_traffic, replay


def _key(tag="w"):
    return SimulationKey(workload=tag, scheme="pmod", scale=1.0, seed=0,
                         skew_replacement="enru", machine="fingerprint")


class TestResultCacheCounters:
    def test_corrupt_entry_counts_and_warns(self, tmp_path):
        enable_observability()
        cache = ResultCache(tmp_path)
        path = cache._path(_key(), ".json")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{ this is not json")
        with pytest.warns(RuntimeWarning, match="corrupt entry"):
            assert cache.get(_key()) is None
        assert cache.corrupt == 1
        assert not path.exists()  # discarded
        counters = {c.name: c.value for c in get_registry().counters()}
        assert counters["engine.cache.corrupt"] == 1
        assert counters["engine.cache.misses"] == 1

    def test_corrupt_npz_counts(self, tmp_path):
        enable_observability()
        cache = ResultCache(tmp_path)
        path = cache._path(_key(), ".npz")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"PK\x03\x04 truncated")
        with pytest.warns(RuntimeWarning, match="corrupt entry"):
            assert cache.get_arrays(_key()) is None
        assert cache.corrupt == 1

    def test_hit_miss_write_mirrored_to_registry(self, tmp_path):
        enable_observability()
        cache = ResultCache(tmp_path)
        key = _key()
        assert cache.get_payload(key) is None  # miss
        cache.put_payload(key, {"x": 1})       # write
        assert cache.get_payload(key) == {"x": 1}  # hit
        counters = {c.name: c.value for c in get_registry().counters()}
        assert counters["engine.cache.misses"] == 1
        assert counters["engine.cache.writes"] == 1
        assert counters["engine.cache.hits"] == 1
        assert cache.corrupt == 0

    def test_plain_miss_is_not_corruption(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(_key()) is None
        assert cache.corrupt == 0


class TestEngineSpans:
    def test_simulation_records_spans_and_counters(self):
        _, tracer = enable_observability()
        engine = SimulationEngine(config=RunConfig(scale=0.05, seed=0))
        engine.result("tree", "pmod")
        counters = {c.name: c.value for c in get_registry().counters()}
        assert counters["engine.sim.runs"] == 1
        assert counters["engine.trace.builds"] == 1
        names = [row["name"] for row in tracer.flat()]
        assert "simulate" in names
        assert "materialize" in names


class TestStoreInstruments:
    def test_per_shard_latency_and_occupancy_series(self):
        registry = MetricsRegistry()
        store = ShardedStore(n_shards=8, scheme="pmod", shard_capacity=64,
                             registry=registry)
        for i in range(200):
            store.put(i, i)
        for i in range(200):
            store.get(i)
        op_latency = {
            h.labels["op"]: h for h in registry.histograms()
            if h.name == "store.op.latency_s"
        }
        assert op_latency["get"].count == 200
        assert op_latency["put"].count == 200
        shard_latency = [h for h in registry.histograms()
                         if h.name == "store.shard.latency_s"]
        assert sum(h.count for h in shard_latency) == 400
        occupancy = [g for g in registry.gauges()
                     if g.name == "store.shard.occupancy"]
        assert sum(g.value for g in occupancy) == len(store)
        requests = [c for c in registry.counters()
                    if c.name == "store.requests"]
        assert requests[0].value == 400

    def test_telemetry_publishes_quality_gauges(self):
        registry = MetricsRegistry()
        store = ShardedStore(n_shards=8, scheme="pmod", shard_capacity=64,
                             registry=registry)
        for i in range(100):
            store.put(i, i)
        telemetry = store.telemetry()
        gauges = {g.name: g.value for g in registry.gauges()
                  if g.labels.get("scheme") == "pmod"}
        assert gauges["store.balance"] == pytest.approx(telemetry.balance)
        assert gauges["store.concentration"] == pytest.approx(
            telemetry.concentration)
        assert gauges["store.tail_load"] == pytest.approx(
            telemetry.tail_load)

    def test_disabled_registry_store_is_unobserved(self):
        registry = MetricsRegistry(enabled=False)
        store = ShardedStore(n_shards=8, scheme="pmod", shard_capacity=64,
                             registry=registry)
        for i in range(50):
            store.put(i, i)
        store.telemetry()
        assert len(registry) == 0


class TestDriverChunkTimes:
    def test_chunk_wall_times_per_worker(self):
        store = ShardedStore(n_shards=16, scheme="pmod", shard_capacity=64)
        requests = make_traffic("zipfian", 2000, seed=0)
        report = replay(store, requests, workers=4)
        assert len(report.chunk_wall_s) == 4
        assert all(t > 0 for t in report.chunk_wall_s)
        assert report.chunk_skew >= 1.0
        payload = report.as_dict()
        assert payload["chunk_wall_s"] == report.chunk_wall_s
        assert payload["chunk_skew"] == pytest.approx(report.chunk_skew)

    def test_serial_replay_is_one_chunk(self):
        store = ShardedStore(n_shards=16, scheme="pmod", shard_capacity=64)
        report = replay(store, make_traffic("zipfian", 500, seed=0),
                        workers=1)
        assert len(report.chunk_wall_s) == 1
        assert report.chunk_skew == pytest.approx(1.0)

    def test_chunk_histogram_lands_on_registry(self):
        enable_observability()
        store = ShardedStore(n_shards=16, scheme="pmod", shard_capacity=64)
        replay(store, make_traffic("zipfian", 1000, seed=0), workers=4)
        # the unlabeled series pre-declared at enable stays at zero;
        # the scheme-labeled series carries the four chunk times
        chunk_hist = [h for h in get_registry().histograms()
                      if h.name == "store.replay.chunk_s"]
        assert chunk_hist
        assert sum(h.count for h in chunk_hist) == 4
        labeled = [h for h in chunk_hist if h.labels.get("scheme") == "pmod"]
        assert labeled and labeled[0].count == 4


class TestFastsimOffPath:
    def test_disabled_registry_adds_nothing(self):
        from repro.cache.fastsim import simulate_misses
        from repro.hashing import PrimeModuloIndexing

        blocks = np.arange(1000, dtype=np.uint64)
        result = simulate_misses(PrimeModuloIndexing(64), blocks, 4)
        assert result.accesses == 1000
        assert len(get_registry()) == 0

    def test_enabled_registry_observes_call(self):
        from repro.cache.fastsim import simulate_misses
        from repro.hashing import PrimeModuloIndexing

        enable_observability()
        blocks = np.arange(1000, dtype=np.uint64)
        simulate_misses(PrimeModuloIndexing(64), blocks, 4)
        counters = {c.name: c.value for c in get_registry().counters()}
        assert counters["fastsim.calls"] == 1
        wall = [h for h in get_registry().histograms()
                if h.name == "fastsim.wall_s"]
        assert wall[0].count == 1

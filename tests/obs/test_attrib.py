"""The attribution layer: trace contexts, the critical-path analyzer,
the flight recorder's bounded rings, heavy hitters, and the histogram
exemplars that link tail quantiles to concrete traces."""

import json
import threading

import pytest

from repro.obs import (
    Journal,
    enable_observability,
    get_journal,
    get_registry,
    set_journal,
)
from repro.obs.attrib import (
    CriticalPathAnalyzer,
    FlightRecorder,
    HeavyHitterTracker,
    Stage,
    Trace,
    TraceCollector,
    TraceContext,
    activate,
    current_trace,
)


def synthetic_trace(trace_id, wall_s, status="ok",
                    stage_fracs=(("queue", 0.6), ("store", 0.4))):
    """A finished trace whose stages tile ``wall_s`` by the given
    fractions (coverage = sum of fractions)."""
    stages, t = [], 0.0
    for name, frac in stage_fracs:
        stages.append(Stage(name=name, start_s=t,
                            duration_s=wall_s * frac))
        t += wall_s * frac
    return Trace(trace_id=trace_id, op="get", scheme="pmod",
                 status=status, start_s=0.0, wall_s=wall_s,
                 stages=tuple(stages))


class TestTraceContext:
    def test_stage_start_is_relative_to_trace_start(self):
        ctx = TraceContext("get", scheme="pmod")
        assert ctx.stage("queue", ctx.start_s + 0.010, 0.005, depth=3)
        trace = ctx.finish(wall_s=0.020)
        assert trace.stages[0].start_s == pytest.approx(0.010)
        assert trace.stages[0].duration_s == pytest.approx(0.005)
        assert trace.stages[0].detail == {"depth": 3}

    def test_finish_rejects_late_stage_appends(self):
        """A timed-out request's abandoned work item finishing later
        must not append to (and double-count in) the frozen trace."""
        ctx = TraceContext("get")
        ctx.stage("queue", ctx.start_s, 0.001)
        trace = ctx.finish(status="timeout", wall_s=0.002)
        assert ctx.stage("store", ctx.start_s, 0.5) is False
        assert [s.name for s in trace.stages] == ["queue"]
        # a second finish sees the same frozen stages
        assert [s.name for s in ctx.finish().stages] == ["queue"]

    def test_negative_durations_clamp_to_zero(self):
        ctx = TraceContext("get")
        ctx.stage("queue", ctx.start_s, -0.5)
        assert ctx.finish(wall_s=0.0).stages[0].duration_s == 0.0

    def test_activate_scopes_the_current_trace(self):
        assert current_trace() is None
        ctx = TraceContext("get")
        with activate(ctx):
            assert current_trace() is ctx
        assert current_trace() is None

    def test_activation_does_not_leak_across_threads(self):
        ctx = TraceContext("get")
        seen = []
        with activate(ctx):
            worker = threading.Thread(
                target=lambda: seen.append(current_trace()))
            worker.start()
            worker.join()
        assert seen == [None]


class TestCriticalPathAnalyzer:
    def test_decompose_shares_and_coverage(self):
        traces = [synthetic_trace(f"t{i}", 0.010) for i in range(10)]
        out = CriticalPathAnalyzer(traces).decompose()
        assert out["n_traces"] == 10
        assert out["coverage"] == pytest.approx(1.0)
        assert out["stages"]["queue"]["share"] == pytest.approx(0.6)
        assert out["stages"]["store"]["share"] == pytest.approx(0.4)

    def test_percentile_traces_are_concrete(self):
        """The p99 row names the actual slowest-rank trace, not an
        interpolated abstraction."""
        traces = [synthetic_trace(f"t{i:03d}", 0.001 * (i + 1))
                  for i in range(100)]
        out = CriticalPathAnalyzer(traces).decompose()
        p99 = out["percentiles"]["p99"]
        assert p99["trace_id"] in {"t098", "t099"}  # nearest-rank tail
        assert p99["wall_s"] >= 0.099
        assert out["percentiles"]["p50"]["wall_s"] < p99["wall_s"]

    def test_partial_stage_coverage_is_reported(self):
        traces = [synthetic_trace("t0", 0.010,
                                  stage_fracs=(("queue", 0.5),))]
        out = CriticalPathAnalyzer(traces).decompose()
        assert out["coverage"] == pytest.approx(0.5)


class TestFlightRecorderOverflow:
    def test_slow_ring_keeps_the_slowest_in_order(self):
        """Overflow ordering: with capacity 4 and 10 recorded traces,
        exactly the 4 largest walls survive, slowest first."""
        recorder = FlightRecorder(slow_capacity=4)
        for i in range(10):
            recorder.record(synthetic_trace(f"t{i}", 0.001 * (i + 1)))
        assert recorder.recorded == 10
        assert [t.trace_id for t in recorder.slowest()] == \
            ["t9", "t8", "t7", "t6"]

    def test_slow_ring_breaks_wall_ties_by_arrival(self):
        recorder = FlightRecorder(slow_capacity=2)
        for i in range(4):
            recorder.record(synthetic_trace(f"t{i}", 0.005))
        survivors = [t.trace_id for t in recorder.slowest()]
        assert survivors == ["t0", "t1"]  # equal walls never displace

    def test_error_ring_evicts_oldest_first(self):
        recorder = FlightRecorder(error_capacity=3)
        for i in range(5):
            recorder.record(synthetic_trace(f"t{i}", 0.001,
                                            status="timeout"))
        assert [t.trace_id for t in recorder.errors()] == \
            ["t2", "t3", "t4"]

    def test_dump_journals_the_slowest_waterfall(self, tmp_path):
        enable_observability()
        set_journal(Journal())
        recorder = FlightRecorder()
        recorder.record(synthetic_trace("slow", 0.050))
        recorder.record(synthetic_trace("bad", 0.001, status="error"))
        path = tmp_path / "flight.jsonl"
        summary = recorder.dump(path, reason="slo:test:fast")

        assert summary["n_slow"] == 2 and summary["n_error"] == 1
        assert summary["n_traces"] == 2  # the error trace dedups
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert {row["trace_id"] for row in lines} == {"slow", "bad"}
        events = get_journal().find("obs.flight_dump")
        assert len(events) == 1
        slowest = events[0].fields["slowest"]
        assert slowest["trace_id"] == "slow"
        assert slowest["stages"]  # a complete waterfall rides along
        assert get_registry().counter("obs.flight_dumps").value == 1


class TestHeavyHitters:
    def test_top_orders_by_count_with_error_bounds(self):
        tracker = HeavyHitterTracker(k=2)
        for _ in range(5):
            tracker.offer("hot", where=3)
        tracker.offer("warm", where=1)
        tracker.offer("new", where=2)  # evicts "warm", inherits floor 1
        rows = tracker.top()
        assert rows[0] == {"key": "hot", "count": 5, "error": 0,
                           "where": 3}
        assert rows[1] == {"key": "new", "count": 2, "error": 1,
                           "where": 2}
        assert rows[1]["count"] - rows[1]["error"] == 1  # true lower bound

    def test_capacity_is_bounded(self):
        tracker = HeavyHitterTracker(k=4)
        for i in range(100):
            tracker.offer(f"k{i}")
        assert len(tracker) == 4
        assert tracker.offered == 100


class TestHistogramExemplars:
    def test_exemplar_evicts_with_its_observation(self):
        """Retention sync: an exemplar must leave the moment its
        observation ages out of the bounded window — a p99 link to a
        trace that no longer backs the quantile would lie."""
        enable_observability()
        set_journal(Journal())
        hist = get_registry().histogram("attrib.test.latency_s", window=4)
        hist.observe(0.9, exemplar="t-slowest")
        for i in range(4):  # four more observations: t-slowest ages out
            hist.observe(0.1 * (i + 1), exemplar=f"t{i}")
        retained = {row["trace_id"] for row in hist.exemplars(n=10)}
        assert "t-slowest" not in retained
        assert retained == {"t0", "t1", "t2", "t3"}
        assert hist.exemplar_drops == 1

    def test_exemplars_rank_heaviest_first(self):
        enable_observability()
        hist = get_registry().histogram("attrib.test.rank_s", window=8)
        for i, value in enumerate([0.2, 0.9, 0.1]):
            hist.observe(value, exemplar=f"t{i}")
        hist.observe(0.5)  # no exemplar: must not surface as None
        top = hist.exemplars(n=2)
        assert [row["trace_id"] for row in top] == ["t1", "t0"]
        assert top[0] == {"value": 0.9, "trace_id": "t1"}

    def test_drop_event_is_edge_triggered(self):
        enable_observability()
        set_journal(Journal())
        hist = get_registry().histogram("attrib.test.drop_s", window=2)
        for i in range(6):
            hist.observe(float(i), exemplar=f"t{i}")
        assert hist.exemplar_drops == 4
        assert len(get_journal().find("obs.exemplar_drop")) == 1


class TestTraceCollector:
    def test_disabled_begin_returns_none(self):
        collector = TraceCollector(enabled=False)
        assert collector.begin("get") is None
        assert collector.finish(None) is None
        assert len(collector) == 0

    def test_finish_lands_in_traces_and_flight(self):
        collector = TraceCollector(enabled=True)
        ctx = collector.begin("get", scheme="pmod")
        ctx.stage("store", ctx.start_s, 0.001)
        trace = collector.finish(ctx, status="timeout", wall_s=0.002)
        assert collector.traces(op="get") == [trace]
        assert collector.flight.errors() == [trace]
        analysis = collector.analyze(scheme="pmod")
        assert analysis["n_traces"] == 1
        assert analysis["coverage"] == pytest.approx(0.5)

    def test_clear_resets_flight_too(self):
        collector = TraceCollector(enabled=True)
        collector.finish(collector.begin("get"))
        collector.clear()
        assert len(collector) == 0
        assert collector.flight.recorded == 0

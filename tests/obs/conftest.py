"""Keep the process-wide observability state out of other tests."""

import pytest

from repro.obs import (
    Journal,
    disable_observability,
    get_journal,
    get_registry,
    get_tracer,
    set_journal,
    validate_event,
)


@pytest.fixture(autouse=True)
def _isolate_global_observability():
    """Every obs test leaves the global registry/tracer off and empty,
    and the global journal replaced by a fresh disabled one (a test may
    have installed its own via set_journal/enable_journal).

    Before the reset, every event the test left in the process-wide
    journal is validated strictly (``require_known_kind=True``): an
    emitter using an unregistered kind fails the suite here rather
    than silently growing the vocabulary.
    """
    yield
    events = [event.as_dict() for event in get_journal().tail()]
    disable_observability()
    get_registry().clear()
    get_tracer().clear()
    set_journal(Journal(enabled=False))
    for event in events:  # after the reset, so one failure can't cascade
        validate_event(event, require_known_kind=True)

"""Keep the process-wide observability state out of other tests."""

import pytest

from repro.obs import disable_observability, get_registry, get_tracer


@pytest.fixture(autouse=True)
def _isolate_global_observability():
    """Every obs test leaves the global registry/tracer off and empty."""
    yield
    disable_observability()
    get_registry().clear()
    get_tracer().clear()

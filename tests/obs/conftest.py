"""Keep the process-wide observability state out of other tests."""

import pytest

from repro.obs import (
    Journal,
    disable_observability,
    get_registry,
    get_tracer,
    set_journal,
)


@pytest.fixture(autouse=True)
def _isolate_global_observability():
    """Every obs test leaves the global registry/tracer off and empty,
    and the global journal replaced by a fresh disabled one (a test may
    have installed its own via set_journal/enable_journal)."""
    yield
    disable_observability()
    get_registry().clear()
    get_tracer().clear()
    set_journal(Journal(enabled=False))

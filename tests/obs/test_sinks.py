"""Sink round-trips: JSON snapshot, Prometheus text, rendered tables."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    SNAPSHOT_SCHEMA_VERSION,
    SpanTracer,
    metrics_snapshot,
    metrics_table,
    to_prometheus,
    validate_snapshot,
    write_snapshot,
)


def _populated():
    registry = MetricsRegistry()
    registry.counter("engine.cache.hits").inc(7)
    registry.counter("store.requests", scheme="pmod").inc(100)
    registry.gauge("store.balance", scheme="pmod").set(1.02)
    histogram = registry.histogram("store.op.latency_s", op="get")
    for value in (0.001, 0.002, 0.004):
        histogram.observe(value)
    tracer = SpanTracer()
    with tracer.span("experiment", experiment="demo"):
        with tracer.span("replay", scheme="pmod"):
            pass
    return registry, tracer


class TestJsonSnapshot:
    def test_snapshot_validates(self):
        registry, tracer = _populated()
        snapshot = metrics_snapshot(registry, tracer)
        validate_snapshot(snapshot)
        assert snapshot["schema_version"] == SNAPSHOT_SCHEMA_VERSION
        assert snapshot["generated_unix_s"] > 0

    def test_file_round_trip(self, tmp_path):
        registry, tracer = _populated()
        path = write_snapshot(tmp_path / "m.json", registry, tracer)
        loaded = json.loads(path.read_text())
        validate_snapshot(loaded)
        counters = {c["name"]: c["value"]
                    for c in loaded["metrics"]["counters"]}
        assert counters["engine.cache.hits"] == 7
        assert [s["name"] for s in loaded["spans"]] == ["experiment",
                                                        "replay"]

    def test_nan_serializes_as_null(self, tmp_path):
        registry = MetricsRegistry()
        registry.histogram("empty")  # NaN percentiles
        registry.gauge("idle.balance").set(float("nan"))
        path = write_snapshot(tmp_path / "m.json", registry)
        loaded = json.loads(path.read_text())  # strict JSON must parse
        assert loaded["metrics"]["histograms"][0]["p50"] is None
        assert loaded["metrics"]["gauges"][0]["value"] is None

    def test_validate_rejects_missing_keys(self):
        with pytest.raises(ValueError, match="missing keys"):
            validate_snapshot({"schema_version": SNAPSHOT_SCHEMA_VERSION})

    def test_validate_rejects_wrong_version(self):
        registry, tracer = _populated()
        snapshot = metrics_snapshot(registry, tracer)
        snapshot["schema_version"] = 999
        with pytest.raises(ValueError, match="schema v999"):
            validate_snapshot(snapshot)

    def test_validate_rejects_malformed_histogram(self):
        registry, tracer = _populated()
        snapshot = metrics_snapshot(registry, tracer)
        del snapshot["metrics"]["histograms"][0]["p95"]
        with pytest.raises(ValueError, match="missing fields"):
            validate_snapshot(snapshot)


class TestPrometheus:
    def test_exposition_format(self):
        registry, _ = _populated()
        text = to_prometheus(registry)
        assert "# TYPE engine_cache_hits_total counter" in text
        assert "engine_cache_hits_total 7" in text
        assert 'store_requests_total{scheme="pmod"} 100' in text
        assert "# TYPE store_balance gauge" in text
        assert "# TYPE store_op_latency_s summary" in text
        assert 'store_op_latency_s{op="get",quantile="0.5"} 0.002' in text
        assert 'store_op_latency_s_count{op="get"} 3' in text
        assert text.endswith("\n")

    def test_names_sanitized_to_prometheus_charset(self):
        registry = MetricsRegistry()
        registry.counter("weird-name.with.dots").inc()
        text = to_prometheus(registry)
        assert "weird_name_with_dots_total 1" in text

    def test_empty_registry(self):
        assert to_prometheus(MetricsRegistry()) == ""


class TestTables:
    def test_tables_render_all_kinds(self):
        registry, _ = _populated()
        text = metrics_table(registry)
        assert "engine.cache.hits" in text
        assert "scheme=pmod" in text
        assert "store.op.latency_s" in text
        assert "p95" in text

    def test_empty_registry_message(self):
        assert metrics_table(MetricsRegistry()) == "(no metrics recorded)"

"""Mergeable quantile sketches: accuracy, exact merge, registry parity."""

import json
import math

import numpy as np
import pytest

from repro.obs import declare_core_metrics
from repro.obs.registry import Histogram, MetricsRegistry, SketchHistogram
from repro.obs.sketch import DEFAULT_RELATIVE_ACCURACY, QuantileSketch


def _lognormal(n, seed=0):
    return np.random.default_rng(seed).lognormal(mean=-9.0, sigma=0.6,
                                                 size=n)


def _exact_percentile(values, p):
    return float(np.percentile(np.asarray(values, dtype=float), p))


class TestAccuracy:
    @pytest.mark.parametrize("p", [50, 90, 95, 99])
    def test_relative_error_within_guarantee(self, p):
        values = _lognormal(20000)
        sketch = QuantileSketch()
        for v in values:
            sketch.add(v)
        exact = _exact_percentile(values, p)
        got = sketch.percentile(p)
        # The drill's budget is 2%; the sketch is built at 1%.
        assert abs(got - exact) / exact <= 0.02

    def test_accuracy_holds_on_heavy_tail(self):
        rng = np.random.default_rng(7)
        values = rng.pareto(1.5, size=20000) + 1e-6
        sketch = QuantileSketch()
        for v in values:
            sketch.add(v)
        for p in (50, 99):
            exact = _exact_percentile(values, p)
            assert abs(sketch.percentile(p) - exact) / exact <= 0.02

    def test_min_max_count_total_are_exact(self):
        values = [3.0, 1.0, 4.0, 1.5, 9.0]
        sketch = QuantileSketch()
        for v in values:
            sketch.add(v)
        assert sketch.count == len(sketch) == 5
        assert sketch.min == 1.0
        assert sketch.max == 9.0
        assert sketch.total == pytest.approx(sum(values))

    def test_count_above_threshold(self):
        sketch = QuantileSketch()
        for v in [0.001] * 90 + [0.5] * 10:
            sketch.add(v)
        above = sketch.count_above(0.01)
        assert 9 <= above <= 11  # within one bucket of exact


class TestMerge:
    def test_merge_is_exact_vs_single_stream(self):
        values = _lognormal(10000, seed=3)
        whole = QuantileSketch()
        left, right = QuantileSketch(), QuantileSketch()
        for i, v in enumerate(values):
            whole.add(v)
            (left if i % 2 else right).add(v)
        merged = QuantileSketch.merged([left, right])
        for p in (50, 95, 99):
            assert merged.percentile(p) == whole.percentile(p)
        assert merged.count == whole.count
        assert merged.total == pytest.approx(whole.total)

    def test_merge_in_place_returns_self(self):
        a, b = QuantileSketch(), QuantileSketch()
        a.add(1.0)
        b.add(2.0)
        assert a.merge(b) is a
        assert a.count == 2

    def test_merge_rejects_mismatched_accuracy(self):
        a = QuantileSketch(relative_accuracy=0.01)
        b = QuantileSketch(relative_accuracy=0.05)
        with pytest.raises(ValueError, match="accuracy"):
            a.merge(b)

    def test_merged_of_empty_list_is_empty_sketch(self):
        merged = QuantileSketch.merged([])
        assert len(merged) == 0
        assert math.isnan(merged.quantile(0.5))


class TestTransport:
    def test_dict_round_trip_is_lossless(self):
        sketch = QuantileSketch()
        for v in _lognormal(5000, seed=5):
            sketch.add(v)
        sketch.add(0.0)  # exercise the zero bucket
        clone = QuantileSketch.from_dict(
            json.loads(json.dumps(sketch.as_dict())))
        for p in (50, 95, 99):
            assert clone.percentile(p) == sketch.percentile(p)
        assert clone.count == sketch.count
        assert clone.min == sketch.min
        assert clone.max == sketch.max

    def test_empty_round_trip(self):
        clone = QuantileSketch.from_dict(QuantileSketch().as_dict())
        assert len(clone) == 0
        assert clone.min is None or math.isnan(clone.quantile(0.5))

    def test_reconstruct_matches_distribution(self):
        sketch = QuantileSketch()
        values = _lognormal(4000, seed=9)
        for v in values:
            sketch.add(v)
        rebuilt = sketch.reconstruct()
        assert len(rebuilt) == len(values)
        exact = _exact_percentile(values, 99)
        assert abs(_exact_percentile(rebuilt, 99) - exact) / exact <= 0.03


class TestEdges:
    def test_empty_quantile_is_nan(self):
        assert math.isnan(QuantileSketch().quantile(0.99))

    def test_zero_and_negative_land_in_zero_bucket(self):
        sketch = QuantileSketch()
        sketch.add(0.0)
        sketch.add(-1.0)
        sketch.add(1.0)
        assert sketch.quantile(0.0) == 0.0
        assert sketch.count == 3

    def test_single_value(self):
        sketch = QuantileSketch()
        sketch.add(0.125)
        got = sketch.quantile(0.5)
        assert abs(got - 0.125) / 0.125 <= DEFAULT_RELATIVE_ACCURACY


class TestSketchHistogramParity:
    """The registry's sketch=True path vs the windowed histogram."""

    def test_histogram_requires_sketch_flag(self):
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram("h", sketch=True)
        assert isinstance(hist, SketchHistogram)
        assert hist.kind == "histogram"
        # A plain request on the same series returns the sketch one.
        assert registry.histogram("h") is hist

    def test_plain_then_sketch_is_a_kind_conflict(self):
        registry = MetricsRegistry(enabled=True)
        registry.histogram("h")
        with pytest.raises(TypeError, match="already registered"):
            registry.histogram("h", sketch=True)

    def test_single_node_parity_with_windowed_histogram(self):
        registry = MetricsRegistry(enabled=True)
        plain = registry.histogram("plain")
        sketched = registry.histogram("sketched", sketch=True)
        values = _lognormal(2000, seed=11)
        for v in values:
            plain.observe(v)
            sketched.observe(v)
        for p in (50, 95, 99):
            windowed = plain.percentile(p)
            assert (abs(sketched.sketch.percentile(p) - windowed)
                    / windowed <= 0.02)
        assert sketched.count == plain.count == len(values)

    def test_snapshot_row_carries_sketch_payload(self):
        registry = MetricsRegistry(enabled=True)
        sketched = registry.histogram("s", sketch=True)
        sketched.observe(0.01)
        row = sketched.as_dict()
        assert "sketch" in row
        clone = QuantileSketch.from_dict(row["sketch"])
        assert clone.count == 1

    def test_declared_sketch_metrics_exist(self):
        registry = MetricsRegistry(enabled=True)
        declare_core_metrics(registry)
        (series,) = registry.matching("cluster.node.request_latency_s")
        assert isinstance(series, SketchHistogram)


class TestWindowBoundaryContinuity:
    """Quantiles must not jump across a window eviction (satellite:
    interleave observations across exactly one eviction and hold p99
    continuous for both the windowed and the sketch path)."""

    def test_p99_continuous_across_one_eviction(self):
        window = 256
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram("lat", sketch=True, window=window)
        values = _lognormal(window + 8, seed=13)
        for v in values[:window]:
            hist.observe(v)
        assert len(hist.window_values()) == window
        prev_window_p99 = hist.percentile(99)
        prev_sketch_p99 = hist.sketch.percentile(99)
        # Cross the boundary one observation at a time: each step
        # evicts exactly one value, so both views see a 1-element
        # perturbation of a stationary stream.
        for v in values[window:]:
            hist.observe(v)
            assert len(hist.window_values()) == window  # one in, one out
            window_p99 = hist.percentile(99)
            sketch_p99 = hist.sketch.percentile(99)
            assert (abs(window_p99 - prev_window_p99)
                    / prev_window_p99 <= 0.25)
            assert (abs(sketch_p99 - prev_sketch_p99)
                    / prev_sketch_p99 <= 0.05)
            prev_window_p99, prev_sketch_p99 = window_p99, sketch_p99

    def test_sketch_keeps_evicted_tail_the_window_forgets(self):
        window = 64
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram("lat", sketch=True, window=window)
        hist.observe(10.0)  # a spike the window will forget
        for _ in range(window):
            hist.observe(0.001)
        assert hist.percentile(100) == 0.001  # windowed view forgot
        assert hist.sketch.max == 10.0  # lifetime sketch remembers
        assert hist.max == 10.0

"""The append-only event journal: ordering, schema, rotation, replay."""

import json
import threading

import pytest

from repro.obs import (
    EVENT_SCHEMA_VERSION,
    Journal,
    disable_journal,
    enable_journal,
    enable_observability,
    get_journal,
    get_registry,
    set_journal,
    validate_event,
)
from repro.obs.journal import EVENT_REQUIRED_KEYS, replay


class TestEmit:
    def test_seq_is_monotonic_and_dense(self):
        journal = Journal()
        events = [journal.emit("a"), journal.emit("b"), journal.emit("a")]
        assert [e.seq for e in events] == [0, 1, 2]
        assert journal.events == 3

    def test_two_clocks(self):
        journal = Journal()
        first = journal.emit("tick")
        second = journal.emit("tick")
        assert second.mono_s >= first.mono_s >= 0.0
        assert first.ts_unix_s > 0

    def test_fields_ride_along(self):
        event = Journal().emit("serve.timeout", op="get", retries=2)
        assert event.fields == {"op": "get", "retries": 2}
        assert event.as_dict()["fields"] == {"op": "get", "retries": 2}

    def test_disabled_emit_is_noop(self):
        journal = Journal(enabled=False)
        assert journal.emit("anything") is None
        assert journal.events == 0
        assert journal.tail() == []

    def test_emit_counts_on_registry_when_enabled(self):
        enable_observability()
        journal = Journal()
        journal.emit("x")
        journal.emit("y")
        assert get_registry().counter("journal.events").value == 2

    def test_clear_keeps_seq_rising(self):
        journal = Journal()
        journal.emit("before")
        journal.clear()
        assert journal.tail() == []
        assert journal.emit("after").seq == 1

    def test_thread_safety_unique_seq(self):
        journal = Journal(tail_events=4096)
        def worker():
            for _ in range(200):
                journal.emit("t")
        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        seqs = [e.seq for e in journal.tail()]
        assert len(seqs) == len(set(seqs)) == 800


class TestSchema:
    def test_as_dict_is_valid_and_versioned(self):
        event = Journal().emit("k", a=1).as_dict()
        validate_event(event)  # must not raise
        assert event["schema_version"] == EVENT_SCHEMA_VERSION
        assert set(EVENT_REQUIRED_KEYS) <= set(event)

    @pytest.mark.parametrize("mutate,match", [
        (lambda e: e.pop("seq"), "missing"),
        (lambda e: e.update(schema_version=99), "schema"),
        (lambda e: e.update(seq=-1), "seq"),
        (lambda e: e.update(kind=""), "kind"),
        (lambda e: e.update(fields=[1, 2]), "fields"),
    ])
    def test_validate_rejects_malformed(self, mutate, match):
        event = Journal().emit("k").as_dict()
        mutate(event)
        with pytest.raises(ValueError, match=match):
            validate_event(event)

    def test_known_kind_vocabulary_is_opt_in(self):
        """Default validation accepts ad-hoc kinds; strict mode
        (``require_known_kind``) pins the documented vocabulary."""
        from repro.obs.journal import KNOWN_EVENT_KINDS

        event = Journal().emit("totally.ad_hoc").as_dict()
        validate_event(event)  # lax mode: fine
        with pytest.raises(ValueError, match="vocabulary"):
            validate_event(event, require_known_kind=True)
        for kind in ("cluster.node_down", "cluster.node_up",
                     "cluster.quorum_miss", "cluster.rereplicate",
                     "control.node_quarantine"):
            assert kind in KNOWN_EVENT_KINDS
            known = Journal().emit(kind).as_dict()
            validate_event(known, require_known_kind=True)

    def test_emitted_kinds_stay_in_vocabulary(self):
        """Every kind the cluster tier journals during a drill is part
        of the versioned vocabulary — replaying the drill's journal in
        strict mode must not raise."""
        from repro.cluster import Cluster, ReplicationConfig

        journal = Journal()
        set_journal(journal)
        try:
            cluster = Cluster(
                n_nodes=5, node_scheme="pmod", shard_scheme="pmod",
                shards_per_node=8,
                replication=ReplicationConfig(replicas=2))
            for i in range(32):
                cluster.put(i, i)
            cluster.fail_node(2)
            cluster.recover_node(2)
        finally:
            disable_journal()
        kinds = {e.kind for e in journal.tail()}
        assert {"cluster.node_down", "cluster.node_up",
                "cluster.rereplicate"} <= kinds
        for event in journal.tail():
            validate_event(event.as_dict(), require_known_kind=True)

    def test_unserializable_fields_are_stringified(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path=path)
        journal.emit("odd", obj=object())
        (line,) = path.read_text().splitlines()
        decoded = json.loads(line)
        assert "object object" in decoded["fields"]["obj"]


class TestTailAndFind:
    def test_tail_is_bounded(self):
        journal = Journal(tail_events=3)
        for i in range(5):
            journal.emit("k", i=i)
        assert [e.fields["i"] for e in journal.tail()] == [2, 3, 4]
        assert [e.fields["i"] for e in journal.tail(2)] == [3, 4]

    def test_find_matches_exact_and_dotted_prefix(self):
        journal = Journal()
        journal.emit("serve.fault.stall")
        journal.emit("serve.faulty")  # not a dotted child of serve.fault
        journal.emit("serve.fault.delay")
        kinds = [e.kind for e in journal.find("serve.fault")]
        assert kinds == ["serve.fault.stall", "serve.fault.delay"]
        assert [e.kind for e in journal.find("serve.fault.stall")] == [
            "serve.fault.stall"]


class TestSinkAndRotation:
    def test_jsonl_lines_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        journal = Journal(path=path)
        journal.emit("one", n=1)
        journal.emit("two", n=2)
        events = list(replay(path))
        assert [e["kind"] for e in events] == ["one", "two"]
        assert [e["seq"] for e in events] == [0, 1]

    def test_rotation_bounds_disk_and_keeps_one_backup(self, tmp_path):
        path = tmp_path / "events.jsonl"
        journal = Journal(path=path, max_bytes=300)
        for i in range(40):
            journal.emit("fill", i=i)
        assert journal.rotations >= 1
        assert path.with_name("events.jsonl.1").exists()
        assert path.stat().st_size <= 300

    def test_replay_reads_rotated_segment_first(self, tmp_path):
        path = tmp_path / "events.jsonl"
        journal = Journal(path=path, max_bytes=300)
        for i in range(40):
            journal.emit("fill", i=i)
        seqs = [e["seq"] for e in replay(path)]
        assert seqs == sorted(seqs)
        assert seqs[-1] == 39

    def test_replay_strict_raises_tolerant_skips(self, tmp_path):
        path = tmp_path / "events.jsonl"
        journal = Journal(path=path)
        journal.emit("good")
        with open(path, "a") as stream:
            stream.write("not json\n")
        journal.emit("also-good")
        with pytest.raises(ValueError, match="bad journal line"):
            list(replay(path))
        kinds = [e["kind"] for e in replay(path, strict=False)]
        assert kinds == ["good", "also-good"]

    def test_multi_backup_rotation_keeps_configured_generations(
            self, tmp_path):
        path = tmp_path / "events.jsonl"
        journal = Journal(path=path, max_bytes=300, backups=3)
        for i in range(200):
            journal.emit("fill", i=i)
        assert journal.rotations >= 3
        for n in (1, 2, 3):
            assert path.with_name(f"events.jsonl.{n}").exists()
        assert not path.with_name("events.jsonl.4").exists()

    def test_multi_backup_generations_age_oldest_first(self, tmp_path):
        path = tmp_path / "events.jsonl"
        journal = Journal(path=path, max_bytes=300, backups=2)
        for i in range(200):
            journal.emit("fill", i=i)
        one = [json.loads(line)["seq"] for line in
               path.with_name("events.jsonl.1").read_text().splitlines()]
        two = [json.loads(line)["seq"] for line in
               path.with_name("events.jsonl.2").read_text().splitlines()]
        assert max(two) < min(one)  # .2 is the older generation

    def test_replay_walks_every_backup_oldest_first(self, tmp_path):
        path = tmp_path / "events.jsonl"
        journal = Journal(path=path, max_bytes=300, backups=4)
        for i in range(120):
            journal.emit("fill", i=i)
        seqs = [e["seq"] for e in replay(path)]
        assert seqs == sorted(seqs)
        assert seqs[-1] == 119
        # More history survives than the single-backup default keeps.
        single = Journal(path=tmp_path / "single.jsonl", max_bytes=300)
        for i in range(120):
            single.emit("fill", i=i)
        assert len(seqs) > len(list(replay(tmp_path / "single.jsonl")))

    def test_backups_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="backups"):
            Journal(path=tmp_path / "j.jsonl", backups=0)

    def test_rotation_increments_registry_counter(self, tmp_path):
        enable_observability()
        journal = Journal(path=tmp_path / "j.jsonl", max_bytes=200)
        for i in range(20):
            journal.emit("fill", i=i)
        assert get_registry().counter("journal.rotations").value >= 1


class TestGlobals:
    def test_global_starts_disabled(self):
        assert get_journal().enabled is False

    def test_enable_journal_installs_enabled_instance(self, tmp_path):
        journal = enable_journal(tmp_path / "j.jsonl")
        assert get_journal() is journal
        assert journal.enabled
        journal.emit("experiment.start")
        assert (tmp_path / "j.jsonl").exists()
        disable_journal()
        assert get_journal().enabled is False

    def test_set_journal_returns_previous(self):
        mine = Journal()
        previous = set_journal(mine)
        assert get_journal() is mine
        assert previous is not mine
        set_journal(previous)

"""Pre-declared metric schema: stable snapshots before first traffic."""

from repro.obs import (
    ADVERSARY_METRICS,
    CLUSTER_METRICS,
    CONTROL_METRICS,
    CORE_COUNTERS,
    FED_METRICS,
    HEALTH_METRICS,
    JOURNAL_METRICS,
    SERVE_METRICS,
    STORE_METRICS,
    MetricsRegistry,
    SketchHistogram,
    declare_core_metrics,
    enable_observability,
    get_registry,
)

#: Every declared layer's name -> kind mapping, in one place so the
#: parity tests below cover new layers automatically.
DECLARED_LAYERS = (STORE_METRICS, SERVE_METRICS, JOURNAL_METRICS,
                   HEALTH_METRICS, CONTROL_METRICS, CLUSTER_METRICS,
                   ADVERSARY_METRICS, FED_METRICS)


class TestDeclaredSchema:
    def test_enable_pre_declares_every_layer(self):
        """A snapshot taken before any traffic already carries every
        engine/store/serve/journal/health series name, all at zero —
        consumers can rely on the schema without probing which layers
        ran."""
        enable_observability()
        snapshot = get_registry().snapshot()
        counter_names = {c["name"] for c in snapshot["counters"]}
        gauge_names = {g["name"] for g in snapshot["gauges"]}
        histogram_names = {h["name"] for h in snapshot["histograms"]}
        # Sketch-kind series snapshot under the histogram namespace.
        by_kind = {"counter": counter_names, "gauge": gauge_names,
                   "histogram": histogram_names, "sketch": histogram_names}
        for name in CORE_COUNTERS:
            assert name in counter_names
        for metrics in DECLARED_LAYERS:
            for name, kind in metrics.items():
                assert name in by_kind[kind], f"{name} not pre-declared"

    def test_declaration_parity_with_emitting_code(self):
        """Every ``journal.*`` / ``health.*`` series the journal and
        health layers emit is pre-declared, and vice versa: a cold
        snapshot and a post-drill snapshot expose the same unlabeled
        journal/health names (schema parity, not just a subset)."""
        from repro.obs import Journal, set_journal
        from repro.obs.health import (
            HashQualityDetector,
            SloEngine,
            default_slos,
            strict_bands,
        )

        registry, _ = enable_observability()
        cold = {name for name in _names(registry)
                if name.startswith(("journal.", "health."))}

        journal = Journal()
        set_journal(journal)
        journal.emit("experiment.start")  # a registered probe kind
        engine = SloEngine(default_slos(), registry=registry,
                           journal=journal)
        engine.evaluate()
        detector = HashQualityDetector(strict_bands(8), registry=registry,
                                       journal=journal)
        detector.grade("pmod", balance=1.0, concentration=0.0)
        detector.grade("traditional", balance=99.0, concentration=50.0)

        warm = {name for name in _names(registry)
                if name.startswith(("journal.", "health."))}
        declared = set(JOURNAL_METRICS) | set(HEALTH_METRICS)
        assert cold == declared
        # Warm adds only *labeled* variants of declared names, never a
        # journal./health. name that was not declared cold.
        assert warm == declared

    def test_control_declaration_parity_with_emitting_code(self):
        """Every ``control.*`` series the remediation controller emits
        is pre-declared, and vice versa: a cold snapshot and a snapshot
        taken after a full observe -> decide -> apply step (including a
        quarantine) expose exactly the declared control names."""
        from repro.control import Action, RemediationController
        from repro.obs import Journal, set_journal
        from repro.obs.health import SloEngine, default_slos
        from repro.store import ShardedStore

        registry, _ = enable_observability()
        cold = {name for name in _names(registry)
                if name.startswith("control.")}

        journal = Journal()
        set_journal(journal)
        store = ShardedStore(n_shards=8, scheme="pmod", shard_capacity=64,
                             registry=registry)
        controller = RemediationController(
            store, SloEngine(default_slos(), registry=registry,
                             journal=journal),
            journal=journal, registry=registry)
        controller.step()  # healthy: evaluates, decides nothing
        controller.apply(Action(kind="quarantine", reason="parity probe",
                                detail={"shards": [1]}))

        warm = {name for name in _names(registry)
                if name.startswith("control.")}
        declared = set(CONTROL_METRICS)
        assert cold == declared
        # The controller's counters are all unlabeled, so even a warm
        # registry exposes exactly the declared set — no more, no less.
        assert warm == declared

    def test_cluster_declaration_parity_with_emitting_code(self):
        """Every unlabeled ``cluster.*`` series the cluster tier can
        emit is pre-declared: a cold snapshot carries exactly the
        declared cluster names, and a snapshot taken after a full
        drill (traffic, node kill, recovery drain, telemetry publish)
        adds only *labeled* variants of declared names."""
        from repro.cluster import Cluster, ReplicationConfig
        from repro.obs import Journal, set_journal

        registry, _ = enable_observability()
        cold = {name for name in _names(registry)
                if name.startswith("cluster.")}

        set_journal(Journal())
        cluster = Cluster(n_nodes=5, node_scheme="pmod",
                          shard_scheme="pmod", shards_per_node=8,
                          replication=ReplicationConfig(replicas=2),
                          registry=registry)
        for i in range(64):
            cluster.put(i, i)
        cluster.fail_node(1)
        for i in range(64):
            cluster.get(i)
        cluster.recover_node(1)
        cluster.telemetry()

        warm = {name for name in _names(registry)
                if name.startswith("cluster.")}
        declared = set(CLUSTER_METRICS)
        assert cold == declared
        # Warm adds only labeled variants (per-node state gauges,
        # per-link utilization), never an undeclared cluster. name.
        assert warm == declared

    def test_declared_series_start_at_zero(self):
        registry = MetricsRegistry(enabled=True)
        declare_core_metrics(registry)
        for counter in registry.counters():
            assert counter.value == 0
        for histogram in registry.histograms():
            assert histogram.as_dict()["count"] == 0

    def test_adversary_declaration_parity_with_emitting_code(self):
        """Every ``adversary.*`` series the attack tooling emits is
        pre-declared: a cold snapshot carries exactly the declared
        adversary names, and a full crack + hostile-trace synthesis
        adds only *labeled* variants of declared names."""
        import asyncio

        from repro.adversary import ProbeAdversary, synthesize_hostile_trace
        from repro.obs import Journal, set_journal
        from repro.serve import AdmissionConfig, BatchConfig, Frontend
        from repro.store import ShardedStore

        registry, _ = enable_observability()
        cold = {name for name in _names(registry)
                if name.startswith("adversary.")}

        set_journal(Journal())

        async def drill():
            store = ShardedStore(n_shards=4, scheme="traditional",
                                 shard_capacity=64, registry=registry)
            async with Frontend(
                    store,
                    batch=BatchConfig(max_batch_size=8, max_wait_s=0.001),
                    admission=AdmissionConfig(rate=None,
                                              max_queue_depth=1024),
            ) as frontend:
                adversary = ProbeAdversary(frontend, key_bits=4,
                                           crack_keys=8,
                                           registry=registry)
                return await adversary.crack()

        result = asyncio.run(drill())
        synthesize_hostile_trace(result, 16, registry=registry)

        warm = {name for name in _names(registry)
                if name.startswith("adversary.")}
        declared = set(ADVERSARY_METRICS)
        assert cold == declared
        assert warm == declared

    def test_fed_declaration_parity_with_emitting_code(self):
        """Every ``fed.*`` series the federation plane emits is
        pre-declared: a cold snapshot carries exactly the declared fed
        names, and a full scrape -> merge -> TSDB drill (including a
        forced scrape miss and a retention eviction) adds only
        *labeled* variants of declared names."""
        from repro.cluster import Cluster
        from repro.obs import Journal, set_journal
        from repro.obs.fed import Federation
        from repro.obs.tsdb import TimeSeriesStore

        registry, _ = enable_observability()
        cold = {name for name in _names(registry)
                if name.startswith("fed.")}

        set_journal(Journal())
        cluster = Cluster(n_nodes=5, node_scheme="pmod",
                          shard_scheme="pmod", node_registries=True,
                          registry=registry)
        for i in range(128):
            cluster.put(i, i)
        fed = Federation.for_cluster(cluster, registry=registry)
        fed.collect(cluster.virtual_now_s)
        cluster.fail_node(0)
        fed.collect(cluster.virtual_now_s + 1.0)  # forced scrape miss
        tsdb = TimeSeriesStore(retention_points=4, downsample_ratio=4,
                               registry=registry)
        for t in range(8):  # enough appends to force an eviction
            tsdb.append("probe", float(t), 1.0)

        warm = {name for name in _names(registry)
                if name.startswith("fed.")}
        declared = set(FED_METRICS)
        assert cold == declared
        # Warm adds only labeled per-node staleness gauges, never an
        # undeclared fed. name.
        assert warm == declared
        # The drill exercised every declared counter at least once.
        assert registry.counter("fed.scrapes").value > 0
        assert registry.counter("fed.scrape_misses").value > 0
        assert registry.counter("fed.merges").value == 2
        assert registry.counter("fed.tsdb.appends").value == 8
        assert registry.counter("fed.tsdb.evictions").value > 0

    def test_declared_names_do_not_collide_across_layers(self):
        for i, left in enumerate(DECLARED_LAYERS):
            assert not set(CORE_COUNTERS) & set(left)
            for right in DECLARED_LAYERS[i + 1:]:
                assert not set(left) & set(right)

    def test_kinds_are_valid_registry_factories(self):
        registry = MetricsRegistry(enabled=True)
        for metrics in DECLARED_LAYERS:
            for kind in metrics.values():
                assert kind in ("counter", "gauge", "histogram", "sketch")
                factory = "histogram" if kind == "sketch" else kind
                assert callable(getattr(registry, factory))

    def test_sketch_kind_declares_a_sketch_histogram(self):
        """Series declared with kind ``"sketch"`` must come up as
        mergeable sketch histograms, not plain ones — a plain histogram
        under a sketch name would silently break federation merges."""
        registry = MetricsRegistry(enabled=True)
        declare_core_metrics(registry)
        for layer in DECLARED_LAYERS:
            for name, kind in layer.items():
                if kind != "sketch":
                    continue
                (series,) = registry.matching(name)
                assert isinstance(series, SketchHistogram)


def _names(registry):
    snapshot = registry.snapshot()
    return {row["name"]
            for kind in ("counters", "gauges", "histograms")
            for row in snapshot[kind]}

"""Pre-declared metric schema: stable snapshots before first traffic."""

from repro.obs import (
    CORE_COUNTERS,
    SERVE_METRICS,
    STORE_METRICS,
    MetricsRegistry,
    declare_core_metrics,
    enable_observability,
    get_registry,
)


class TestDeclaredSchema:
    def test_enable_pre_declares_every_layer(self):
        """A snapshot taken before any traffic already carries every
        engine/store/serve series name, all at zero — consumers can
        rely on the schema without probing which layers ran."""
        enable_observability()
        snapshot = get_registry().snapshot()
        counter_names = {c["name"] for c in snapshot["counters"]}
        gauge_names = {g["name"] for g in snapshot["gauges"]}
        histogram_names = {h["name"] for h in snapshot["histograms"]}
        by_kind = {"counter": counter_names, "gauge": gauge_names,
                   "histogram": histogram_names}
        for name in CORE_COUNTERS:
            assert name in counter_names
        for metrics in (STORE_METRICS, SERVE_METRICS):
            for name, kind in metrics.items():
                assert name in by_kind[kind], f"{name} not pre-declared"

    def test_declared_series_start_at_zero(self):
        registry = MetricsRegistry(enabled=True)
        declare_core_metrics(registry)
        for counter in registry.counters():
            assert counter.value == 0
        for histogram in registry.histograms():
            assert histogram.as_dict()["count"] == 0

    def test_declared_names_do_not_collide_across_layers(self):
        assert not set(STORE_METRICS) & set(SERVE_METRICS)
        assert not set(CORE_COUNTERS) & set(STORE_METRICS)
        assert not set(CORE_COUNTERS) & set(SERVE_METRICS)

    def test_kinds_are_valid_registry_factories(self):
        registry = MetricsRegistry(enabled=True)
        for metrics in (STORE_METRICS, SERVE_METRICS):
            for kind in metrics.values():
                assert kind in ("counter", "gauge", "histogram")
                assert callable(getattr(registry, kind))

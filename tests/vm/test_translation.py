"""Tests for virtual memory translation and page allocators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.trace import Trace, TraceMetadata
from repro.vm import (
    ColoringAllocator,
    RandomAllocator,
    SequentialAllocator,
    VirtualMemory,
)


class TestSequentialAllocator:
    def test_first_touch_order(self):
        alloc = SequentialAllocator(10)
        assert [alloc.allocate(v) for v in (7, 3, 9)] == [0, 1, 2]

    def test_exhaustion(self):
        alloc = SequentialAllocator(1)
        alloc.allocate(0)
        with pytest.raises(MemoryError):
            alloc.allocate(1)

    def test_rejects_empty_memory(self):
        with pytest.raises(ValueError):
            SequentialAllocator(0)


class TestRandomAllocator:
    def test_deterministic(self):
        a = RandomAllocator(100, seed=3)
        b = RandomAllocator(100, seed=3)
        assert [a.allocate(i) for i in range(10)] == \
            [b.allocate(i) for i in range(10)]

    def test_no_duplicates(self):
        alloc = RandomAllocator(50, seed=1)
        pages = [alloc.allocate(i) for i in range(50)]
        assert len(set(pages)) == 50

    def test_exhaustion(self):
        alloc = RandomAllocator(2, seed=1)
        alloc.allocate(0)
        alloc.allocate(1)
        with pytest.raises(MemoryError):
            alloc.allocate(2)


class TestColoringAllocator:
    def test_preserves_color(self):
        alloc = ColoringAllocator(1024, color_bits=3)
        for vpn in (0, 5, 13, 21, 8):
            assert alloc.allocate(vpn) % 8 == vpn % 8

    def test_within_color_sequential(self):
        alloc = ColoringAllocator(1024, color_bits=2)
        assert alloc.allocate(0) == 0
        assert alloc.allocate(4) == 4   # same color 0, next slot
        assert alloc.allocate(8) == 8

    def test_per_color_exhaustion(self):
        alloc = ColoringAllocator(4, color_bits=2)  # one page per color
        alloc.allocate(1)
        with pytest.raises(MemoryError):
            alloc.allocate(5)  # same color 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ColoringAllocator(4, color_bits=-1)
        with pytest.raises(ValueError):
            ColoringAllocator(4, color_bits=3)


class TestVirtualMemory:
    def test_offset_preserved(self):
        vm = VirtualMemory(SequentialAllocator(16))
        pa = vm.translate(0x5123)
        assert pa & 0xFFF == 0x123

    def test_same_page_same_frame(self):
        vm = VirtualMemory(SequentialAllocator(16))
        a = vm.translate(0x5000)
        b = vm.translate(0x5FFF)
        assert a >> 12 == b >> 12

    def test_distinct_pages_distinct_frames(self):
        vm = VirtualMemory(RandomAllocator(64, seed=2))
        frames = {vm.translate(v << 12) >> 12 for v in range(20)}
        assert len(frames) == 20

    def test_rejects_negative(self):
        vm = VirtualMemory(SequentialAllocator(4))
        with pytest.raises(ValueError):
            vm.translate(-1)

    def test_mapped_pages_counter(self):
        vm = VirtualMemory(SequentialAllocator(16))
        vm.translate(0)
        vm.translate(4096)
        vm.translate(64)
        assert vm.mapped_pages == 2

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 2**24 - 1), min_size=1, max_size=100))
    def test_translation_is_a_function(self, addrs):
        """Same virtual address always yields the same physical one."""
        vm = VirtualMemory(RandomAllocator(1 << 13, seed=1))
        first = [vm.translate(a) for a in addrs]
        second = [vm.translate(a) for a in addrs]
        assert first == second


class TestTranslateTrace:
    def make_trace(self):
        return Trace(
            "t",
            np.array([0, 64, 4096, 8192, 100], dtype=np.uint64),
            np.zeros(5, dtype=bool),
            TraceMetadata(mlp=2.0),
        )

    def test_matches_scalar_translation(self):
        trace = self.make_trace()
        vm_a = VirtualMemory(RandomAllocator(1024, seed=5))
        vm_b = VirtualMemory(RandomAllocator(1024, seed=5))
        physical = vm_a.translate_trace(trace)
        expected = [vm_b.translate(int(a)) for a in trace.addresses]
        assert physical.addresses.tolist() == expected

    def test_metadata_carried(self):
        physical = VirtualMemory(SequentialAllocator(64)).translate_trace(
            self.make_trace()
        )
        assert physical.meta.mlp == 2.0
        assert physical.name.endswith("@phys")

    def test_sequential_identity_like_for_dense_first_touch(self):
        """A trace touching pages 0,1,2,... in order is unchanged by
        first-touch sequential allocation."""
        trace = Trace("t", np.arange(0, 5 * 4096, 4096, dtype=np.uint64),
                      np.zeros(5, dtype=bool))
        physical = VirtualMemory(SequentialAllocator(16)).translate_trace(trace)
        assert np.array_equal(physical.addresses, trace.addresses)

    def test_page_table_persists_across_traces(self):
        vm = VirtualMemory(SequentialAllocator(64))
        first = vm.translate_trace(self.make_trace())
        second = vm.translate_trace(self.make_trace())
        assert np.array_equal(first.addresses, second.addresses)

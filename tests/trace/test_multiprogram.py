"""Tests for trace interleaving."""

import numpy as np
import pytest

from repro.trace import Trace, TraceMetadata
from repro.trace.multiprogram import interleave_traces


def make(name, n, base=0, ipa=4.0):
    return Trace(
        name,
        base + np.arange(n, dtype=np.uint64) * 64,
        np.zeros(n, dtype=bool),
        TraceMetadata(instructions_per_access=ipa),
    )


class TestInterleave:
    def test_all_accesses_present(self):
        combined = interleave_traces(make("a", 100), make("b", 60), quantum=16)
        assert len(combined) == 160

    def test_second_relocated(self):
        combined = interleave_traces(make("a", 10), make("b", 10), quantum=4,
                                     second_base=1 << 36)
        high = combined.addresses[combined.addresses >= (1 << 36)]
        assert len(high) == 10

    def test_order_preserved_per_program(self):
        combined = interleave_traces(make("a", 50), make("b", 50), quantum=8)
        a_part = combined.addresses[combined.addresses < (1 << 36)]
        assert np.all(np.diff(a_part.astype(np.int64)) > 0)

    def test_quantum_slicing(self):
        combined = interleave_traces(make("a", 8), make("b", 8), quantum=4)
        # First quantum from a, second from b.
        assert np.all(combined.addresses[:4] < (1 << 36))
        assert np.all(combined.addresses[4:8] >= (1 << 36))

    def test_metadata_averaged(self):
        combined = interleave_traces(make("a", 4, ipa=4.0),
                                     make("b", 4, ipa=8.0), quantum=2)
        assert combined.meta.instructions_per_access == 6.0

    def test_name_combines(self):
        assert interleave_traces(make("a", 4), make("b", 4)).name == "a+b"

    def test_validation(self):
        with pytest.raises(ValueError):
            interleave_traces(make("a", 4), make("b", 4), quantum=0)
        with pytest.raises(ValueError):
            interleave_traces(make("a", 4),
                              Trace("e", np.array([], dtype=np.uint64),
                                    np.array([], dtype=bool)))

    def test_unbalanced_lengths(self):
        combined = interleave_traces(make("a", 100), make("b", 10), quantum=8)
        assert len(combined) == 110

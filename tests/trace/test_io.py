"""Tests for trace persistence (npz + Dinero formats)."""

import io

import numpy as np
import pytest

from repro.trace import (
    Trace,
    TraceMetadata,
    load_trace_npz,
    read_dinero,
    save_trace_npz,
    write_dinero,
)


@pytest.fixture
def trace():
    return Trace(
        name="sample",
        addresses=np.array([0, 64, 128, 4096], dtype=np.uint64),
        is_write=np.array([False, True, False, True]),
        meta=TraceMetadata(instructions_per_access=7.5,
                           mispredicts_per_kaccess=3.0, mlp=2.5),
    )


class TestNpzRoundTrip:
    def test_lossless(self, trace, tmp_path):
        path = tmp_path / "t.npz"
        save_trace_npz(trace, path)
        loaded = load_trace_npz(path)
        assert loaded.name == "sample"
        assert np.array_equal(loaded.addresses, trace.addresses)
        assert np.array_equal(loaded.is_write, trace.is_write)
        assert loaded.meta == trace.meta

    def test_workload_trace_round_trip(self, tmp_path):
        from repro.workloads import get_workload
        original = get_workload("lu").trace(scale=0.05, seed=1)
        path = tmp_path / "lu.npz"
        save_trace_npz(original, path)
        loaded = load_trace_npz(path)
        assert np.array_equal(loaded.addresses, original.addresses)
        assert loaded.meta == original.meta


class TestDinero:
    def test_write_format(self, trace):
        out = io.StringIO()
        assert write_dinero(trace, out) == 4
        lines = out.getvalue().splitlines()
        assert lines[0] == "0 0"
        assert lines[1] == "1 40"      # write at 0x40
        assert lines[3] == "1 1000"    # write at 0x1000

    def test_round_trip(self, trace):
        out = io.StringIO()
        write_dinero(trace, out)
        loaded = read_dinero(io.StringIO(out.getvalue()), name="sample")
        assert np.array_equal(loaded.addresses, trace.addresses)
        assert np.array_equal(loaded.is_write, trace.is_write)

    def test_skips_comments_and_blanks(self):
        text = "# header\n\n0 10\n1 20\n"
        loaded = read_dinero(io.StringIO(text))
        assert loaded.addresses.tolist() == [0x10, 0x20]

    def test_ifetch_skipped_by_default(self):
        loaded = read_dinero(io.StringIO("2 100\n0 10\n"))
        assert loaded.addresses.tolist() == [0x10]

    def test_ifetch_included_as_read(self):
        loaded = read_dinero(io.StringIO("2 100\n"), include_ifetch=True)
        assert loaded.addresses.tolist() == [0x100]
        assert not loaded.is_write[0]

    def test_malformed_line(self):
        with pytest.raises(ValueError, match="line 1"):
            read_dinero(io.StringIO("0\n"))

    def test_bad_label(self):
        with pytest.raises(ValueError, match="unknown label"):
            read_dinero(io.StringIO("7 10\n"))

    def test_bad_hex(self):
        with pytest.raises(ValueError, match="line 1"):
            read_dinero(io.StringIO("0 zz\n"))

    def test_empty_stream(self):
        with pytest.raises(ValueError, match="no records"):
            read_dinero(io.StringIO("# nothing\n"))

    def test_simulates_after_load(self):
        """A loaded Dinero trace drives the simulator end to end."""
        from repro.cpu import simulate_scheme
        text = "\n".join(f"0 {i * 40:x}" for i in range(500))
        loaded = read_dinero(io.StringIO(text), name="dinero-demo")
        result = simulate_scheme(loaded, "pmod")
        assert result.l2_misses > 0

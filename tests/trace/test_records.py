"""Tests for Trace and TraceMetadata."""

import numpy as np
import pytest

from repro.trace import Trace, TraceMetadata


class TestTraceMetadata:
    def test_defaults_valid(self):
        meta = TraceMetadata()
        assert meta.mlp >= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceMetadata(instructions_per_access=0)
        with pytest.raises(ValueError):
            TraceMetadata(mispredicts_per_kaccess=-1)
        with pytest.raises(ValueError):
            TraceMetadata(mlp=0.5)


class TestTrace:
    def make(self, n=10):
        return Trace(
            name="t",
            addresses=np.arange(n, dtype=np.uint64) * 64,
            is_write=np.zeros(n, dtype=bool),
        )

    def test_len(self):
        assert len(self.make(7)) == 7

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Trace("t", np.arange(3, dtype=np.uint64), np.zeros(4, dtype=bool))

    def test_two_dimensional_rejected(self):
        with pytest.raises(ValueError):
            Trace("t", np.zeros((2, 2), dtype=np.uint64),
                  np.zeros((2, 2), dtype=bool))

    def test_write_fraction(self):
        t = Trace("t", np.zeros(4, dtype=np.uint64),
                  np.array([True, False, True, False]))
        assert t.write_fraction == 0.5

    def test_block_addresses(self):
        t = self.make(4)  # byte addresses 0, 64, 128, 192
        assert t.block_addresses(64).tolist() == [0, 1, 2, 3]
        assert t.block_addresses(32).tolist() == [0, 2, 4, 6]

    def test_block_addresses_rejects_non_power(self):
        with pytest.raises(ValueError):
            self.make().block_addresses(48)

    def test_dtype_coercion(self):
        t = Trace("t", np.array([1, 2, 3]), np.array([0, 1, 0]))
        assert t.addresses.dtype == np.uint64
        assert t.is_write.dtype == bool

"""Tests for the synthetic stream builders."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.trace import (
    blocked_sweep,
    gather_scatter,
    hot_cold_mix,
    interleaved_streams,
    pointer_chase,
    strided_stream,
    write_mask,
)


class TestStridedStream:
    def test_basic(self):
        assert strided_stream(100, 8, 3).tolist() == [100, 108, 116]

    def test_repeats(self):
        s = strided_stream(0, 4, 2, repeats=3)
        assert s.tolist() == [0, 4, 0, 4, 0, 4]

    def test_validation(self):
        with pytest.raises(ValueError):
            strided_stream(0, 4, 0)
        with pytest.raises(ValueError):
            strided_stream(0, 4, 4, repeats=0)


class TestInterleavedStreams:
    def test_round_robin(self):
        a = np.array([1, 2], dtype=np.uint64)
        b = np.array([10, 20], dtype=np.uint64)
        assert interleaved_streams([a, b]).tolist() == [1, 10, 2, 20]

    def test_truncates_to_shortest(self):
        a = np.array([1, 2, 3], dtype=np.uint64)
        b = np.array([10], dtype=np.uint64)
        assert interleaved_streams([a, b]).tolist() == [1, 10]

    def test_validation(self):
        with pytest.raises(ValueError):
            interleaved_streams([])
        with pytest.raises(ValueError):
            interleaved_streams([np.array([], dtype=np.uint64)])


class TestPointerChase:
    def test_deterministic(self):
        a = pointer_chase(100, 64, 1000, seed=1)
        b = pointer_chase(100, 64, 1000, seed=1)
        assert np.array_equal(a, b)

    def test_seed_changes_stream(self):
        a = pointer_chase(100, 64, 1000, seed=1)
        b = pointer_chase(100, 64, 1000, seed=2)
        assert not np.array_equal(a, b)

    def test_node_alignment(self):
        chase = pointer_chase(100, 64, 1000, seed=1, base=4096)
        assert np.all(chase % 64 == 0)
        assert np.all(chase >= 4096)

    def test_region_skew_shrinks_footprint(self):
        wide = pointer_chase(1000, 64, 5000, seed=1, region_skew=0.0)
        narrow = pointer_chase(1000, 64, 5000, seed=1, region_skew=0.9)
        assert len(np.unique(narrow)) < len(np.unique(wide))

    def test_validation(self):
        with pytest.raises(ValueError):
            pointer_chase(0, 64, 100, seed=1)
        with pytest.raises(ValueError):
            pointer_chase(10, 64, 100, seed=1, region_skew=1.0)


class TestGatherScatter:
    def test_maps_indices(self):
        idx = np.array([0, 2, 1], dtype=np.uint64)
        out = gather_scatter(1000, 10, 8, idx)
        assert out.tolist() == [1000, 1016, 1008]

    def test_wraps_table(self):
        idx = np.array([11], dtype=np.uint64)
        assert gather_scatter(0, 10, 8, idx).tolist() == [8]

    def test_validation(self):
        with pytest.raises(ValueError):
            gather_scatter(0, 0, 8, np.array([0], dtype=np.uint64))


class TestBlockedSweep:
    def test_covers_all_elements(self):
        sweep = blocked_sweep(0, rows=4, cols=4, element_bytes=8, tile=2)
        assert len(sweep) == 16
        assert set(sweep.tolist()) == {8 * i for i in range(16)}

    def test_column_major_strides_by_pitch(self):
        sweep = blocked_sweep(0, rows=4, cols=4, element_bytes=8, tile=4,
                              row_major=False)
        assert sweep[1] - sweep[0] == 32  # one full row pitch

    def test_validation(self):
        with pytest.raises(ValueError):
            blocked_sweep(0, 0, 4, 8, 2)


class TestHotColdMix:
    def test_preserves_all_elements(self):
        hot = np.arange(10, dtype=np.uint64)
        cold = np.arange(100, 130, dtype=np.uint64)
        mixed = hot_cold_mix(hot, cold, 0.3, seed=5)
        assert sorted(mixed.tolist()) == sorted(hot.tolist() + cold.tolist())

    def test_streams_stay_ordered(self):
        hot = np.arange(10, dtype=np.uint64)
        cold = np.arange(100, 120, dtype=np.uint64)
        mixed = hot_cold_mix(hot, cold, 0.5, seed=5)
        hot_out = [x for x in mixed if x < 10]
        assert hot_out == sorted(hot_out)

    def test_validation(self):
        with pytest.raises(ValueError):
            hot_cold_mix(np.array([1], dtype=np.uint64),
                         np.array([2], dtype=np.uint64), 0.0, seed=1)


class TestWriteMask:
    def test_fraction_roughly_respected(self):
        mask = write_mask(100000, 0.3, seed=9)
        assert 0.28 < mask.mean() < 0.32

    def test_deterministic(self):
        assert np.array_equal(write_mask(100, 0.5, 1), write_mask(100, 0.5, 1))

    def test_extremes(self):
        assert not write_mask(100, 0.0, 1).any()
        assert write_mask(100, 1.0, 1).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            write_mask(10, 1.5, 1)

"""Two-level routing: composition algebra, parity, invariance (§3 P2).

The composed map key → (node, shard) must behave like one indexing
function: scalar and vectorized paths agree bit-for-bit, quarantine
re-routing agrees across both paths, and the paper's sequence
invariance (Property 2) survives composition — pMod over pMod is, by
CRT, one modulo by the prime product; pow2 over pow2 one modulo by the
larger power of two; an XOR outer level breaks the property exactly as
it does at one level.
"""

import numpy as np
import pytest

from repro.cluster import ClusterRouter
from repro.hashing import (
    is_sequence_invariant,
    sequence_invariance_violations,
    strided_addresses,
)
from repro.store import RoutingTable

#: Exact node-ring sizes the properties must survive (ISSUE: 3/5/7).
NODE_COUNTS = (3, 5, 7)

#: Inner fleets: one power-of-two, one exact-prime.
SHARD_FLEETS = (("traditional", 16), ("pmod", 13))

STRIDES = (1, 2, 7, 13, 16, 64, 65)


def make_router(node_scheme="pmod", n_nodes=5, shard_scheme="pmod",
                shards_per_node=13):
    node_table = RoutingTable.create(node_scheme, n_nodes)
    shard_tables = [RoutingTable.create(shard_scheme, shards_per_node)
                    for _ in range(node_table.n_shards)]
    return ClusterRouter(node_table, shard_tables)


class TestScalarVectorParity:
    @pytest.mark.parametrize("n_nodes", NODE_COUNTS)
    @pytest.mark.parametrize("shard_scheme,shards_per_node", SHARD_FLEETS)
    def test_route_matches_route_array(self, n_nodes, shard_scheme,
                                       shards_per_node):
        router = make_router(n_nodes=n_nodes, shard_scheme=shard_scheme,
                             shards_per_node=shards_per_node)
        keys = np.arange(0, 4096, 3, dtype=np.uint64)
        nodes, shards = router.route_array(keys)
        for i in (0, 1, 17, 100, len(keys) - 1):
            node, shard = router.route(int(keys[i]))
            assert (node, shard) == (int(nodes[i]), int(shards[i]))

    def test_composed_index_matches_index_array(self):
        router = make_router()
        composed = router.composed
        keys = strided_addresses(7, 512)
        flat = composed.index_array(keys)
        assert flat.min() >= 0 and flat.max() < composed.n_sets
        for i in (0, 5, 311):
            assert composed.index(int(keys[i])) == int(flat[i])

    @pytest.mark.parametrize("n_nodes", NODE_COUNTS)
    def test_quarantine_probe_parity(self, n_nodes):
        """Node-level quarantine re-routes identically on the scalar
        and vectorized paths, and never lands on a quarantined node."""
        router = make_router(n_nodes=n_nodes).with_node_quarantined([0])
        keys = np.arange(2048, dtype=np.uint64)
        nodes, _ = router.route_array(keys)
        assert 0 not in set(nodes.tolist())
        for k in range(0, 2048, 97):
            assert router.node(k) == int(nodes[k])
            assert router.node(k) != 0


class TestSequenceInvariance:
    @pytest.mark.parametrize("n_nodes", NODE_COUNTS)
    @pytest.mark.parametrize("stride", STRIDES)
    def test_pmod_over_pmod_is_invariant(self, n_nodes, stride):
        """Distinct primes at both levels compose (CRT) into one
        modulo — Property 2 holds for the composed mapping."""
        router = make_router(node_scheme="pmod", n_nodes=n_nodes,
                             shard_scheme="pmod", shards_per_node=13)
        assert is_sequence_invariant(router.composed,
                                     strided_addresses(stride, 2048))

    @pytest.mark.parametrize("stride", STRIDES)
    def test_pow2_over_pow2_is_invariant(self, stride):
        router = make_router(node_scheme="traditional", n_nodes=4,
                             shard_scheme="traditional",
                             shards_per_node=16)
        assert is_sequence_invariant(router.composed,
                                     strided_addresses(stride, 2048))

    @pytest.mark.parametrize("shard_scheme,shards_per_node", SHARD_FLEETS)
    def test_mixed_stacks_are_invariant_when_both_levels_are_modulo(
            self, shard_scheme, shards_per_node):
        router = make_router(node_scheme="pmod", n_nodes=5,
                             shard_scheme=shard_scheme,
                             shards_per_node=shards_per_node)
        for stride in STRIDES:
            assert is_sequence_invariant(router.composed,
                                         strided_addresses(stride, 1024))

    def test_xor_outer_level_violates_invariance(self):
        router = make_router(node_scheme="xor", n_nodes=8,
                             shard_scheme="pmod", shards_per_node=13)
        violations = sum(
            sequence_invariance_violations(router.composed,
                                           strided_addresses(s, 2048))
            for s in STRIDES)
        assert violations > 0


class TestReplicas:
    def test_primary_first_then_ring_successors(self):
        router = make_router(n_nodes=5)
        for key in range(100):
            placement = router.replicas(key, 3)
            assert placement[0] == router.node(key)
            assert len(placement) == len(set(placement)) == 3
            for a, b in zip(placement, placement[1:]):
                assert b == (a + 1) % router.n_nodes

    def test_placement_is_pure_function_of_key_and_table(self):
        router = make_router(n_nodes=7)
        first = [tuple(router.replicas(k, 2)) for k in range(500)]
        second = [tuple(router.replicas(k, 2)) for k in range(500)]
        assert first == second

    def test_quarantined_nodes_are_skipped(self):
        router = make_router(n_nodes=5).with_node_quarantined([1, 2])
        for key in range(200):
            placement = router.replicas(key, 2)
            assert 1 not in placement and 2 not in placement
            assert len(placement) == 2

    def test_r_capped_at_usable_ring(self):
        router = make_router(n_nodes=3).with_node_quarantined([0])
        assert len(router.replicas(42, 5)) == 2

    def test_r_must_be_positive(self):
        with pytest.raises(ValueError, match="replica count"):
            make_router().replicas(1, 0)


class TestDerivation:
    def test_quarantine_bumps_epoch(self):
        router = make_router()
        assert router.epoch == 0
        quarantined = router.with_node_quarantined([2])
        assert quarantined.epoch == 1
        assert quarantined.quarantined_nodes == frozenset([2])
        healed = quarantined.without_node_quarantined()
        assert healed.epoch == 2
        assert healed.quarantined_nodes == frozenset()

    def test_noop_quarantine_returns_self(self):
        router = make_router()
        assert router.with_node_quarantined([]) is router

    def test_table_count_mismatch_rejected(self):
        node_table = RoutingTable.create("pmod", 5)
        with pytest.raises(ValueError, match="one shard table per node"):
            ClusterRouter(node_table,
                          [RoutingTable.create("pmod", 13)] * 3)

    def test_describe(self):
        router = make_router(n_nodes=5, shards_per_node=13)
        description = router.describe()
        assert description["n_nodes"] == 5
        assert description["shards_per_node"] == [13] * 5

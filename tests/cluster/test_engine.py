"""Cluster semantics: replication, quorums, read-repair, recovery."""

import asyncio

import pytest

from repro.cluster import (
    Cluster,
    NodeFaultInjector,
    NodeState,
    ReplicationConfig,
    ReReplicator,
)
from repro.obs import Journal, set_journal
from repro.store.selector import canonical_key


def make_cluster(n_nodes=5, replicas=2, **kwargs):
    kwargs.setdefault("node_scheme", "pmod")
    kwargs.setdefault("shard_scheme", "pmod")
    kwargs.setdefault("shards_per_node", 8)
    return Cluster(n_nodes=n_nodes,
                   replication=ReplicationConfig(replicas=replicas),
                   **kwargs)


@pytest.fixture
def journal():
    journal = Journal()
    previous = set_journal(journal)
    yield journal
    set_journal(previous)


class TestReplication:
    def test_put_lands_on_r_replicas(self):
        cluster = make_cluster(replicas=2)
        for i in range(100):
            assert cluster.put(i, i) == 2
        assert len(cluster) == 200  # two copies of every key

    def test_replica_set_holds_the_key(self):
        cluster = make_cluster(replicas=3)
        cluster.put("k", "v")
        placement = cluster.router.replicas("k", 3)
        for node_id in placement:
            assert cluster.nodes[node_id].contains(canonical_key("k"))

    def test_get_returns_freshest_version(self):
        cluster = make_cluster(replicas=2)
        cluster.put("k", "old")
        cluster.put("k", "new")
        assert cluster.get("k") == "new"

    def test_delete_kills_every_copy(self):
        cluster = make_cluster(replicas=2)
        cluster.put("k", "v")
        assert cluster.delete("k") is True
        assert cluster.get("k", "gone") == "gone"
        assert len(cluster) == 0

    def test_replicas_capped_by_ring(self):
        with pytest.raises(ValueError, match="replicas"):
            make_cluster(n_nodes=3, replicas=4)


class TestNodeLossAndQuorum:
    def test_reads_survive_single_node_loss(self, journal):
        cluster = make_cluster(n_nodes=7, replicas=2)
        for i in range(300):
            cluster.put(i, i * 7)
        cluster.fail_node(3)
        assert all(cluster.get(i) == i * 7 for i in range(300))
        (event,) = journal.find("cluster.node_down")
        assert event.fields["node"] == 3
        assert event.fields["live_nodes"] == 6

    def test_write_quorum_miss_is_journaled(self, journal):
        cluster = make_cluster(n_nodes=3, replicas=2)
        cluster.replication = ReplicationConfig(replicas=2, write_quorum=2)
        cluster.fail_node(0)
        cluster.fail_node(1)
        # Keys whose whole replica set is {0,1} can't reach quorum.
        misses_before = cluster.counts["quorum_misses"]
        for i in range(100):
            cluster.put(i, i)
        assert cluster.counts["quorum_misses"] > misses_before
        events = journal.find("cluster.quorum_miss")
        assert events and all(e.fields["needed"] == 2 for e in events)

    def test_failed_read_returns_default(self):
        cluster = make_cluster(n_nodes=3, replicas=1)
        cluster.put("k", "v")
        owner = cluster.router.replicas("k", 1)[0]
        cluster.fail_node(owner)
        assert cluster.get("k", "fallback") == "fallback"
        assert cluster.counts["failed_reads"] > 0

    def test_node_state_transitions_guard_double_fail(self):
        cluster = make_cluster()
        cluster.fail_node(1)
        with pytest.raises(ValueError, match="illegal transition"):
            cluster.fail_node(1)


class TestRecovery:
    def test_zero_key_loss_after_recovery(self, journal):
        """The acceptance drill: kill a node (crash-loss), keep
        serving, recover, and every key is back — including on the
        recovered node itself."""
        cluster = make_cluster(n_nodes=7, replicas=2)
        for i in range(400):
            cluster.put(i, i)
        victim = 2
        lost = cluster.nodes[victim].occupancy
        assert lost > 0
        cluster.fail_node(victim)
        report = cluster.recover_node(victim)
        assert report.copied == lost  # every owed key came back
        assert cluster.nodes[victim].occupancy == lost
        assert all(cluster.get(i) == i for i in range(400))
        (up,) = journal.find("cluster.node_up")
        assert up.fields["copied"] == lost

    def test_journal_chain_orders_down_rereplicate_up(self, journal):
        cluster = make_cluster(n_nodes=5, replicas=2)
        for i in range(200):
            cluster.put(i, i)
        cluster.fail_node(1)
        cluster.recover_node(1, budget=32)
        (down,) = journal.find("cluster.node_down")
        chunks = journal.find("cluster.rereplicate")
        (up,) = journal.find("cluster.node_up")
        assert chunks
        assert down.seq < chunks[0].seq < up.seq
        assert all(c.fields["budget"] == 32 for c in chunks)
        # Bounded drain: more than one chunk at budget 32.
        assert len(chunks) >= 2

    def test_rereplication_respects_budget(self):
        cluster = make_cluster(n_nodes=5, replicas=2)
        for i in range(300):
            cluster.put(i, i)
        cluster.fail_node(0)
        cluster.nodes[0].begin_recovery()
        drain = ReReplicator(cluster, 0, budget=16)
        owed = drain.remaining
        moved = drain.step()
        assert moved == 16
        assert drain.remaining == owed - 16
        drain.run()
        assert drain.remaining == 0
        cluster.nodes[0].complete_recovery()

    def test_fresh_writes_during_recovery_not_clobbered(self):
        """A key updated after the crash must keep its new value even
        when a stale copy is re-replicated from a peer."""
        cluster = make_cluster(n_nodes=5, replicas=2)
        cluster.put("k", "v1")
        victim = cluster.router.replicas("k", 2)[0]
        cluster.fail_node(victim)
        cluster.put("k", "v2")  # lands on surviving replica(s)
        cluster.recover_node(victim)
        assert cluster.get("k") == "v2"

    def test_deletes_do_not_resurrect(self):
        cluster = make_cluster(n_nodes=5, replicas=2)
        cluster.put("k", "v")
        cluster.delete("k")
        cluster.fail_node(1)
        cluster.recover_node(1)
        assert cluster.get("k", "gone") == "gone"

    def test_read_repair_converges_a_stale_replica(self):
        cluster = make_cluster(n_nodes=5, replicas=2)
        cluster.put("k", "v1")
        victim = cluster.router.replicas("k", 2)[1]
        cluster.fail_node(victim)
        cluster.put("k", "v2")
        cluster.nodes[victim].begin_recovery()
        cluster.nodes[victim].complete_recovery()
        # victim rejoined empty (no drain): the next read repairs it.
        assert cluster.get("k") == "v2"
        assert cluster.counts["read_repairs"] >= 1
        assert cluster.nodes[victim].get(canonical_key("k"))[1] == "v2"


class TestFaultSchedule:
    def test_scheduled_kill_and_recovery_fire_at_op_index(self, journal):
        injector = (NodeFaultInjector()
                    .schedule_fail(50, 1)
                    .schedule_recover(80, 1))
        cluster = make_cluster(n_nodes=5, replicas=2, injector=injector)
        for i in range(100):
            cluster.put(i, i)
        assert cluster.nodes[1].state is NodeState.UP
        assert cluster.nodes[1].failures == 1
        assert cluster.nodes[1].recoveries == 1
        assert injector.stats()["fail"] == 1
        assert journal.find("cluster.node_down")
        assert journal.find("cluster.node_up")
        assert all(cluster.get(i) == i for i in range(100))

    def test_transient_replica_errors_are_counted(self):
        injector = NodeFaultInjector(error_probability=0.5, seed=7)
        cluster = make_cluster(n_nodes=5, replicas=2, injector=injector)
        for i in range(100):
            cluster.put(i, i)
        assert cluster.counts["replica_errors"] > 0
        assert injector.stats()["error"] == cluster.counts["replica_errors"]


class TestQuarantineAndTelemetry:
    def test_quarantine_rebalances_placement(self):
        cluster = make_cluster(n_nodes=5, replicas=2)
        cluster.quarantine_node([2])
        assert cluster.epoch == 1
        for i in range(100):
            assert 2 not in cluster.router.replicas(i, 2)
        cluster.heal_node()
        assert cluster.epoch == 2

    def test_telemetry_snapshot(self):
        cluster = make_cluster(n_nodes=5, replicas=2)
        for i in range(200):
            cluster.put(i, i)
        for i in range(200):
            cluster.get(i)
        telemetry = cluster.telemetry()
        assert telemetry.ops == 400
        assert telemetry.puts == telemetry.gets == 200
        assert telemetry.live_nodes == 5
        assert telemetry.node_balance == pytest.approx(1.0, abs=0.5)
        assert telemetry.sim_p99_s > 0
        assert sum(telemetry.node_accesses) > 0
        payload = telemetry.as_dict()
        assert payload["node_scheme"] == "pmod"

    def test_virtual_clock_advances_per_op(self):
        cluster = make_cluster(tick_s=1e-3)
        before = cluster.virtual_now_s
        cluster.put(1, 1)
        assert cluster.virtual_now_s == pytest.approx(before + 1e-3)


class TestFrontendCompat:
    def test_frontend_batches_per_node(self):
        """A serving Frontend over a Cluster sees nodes, not shards:
        the outer routing width is the node count and every request
        lands on its node's queue."""
        from repro.serve import BatchConfig, Frontend

        cluster = make_cluster(n_nodes=5, replicas=2)
        assert cluster.n_shards == cluster.n_nodes == 5

        async def scenario():
            async with Frontend(cluster,
                                batch=BatchConfig(max_batch_size=8,
                                                  max_wait_s=0.001)) as fe:
                puts = [await fe.put(i, i * 3) for i in range(40)]
                gets = [await fe.get(i) for i in range(40)]
            return puts, gets

        puts, gets = asyncio.run(scenario())
        assert all(r.ok for r in puts)
        assert [g.value for g in gets] == [i * 3 for i in range(40)]

    def test_frontend_serves_through_node_loss(self):
        from repro.serve import BatchConfig, Frontend

        cluster = make_cluster(n_nodes=7, replicas=2)

        async def scenario():
            async with Frontend(cluster,
                                batch=BatchConfig(max_batch_size=8,
                                                  max_wait_s=0.001)) as fe:
                for i in range(100):
                    await fe.put(i, i)
                cluster.fail_node(2)
                gets = [await fe.get(i) for i in range(100)]
            return gets

        gets = asyncio.run(scenario())
        assert [g.value for g in gets] == list(range(100))

"""The virtual-time interconnect: links, queues, topologies, congestion."""

import pytest

from repro.cluster import (
    Fabric,
    Link,
    fat_tree_fabric,
    make_fabric,
    star_fabric,
)
from repro.cluster.interconnect import FRONTEND, node_endpoint


class TestLink:
    def test_serialization_plus_latency(self):
        link = Link("a->b", bandwidth_bps=1000, latency_s=0.5)
        # 100 bytes at 1000 B/s = 0.1s on the wire, then 0.5s of flight.
        assert link.send(0.0, 100) == pytest.approx(0.6)

    def test_contention_serializes(self):
        link = Link("a->b", bandwidth_bps=1000, latency_s=0.0)
        first = link.send(0.0, 100)
        second = link.send(0.0, 100)
        # The second message waits for the wire: strictly later arrival.
        assert second == pytest.approx(first + 0.1)
        assert link.queued_s == pytest.approx(0.1)

    def test_bounded_queue_tail_drops(self):
        link = Link("a->b", bandwidth_bps=10, latency_s=0.0, queue_depth=2)
        assert link.send(0.0, 100) is not None  # serializing
        assert link.send(0.0, 100) is not None  # queued (depth 1)
        assert link.send(0.0, 100) is None      # queue full: dropped
        assert link.drops == 1
        assert link.transfers == 2

    def test_queue_drains_with_virtual_time(self):
        link = Link("a->b", bandwidth_bps=10, latency_s=0.0, queue_depth=1)
        link.send(0.0, 100)   # busy until 10.0
        assert link.send(0.0, 100) is None
        # Long after the wire freed up, sends flow again.
        assert link.send(50.0, 100) is not None

    def test_determinism(self):
        def run():
            link = Link("a->b", bandwidth_bps=997, latency_s=1e-6,
                        queue_depth=4)
            return [link.send(i * 1e-4, 256) for i in range(100)]
        assert run() == run()

    def test_validation(self):
        with pytest.raises(ValueError):
            Link("x", bandwidth_bps=0)
        with pytest.raises(ValueError):
            Link("x", latency_s=-1)
        with pytest.raises(ValueError):
            Link("x", queue_depth=0)


class TestStarFabric:
    def test_every_pair_routes_through_the_switch(self):
        fabric = star_fabric(4)
        assert fabric.hops(FRONTEND, node_endpoint(2)) == 2
        assert fabric.hops(node_endpoint(0), node_endpoint(3)) == 2

    def test_transfer_accumulates_both_hops(self):
        fabric = star_fabric(2, bandwidth_bps=1000, latency_s=0.25)
        # 100B: 0.1 + 0.25 per hop, two hops.
        assert fabric.transfer(FRONTEND, node_endpoint(0), 100,
                               0.0) == pytest.approx(0.7)

    def test_round_trip_includes_service_time(self):
        fabric = star_fabric(2, bandwidth_bps=1000, latency_s=0.0)
        done = fabric.round_trip(FRONTEND, node_endpoint(0),
                                 request_bytes=100, response_bytes=100,
                                 now_s=0.0, service_s=1.0)
        assert done == pytest.approx(0.1 + 0.1 + 1.0 + 0.1 + 0.1)

    def test_self_transfer_is_free(self):
        fabric = star_fabric(2)
        assert fabric.transfer("node0", "node0", 10_000, 5.0) == 5.0

    def test_unknown_endpoint_raises(self):
        with pytest.raises(KeyError, match="no path"):
            star_fabric(2).transfer("node0", "node99", 1, 0.0)


class TestFatTreeFabric:
    def test_same_leaf_shortcut(self):
        fabric = fat_tree_fabric(8, leaf_width=4)
        assert fabric.hops(node_endpoint(0), node_endpoint(3)) == 2
        assert fabric.hops(node_endpoint(0), node_endpoint(4)) == 4

    def test_frontend_descends_through_leaf(self):
        fabric = fat_tree_fabric(8, leaf_width=4)
        assert fabric.hops(FRONTEND, node_endpoint(5)) == 3

    def test_cross_leaf_costs_more_than_same_leaf(self):
        fabric = fat_tree_fabric(8, leaf_width=4, bandwidth_bps=1000,
                                 latency_s=0.1)
        near = fabric.transfer(node_endpoint(0), node_endpoint(1), 100, 0.0)
        far = fabric.transfer(node_endpoint(0), node_endpoint(7), 100, 0.0)
        assert far > near


class TestCongestion:
    def test_congestion_widens_tail_latency(self):
        """Offered load past the shared uplink's capacity queues, and
        queueing shows up as a widening arrival-minus-send gap — the
        mechanical tail-latency story, no randomness anywhere."""
        fabric = star_fabric(2, bandwidth_bps=10_000, latency_s=0.0,
                             queue_depth=1024)
        latencies = []
        for i in range(200):
            now = i * 1e-3  # 1000 msgs/s of 100B = 100 KB/s >> 10 KB/s
            arrival = fabric.transfer(FRONTEND, node_endpoint(0), 100, now)
            latencies.append(arrival - now)
        assert latencies[-1] > latencies[0] * 10

    def test_stats_report_utilization_and_drops(self):
        fabric = star_fabric(2, bandwidth_bps=100, latency_s=0.0,
                             queue_depth=1)
        for i in range(10):
            fabric.transfer(FRONTEND, node_endpoint(0), 100, i * 1e-3)
        stats = fabric.stats(elapsed_s=1.0)
        assert stats["drops"] > 0
        busy = {row["name"]: row for row in stats["links"]}
        assert 0.0 < busy["frontend->sw0"]["utilization"] <= 1.0


class TestMakeFabric:
    def test_by_name(self):
        assert make_fabric("star", 3).topology == "star"
        assert make_fabric("fat-tree", 3).topology == "fat-tree"

    def test_unknown_topology(self):
        with pytest.raises(KeyError, match="unknown topology"):
            make_fabric("torus", 3)

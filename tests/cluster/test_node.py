"""StoreNode lifecycle: transitions, crash-loss, degraded service."""

import pytest

from repro.cluster import NodeDownError, NodeState, StoreNode
from repro.store import RoutingTable, ShardedStore


def make_node(node_id=0, scheme="pmod", n_shards=8):
    return StoreNode(node_id, ShardedStore(
        routing=RoutingTable.create(scheme, n_shards),
        shard_capacity=64, assoc=8))


class TestLifecycle:
    def test_full_cycle(self):
        node = make_node()
        assert node.state is NodeState.UP
        node.degrade()
        assert node.state is NodeState.DEGRADED
        node.restore()
        node.fail()
        assert node.state is NodeState.DOWN
        node.begin_recovery()
        assert node.state is NodeState.RECOVERING
        node.complete_recovery()
        assert node.state is NodeState.UP
        assert node.failures == 1
        assert node.recoveries == 1

    def test_down_to_up_is_illegal(self):
        node = make_node()
        node.fail()
        with pytest.raises(ValueError, match="illegal transition"):
            node.restore()

    def test_down_twice_is_illegal(self):
        node = make_node()
        node.fail()
        with pytest.raises(ValueError, match="illegal transition"):
            node.fail()

    def test_dying_mid_recovery_is_legal(self):
        node = make_node()
        node.fail()
        node.begin_recovery()
        node.fail()
        assert node.state is NodeState.DOWN
        assert node.failures == 2


class TestCrashLoss:
    def test_fail_wipes_contents(self):
        node = make_node()
        for i in range(32):
            node.put(i, i)
        assert node.occupancy == 32
        node.fail()
        node.begin_recovery()
        assert node.occupancy == 0
        assert node.get(5, "gone") == "gone"

    def test_routing_survives_the_crash(self):
        node = make_node(scheme="pmod", n_shards=8)
        before = (node.store.scheme, node.store.n_shards)
        node.fail()
        assert (node.store.scheme, node.store.n_shards) == before


class TestServing:
    def test_down_node_refuses_ops(self):
        node = make_node()
        node.put("k", 1)
        node.fail()
        for op in (lambda: node.get("k"), lambda: node.put("k", 2),
                   lambda: node.delete("k"), lambda: node.contains("k")):
            with pytest.raises(NodeDownError):
                op()

    def test_recovering_node_serves(self):
        node = make_node()
        node.fail()
        node.begin_recovery()
        node.put("k", 9)
        assert node.get("k") == 9
        assert node.writable and node.live

    def test_degraded_pays_the_penalty(self):
        node = StoreNode(0, ShardedStore(
            routing=RoutingTable.create("pmod", 8), shard_capacity=64),
            service_s=1e-6, degraded_penalty_s=5e-4)
        assert node.service_time() == pytest.approx(1e-6)
        node.degrade()
        assert node.service_time() == pytest.approx(1e-6 + 5e-4)
        node.restore()
        assert node.service_time() == pytest.approx(1e-6)

    def test_describe_is_json_friendly(self):
        import json

        node = make_node()
        node.put("k", 1)
        summary = node.describe()
        json.dumps(summary)
        assert summary["state"] == "up"
        assert summary["occupancy"] == 1

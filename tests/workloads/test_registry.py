"""Tests for the workload registry and the Workload contract."""

import numpy as np
import pytest

from repro.workloads import (
    NONUNIFORM_APPS,
    UNIFORM_APPS,
    all_workload_names,
    get_workload,
)


class TestRegistry:
    def test_twenty_three_applications(self):
        assert len(all_workload_names()) == 23

    def test_paper_partition(self):
        assert len(NONUNIFORM_APPS) == 7
        assert len(UNIFORM_APPS) == 16
        assert set(all_workload_names()) == set(NONUNIFORM_APPS) | set(UNIFORM_APPS)
        assert not set(NONUNIFORM_APPS) & set(UNIFORM_APPS)

    def test_paper_nonuniform_list(self):
        """Section 4: 'bt, cg, ft, irr, mcf, sp, and tree'."""
        assert NONUNIFORM_APPS == ("bt", "cg", "ft", "irr", "mcf", "sp", "tree")

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("linpack")

    def test_classification_attribute_matches_partition(self):
        for name in all_workload_names():
            w = get_workload(name)
            assert w.expected_non_uniform == (name in NONUNIFORM_APPS)

    def test_every_workload_has_suite_and_description(self):
        for name in all_workload_names():
            w = get_workload(name)
            assert w.suite in ("specint", "specfp", "nas", "olden", "scientific")
            assert w.description


class TestWorkloadContract:
    @pytest.fixture(params=sorted(all_workload_names()))
    def workload(self, request):
        return get_workload(request.param)

    def test_trace_is_deterministic(self, workload):
        a = workload.trace(scale=0.05, seed=3)
        b = workload.trace(scale=0.05, seed=3)
        assert np.array_equal(a.addresses, b.addresses)
        assert np.array_equal(a.is_write, b.is_write)

    def test_seed_changes_trace(self, workload):
        a = workload.trace(scale=0.05, seed=1)
        b = workload.trace(scale=0.05, seed=2)
        # Writes masks at minimum differ; most generators move addresses too.
        assert not (np.array_equal(a.addresses, b.addresses)
                    and np.array_equal(a.is_write, b.is_write))

    def test_scale_controls_length(self, workload):
        small = workload.trace(scale=0.05, seed=0)
        large = workload.trace(scale=0.2, seed=0)
        assert len(large) > len(small)

    def test_scale_must_be_positive(self, workload):
        with pytest.raises(ValueError):
            workload.trace(scale=0)

    def test_trace_has_reasonable_writes(self, workload):
        t = workload.trace(scale=0.05, seed=0)
        assert 0.0 < t.write_fraction < 0.6

    def test_metadata_is_valid(self, workload):
        meta = workload.metadata()
        assert meta.instructions_per_access > 0
        assert meta.mlp >= 1.0

    def test_trace_name_matches(self, workload):
        assert workload.trace(scale=0.05).name == workload.name

    def test_addresses_are_block_alignable(self, workload):
        t = workload.trace(scale=0.05, seed=0)
        assert int(t.addresses.max()) < 2**48  # sane address space

"""Tests for declarative composite workloads."""

import numpy as np
import pytest

from repro.trace.records import TraceMetadata
from repro.workloads import COMPONENT_KINDS, CompositeWorkload


def simple_spec():
    return [
        {"kind": "resident_gather", "share": 0.6, "blocks": 500},
        {"kind": "stream", "share": 0.4, "arrays": 2, "array_kb": 512},
    ]


class TestValidation:
    def test_empty_components(self):
        with pytest.raises(ValueError, match="at least one"):
            CompositeWorkload("w", [])

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown kind"):
            CompositeWorkload("w", [{"kind": "prefetch", "share": 1.0}])

    def test_missing_keys(self):
        with pytest.raises(ValueError, match="missing keys"):
            CompositeWorkload("w", [{"kind": "cyclic", "share": 1.0}])

    def test_shares_must_sum_to_one(self):
        spec = simple_spec()
        spec[0]["share"] = 0.9
        with pytest.raises(ValueError, match="sum to"):
            CompositeWorkload("w", spec)

    def test_bad_share(self):
        with pytest.raises(ValueError, match="share"):
            CompositeWorkload("w", [
                {"kind": "cyclic", "share": 0.0, "blocks": 10},
                {"kind": "cyclic", "share": 1.0, "blocks": 10},
            ])

    def test_bad_write_fraction(self):
        with pytest.raises(ValueError, match="write_fraction"):
            CompositeWorkload("w", simple_spec(), write_fraction=2.0)

    def test_all_kinds_constructible(self):
        specs = {
            "resident_gather": {"blocks": 100},
            "stream": {"arrays": 1, "array_kb": 256},
            "alias_columns": {"rows": 4, "repeats": 2},
            "cyclic": {"blocks": 100},
            "page_nodes": {"pages": 10, "hot_bytes": 256},
            "struct_chase": {"structs": 50, "struct_bytes": 256},
        }
        assert set(specs) == set(COMPONENT_KINDS)
        for kind, extra in specs.items():
            w = CompositeWorkload("w", [dict(kind=kind, share=1.0, **extra)])
            assert len(w.trace(scale=0.02)) > 0


class TestBehavior:
    def test_deterministic(self):
        a = CompositeWorkload("w", simple_spec()).trace(scale=0.05, seed=2)
        b = CompositeWorkload("w", simple_spec()).trace(scale=0.05, seed=2)
        assert np.array_equal(a.addresses, b.addresses)

    def test_custom_metadata(self):
        meta = TraceMetadata(instructions_per_access=12.0, mlp=4.0)
        w = CompositeWorkload("w", simple_spec(), metadata=meta)
        assert w.trace(scale=0.02).meta.mlp == 4.0

    def test_write_fraction_respected(self):
        w = CompositeWorkload("w", simple_spec(), write_fraction=0.4)
        t = w.trace(scale=0.2)
        assert 0.35 < t.write_fraction < 0.45

    def test_alias_columns_create_pmod_advantage(self):
        """A composite with conflict columns reproduces the headline
        effect end to end."""
        from repro.cpu import simulate_scheme
        spec = [
            {"kind": "alias_columns", "share": 0.5, "rows": 16, "repeats": 6},
            {"kind": "stream", "share": 0.5, "arrays": 2, "array_kb": 4096,
             "element_bytes": 64},
        ]
        trace = CompositeWorkload("custom-bt", spec).trace(scale=0.3)
        base = simulate_scheme(trace, "base")
        pmod = simulate_scheme(trace, "pmod")
        assert pmod.l2_misses < base.l2_misses * 0.85

    def test_components_share_trace(self):
        spec = simple_spec()
        trace = CompositeWorkload("w", spec).trace(scale=0.1)
        blocks = trace.addresses >> np.uint64(6)
        gather = blocks[trace.addresses < (1 << 28)]
        stream = blocks[trace.addresses >= (1 << 28)]
        assert len(gather) > 0 and len(stream) > 0

"""Behavioral spot-checks of individual workload structures."""

import numpy as np

from repro.cpu import simulate_scheme
from repro.workloads import get_workload
from repro.workloads.patterns import (
    L2_BLOCK,
    L2_SETS,
    PMOD_BAD_STRIDE_BLOCKS,
    XOR_BAD_STRIDE_BLOCKS,
)

SCALE = 0.25


class TestTree:
    def test_misses_concentrated_under_base(self):
        """Figure 13a: the vast majority of tree's misses land in a
        small fraction of the traditional sets."""
        from repro.cpu import build_hierarchy
        trace = get_workload("tree").trace(scale=SCALE, seed=0)
        h = build_hierarchy("base")
        for a, w in zip(trace.addresses, trace.is_write):
            h.access(int(a), bool(w))
        misses = np.sort(h.l2.stats.set_misses)[::-1]
        top_tenth = misses[: L2_SETS // 10].sum()
        assert top_tenth / misses.sum() > 0.5

    def test_pmod_flattens_the_distribution(self):
        """Figure 13b: under pMod the per-set miss spread collapses."""
        from repro.cpu import build_hierarchy
        trace = get_workload("tree").trace(scale=SCALE, seed=0)
        base, pmod = build_hierarchy("base"), build_hierarchy("pmod")
        for a, w in zip(trace.addresses, trace.is_write):
            base.access(int(a), bool(w))
            pmod.access(int(a), bool(w))
        cv_base = base.l2.stats.set_misses.std() / base.l2.stats.set_misses.mean()
        cv_pmod = pmod.l2.stats.set_misses.std() / pmod.l2.stats.set_misses.mean()
        assert cv_pmod < cv_base / 3

    def test_large_pmod_speedup(self):
        trace = get_workload("tree").trace(scale=SCALE, seed=0)
        base = simulate_scheme(trace, "base")
        pmod = simulate_scheme(trace, "pmod")
        assert pmod.speedup_over(base) > 1.5


class TestMcf:
    def test_hot_lines_are_struct_aligned(self):
        trace = get_workload("mcf").trace(scale=SCALE, seed=0)
        blocks = trace.addresses >> np.uint64(6)
        # The chase component lives below the streaming arrays' base.
        chase = blocks[trace.addresses < (1 << 27)]
        assert len(chase) > 0
        assert np.all(chase % 8 == 0)  # 512-byte structs -> block % 8 == 0


class TestSparse:
    def test_contains_adversarial_strides(self):
        trace = get_workload("sparse").trace(scale=SCALE, seed=0)
        blocks = (trace.addresses >> np.uint64(6)).astype(np.int64)
        # Walk components live at very high bases; check their
        # *in-trace-order* stride is the adversarial one.
        pmod_walk = blocks[(blocks >= (1 << 32) // L2_BLOCK)
                           & (blocks < (1 << 34) // L2_BLOCK)]
        xor_walk = blocks[blocks >= (1 << 34) // L2_BLOCK]
        assert len(pmod_walk) > 0 and len(xor_walk) > 0
        assert PMOD_BAD_STRIDE_BLOCKS in np.diff(pmod_walk)
        assert XOR_BAD_STRIDE_BLOCKS in np.diff(xor_walk)

    def test_pmod_pays_small_penalty(self):
        """Figure 8: pMod slows sparse slightly — and only sparse."""
        trace = get_workload("sparse").trace(scale=SCALE, seed=0)
        base = simulate_scheme(trace, "base")
        pmod = simulate_scheme(trace, "pmod")
        slowdown = 1.0 / pmod.speedup_over(base)
        assert 1.0 < slowdown < 1.10


class TestMst:
    def test_only_skewed_helps(self):
        """Section 5.3: 'with cg and mst, only the skewed associative
        schemes are able to obtain speedups'.  Needs several passes of
        the over-capacity sweep, hence the larger scale."""
        trace = get_workload("mst").trace(scale=0.8, seed=0)
        base = simulate_scheme(trace, "base")
        pmod = simulate_scheme(trace, "pmod")
        skw = simulate_scheme(trace, "skw")
        assert abs(pmod.speedup_over(base) - 1.0) < 0.05
        assert skw.speedup_over(base) > 1.05


class TestBt:
    def test_column_walks_alias_one_set(self):
        trace = get_workload("bt").trace(scale=SCALE, seed=0)
        blocks = trace.addresses >> np.uint64(6)
        solves = blocks[trace.addresses < (1 << 26)]
        # Consecutive same-column accesses differ by exactly 2048 blocks.
        deltas = np.diff(solves.astype(np.int64))
        assert (deltas == 2048).sum() > len(solves) * 0.5

    def test_eight_way_barely_helps(self):
        """Section 5.2: doubling associativity at the same size is not
        an effective way to eliminate these conflicts."""
        trace = get_workload("bt").trace(scale=SCALE, seed=0)
        base = simulate_scheme(trace, "base")
        eight = simulate_scheme(trace, "8way")
        pmod = simulate_scheme(trace, "pmod")
        assert eight.speedup_over(base) < 1.05
        assert pmod.speedup_over(base) > 1.2

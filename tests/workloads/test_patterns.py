"""Tests for the shared access-pattern builders."""

import numpy as np
import pytest

from repro.workloads.patterns import (
    L2_BLOCK,
    L2_SETS,
    SET_ALIAS_BYTES,
    adversarial_stride_walk,
    aligned_struct_chase,
    chunked_interleave,
    conflict_column_walk,
    cyclic_sweep,
    page_resident_nodes,
    poisson_hot_set,
    shuffled_cycles,
    streaming_arrays,
)


class TestGeometryConstants:
    def test_paper_l2(self):
        assert L2_SETS == 2048 and L2_BLOCK == 64
        assert SET_ALIAS_BYTES == 128 * 1024


class TestConflictColumnWalk:
    def test_column_blocks_alias_one_set(self):
        walk = conflict_column_walk(n_rows=4, n_cols=2, repeats=1)
        blocks = walk >> np.uint64(6)
        col0 = blocks[:4]
        assert len({int(b) % L2_SETS for b in col0}) == 1

    def test_repeats_revisit(self):
        walk = conflict_column_walk(n_rows=3, n_cols=1, repeats=2)
        assert np.array_equal(walk[:3], walk[3:6])

    def test_length(self):
        walk = conflict_column_walk(n_rows=4, n_cols=3, repeats=2)
        assert len(walk) == 4 * 3 * 2


class TestCyclicSweep:
    def test_contiguous_default(self):
        sweep = cyclic_sweep(4, 1)
        assert sweep.tolist() == [0, 64, 128, 192]

    def test_permutation_preserves_blocks(self):
        plain = cyclic_sweep(100, 1)
        permuted = cyclic_sweep(100, 1, permute_seed=5)
        assert sorted(permuted.tolist()) == sorted(plain.tolist())

    def test_scatter_draws_distinct_blocks(self):
        sweep = cyclic_sweep(500, 1, scatter_seed=7)
        assert len(np.unique(sweep)) == 500

    def test_scatter_spread_exceeds_contiguous(self):
        scattered = cyclic_sweep(500, 1, scatter_seed=7)
        assert int(scattered.max()) > 500 * L2_BLOCK

    def test_stride_blocks(self):
        sweep = cyclic_sweep(3, 1, stride_blocks=2)
        assert sweep.tolist() == [0, 128, 256]

    def test_repeats(self):
        sweep = cyclic_sweep(5, 3, permute_seed=1)
        assert np.array_equal(sweep[:5], sweep[5:10])


class TestShuffledCycles:
    def test_each_epoch_visits_every_block_once(self):
        out = shuffled_cycles(10, 20, seed=3)
        blocks = (out >> np.uint64(6)).reshape(2, 10)
        for epoch in blocks:
            assert sorted(epoch.tolist()) == list(range(10))

    def test_epochs_differ(self):
        out = shuffled_cycles(50, 100, seed=3)
        assert not np.array_equal(out[:50], out[50:])

    def test_validation(self):
        with pytest.raises(ValueError):
            shuffled_cycles(0, 10, seed=1)


class TestAdversarialStrideWalk:
    def test_groups_cover_requested_count(self):
        walk = adversarial_stride_walk(2039 * 128, 4, 1000, groups=8,
                                       repeats_per_group=2)
        assert len(walk) == 1000

    def test_within_group_stride(self):
        walk = adversarial_stride_walk(100, 3, 9, groups=1,
                                       repeats_per_group=1)
        blocks = walk >> np.uint64(6)
        assert blocks[1] - blocks[0] == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            adversarial_stride_walk(100, 0, 10)


class TestChunkedInterleave:
    def test_preserves_order_within_stream(self):
        a = np.arange(10, dtype=np.uint64)
        b = np.arange(100, 110, dtype=np.uint64)
        out = chunked_interleave([a, b], chunk=4)
        a_out = [x for x in out if x < 100]
        assert a_out == sorted(a_out)

    def test_all_elements_present(self):
        a = np.arange(7, dtype=np.uint64)
        b = np.arange(100, 103, dtype=np.uint64)
        out = chunked_interleave([a, b], chunk=2)
        assert sorted(out.tolist()) == sorted(a.tolist() + b.tolist())

    def test_validation(self):
        with pytest.raises(ValueError):
            chunked_interleave([])
        with pytest.raises(ValueError):
            chunked_interleave([np.arange(3, dtype=np.uint64)], chunk=0)


class TestStreamingArrays:
    def test_no_block_revisits_within_window(self):
        out = streaming_arrays(1, 1024 * 1024, 1000, element_bytes=64)
        assert len(np.unique(out >> np.uint64(6))) == 1000

    def test_set_coverage_uniform_in_short_window(self):
        """The hop order must load sets evenly even for short traces."""
        out = streaming_arrays(2, 1024 * 1024, 6000, element_bytes=64)
        sets = (out >> np.uint64(6)) % np.uint64(L2_SETS)
        counts = np.bincount(sets.astype(int), minlength=L2_SETS)
        assert counts.std() / counts.mean() < 0.8

    def test_random_order_visits_blocks_once(self):
        out = streaming_arrays(1, 256 * 1024, 2000, element_bytes=64,
                               order_seed=5)
        assert len(np.unique(out >> np.uint64(6))) == 2000

    def test_element_granularity(self):
        out = streaming_arrays(1, 1024 * 1024, 8, element_bytes=8)
        # 8 consecutive elements share one block.
        assert len(np.unique(out >> np.uint64(6))) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            streaming_arrays(0, 1024, 10)
        with pytest.raises(ValueError):
            streaming_arrays(1, 1024, 0)
        with pytest.raises(ValueError):
            streaming_arrays(1, 32, 10)


class TestNodePatterns:
    def test_page_resident_nodes_stay_in_front(self):
        nodes = page_resident_nodes(10, 256, 1000, seed=2)
        offsets = nodes % np.uint64(4096)
        assert int(offsets.max()) < 256

    def test_page_resident_validation(self):
        with pytest.raises(ValueError):
            page_resident_nodes(10, 8192, 100, seed=1, page_bytes=4096)

    def test_aligned_struct_chase_alignment(self):
        chase = aligned_struct_chase(100, 256, 1000, seed=4)
        assert np.all(chase % 256 == 0)

    def test_aligned_struct_chase_rejects_misaligned(self):
        with pytest.raises(ValueError):
            aligned_struct_chase(100, 100, 10, seed=1)

    def test_poisson_hot_set_footprint(self):
        out = poisson_hot_set(200, 5000, seed=6)
        assert len(np.unique(out)) <= 200

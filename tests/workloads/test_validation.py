"""Tests for the workload validation gate."""

import numpy as np
import pytest

from repro.trace.records import TraceMetadata
from repro.workloads import (
    CompositeWorkload,
    Workload,
    all_workload_names,
    get_workload,
)
from repro.workloads.validation import validate_all, validate_workload


@pytest.mark.parametrize("name", sorted(all_workload_names()))
def test_every_paper_workload_validates(name):
    report = validate_workload(get_workload(name))
    assert report.ok, str(report)


class TestValidatorCatchesBadWorkloads:
    def test_composite_validates(self):
        w = CompositeWorkload("ok", [
            {"kind": "resident_gather", "share": 1.0, "blocks": 200},
        ])
        assert validate_workload(w).ok

    def test_detects_seed_ignorance(self):
        class SeedBlind(Workload):
            name = "seedblind"

            def generate(self, n, seed):
                addrs = np.arange(n, dtype=np.uint64) * 64
                writes = np.zeros(n, dtype=bool)
                writes[::4] = True
                return addrs, writes

        report = validate_workload(SeedBlind())
        assert not report.ok
        assert any("seed" in p for p in report.problems)

    def test_detects_nondeterminism(self):
        class Flaky(Workload):
            name = "flaky"
            _calls = 0

            def generate(self, n, seed):
                Flaky._calls += 1
                rng = np.random.default_rng(Flaky._calls)
                writes = np.zeros(n, dtype=bool)
                writes[::3] = True
                return rng.integers(0, 1 << 20, n).astype(np.uint64), writes

        report = validate_workload(Flaky())
        assert any("deterministic" in p for p in report.problems)

    def test_detects_address_overflow(self):
        class Huge(Workload):
            name = "huge"

            def generate(self, n, seed):
                addrs = np.full(n, (1 << 50) + seed, dtype=np.uint64)
                writes = np.zeros(n, dtype=bool)
                writes[0] = True
                return addrs, writes

        report = validate_workload(Huge())
        assert any("48-bit" in p for p in report.problems)

    def test_detects_raises(self):
        class Broken(Workload):
            name = "broken"

            def generate(self, n, seed):
                raise RuntimeError("boom")

        report = validate_workload(Broken())
        assert any("raised" in p for p in report.problems)

    def test_validate_all(self):
        reports = validate_all([get_workload("lu"), get_workload("tree")])
        assert all(r.ok for r in reports)

    def test_str_representation(self):
        report = validate_workload(get_workload("lu"))
        assert "lu: OK" == str(report)

"""End-to-end validation of the paper's Section 4 classification.

Runs every workload through the Base (traditional) hierarchy and checks
that the stdev/mean > 0.5 uniformity criterion reproduces the paper's
7/16 split exactly.  This is the load-bearing property of the workload
substitution (DESIGN.md §4), so it is tested directly despite the cost.
"""

import pytest

from repro.cpu import build_hierarchy
from repro.hashing import uniformity
from repro.workloads import all_workload_names, get_workload

SCALE = 0.35


def classify(name: str) -> float:
    workload = get_workload(name)
    trace = workload.trace(scale=SCALE, seed=0)
    hierarchy = build_hierarchy("base")
    for address, is_write in zip(trace.addresses, trace.is_write):
        hierarchy.access(int(address), bool(is_write))
    return uniformity(hierarchy.l2.stats.set_accesses)


@pytest.mark.parametrize("name", sorted(all_workload_names()))
def test_uniformity_matches_paper(name):
    report = classify(name)
    expected = get_workload(name).expected_non_uniform
    assert report.non_uniform == expected, (
        f"{name}: ratio {report.ratio:.3f} classifies as "
        f"{'non-uniform' if report.non_uniform else 'uniform'}, paper says "
        f"{'non-uniform' if expected else 'uniform'}"
    )

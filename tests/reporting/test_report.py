"""Tests for the one-shot markdown report."""

import pytest

from repro.experiments.common import ResultStore, RunConfig
from repro.reporting.report import full_report


@pytest.fixture(scope="module")
def report():
    return full_report(ResultStore(RunConfig(scale=0.1)))


class TestFullReport:
    def test_contains_every_section(self, report):
        for heading in ("Table 1", "Table 2", "Table 3", "Table 4",
                        "Figure 7", "Figure 8", "Figure 9", "Figure 10",
                        "Figure 11", "Figure 12"):
            assert heading in report, heading

    def test_mentions_config(self, report):
        assert "Trace scale 0.1" in report

    def test_is_markdown(self, report):
        assert report.startswith("# ")
        assert "```" in report

    def test_contains_all_apps(self, report):
        from repro.workloads import all_workload_names
        for app in all_workload_names():
            assert app in report, app

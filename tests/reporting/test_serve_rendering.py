"""Tests for the serving latency table and tail-latency chart."""

from repro.reporting import serve_latency_table, serve_tail_chart


def _row(scheme, p99=0.01, balance=None):
    return {
        "scheme": scheme,
        "latency": {"p50": 0.002, "p95": 0.006, "p99": p99},
        "reject_rate": 0.125,
        "timeout_rate": 0.0,
        "mean_batch_size": 3.5,
        "throughput_rps": 9500.0,
        "balance": balance,
    }


class TestServeLatencyTable:
    def test_columns_and_units(self):
        out = serve_latency_table([_row("pmod"), _row("traditional")])
        assert "p50 ms" in out and "p99 ms" in out
        assert "12.5%" in out  # reject rate as a percentage
        assert "2.00" in out  # p50 rendered in milliseconds
        assert "9,500" in out
        assert "pmod" in out and "traditional" in out

    def test_balance_column_only_when_present(self):
        without = serve_latency_table([_row("pmod")])
        assert "balance" not in without
        with_balance = serve_latency_table([_row("pmod", balance=1.25)])
        assert "balance" in with_balance
        assert "1.250" in with_balance

    def test_title(self):
        out = serve_latency_table([_row("xor")], title="Serving — test")
        assert "Serving — test" in out


class TestServeTailChart:
    def test_bars_scale_with_p99(self):
        out = serve_tail_chart([_row("pmod", p99=0.005),
                                _row("traditional", p99=0.020)],
                               title="p99 per scheme")
        assert "p99 per scheme" in out
        lines = {line.split()[0]: line for line in out.splitlines()[1:]}
        assert lines["traditional"].count("#") > lines["pmod"].count("#")

"""Tests for the terminal table and chart renderers."""

import pytest

from repro.reporting import (
    bar_chart,
    format_table,
    sparkline_series,
    stacked_bar_chart,
)


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = out.splitlines()
        assert lines[1].startswith("| a")
        assert all(len(l) == len(lines[0]) for l in lines)

    def test_title(self):
        assert format_table(["x"], [[1]], title="T").splitlines()[0] == "T"

    def test_empty_rows_ok(self):
        out = format_table(["col"], [])
        assert "col" in out

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_no_columns_rejected(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_numeric_right_alignment(self):
        out = format_table(["name", "v"], [["x", 5], ["y", 123]])
        row_x = [l for l in out.splitlines() if "x" in l][0]
        assert row_x.endswith("  5 |")


class TestBarChart:
    def test_bar_lengths_proportional(self):
        out = bar_chart(["a", "b"], [1.0, 2.0], width=20)
        lines = out.splitlines()
        assert lines[0].count("#") * 2 == lines[1].count("#")

    def test_reference_marker(self):
        out = bar_chart(["a"], [0.5], reference=1.0, width=20)
        assert "|" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart([], [])
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0], width=2)

    def test_zero_values_render(self):
        out = bar_chart(["a", "b"], [0.0, 0.0])
        assert "a" in out


class TestStackedBarChart:
    def test_segments_rendered(self):
        out = stacked_bar_chart(["x"], [(1.0, 1.0, 2.0)], width=40)
        row = out.splitlines()[-1]
        assert "#" in row and "+" in row and "." in row

    def test_legend(self):
        out = stacked_bar_chart(["x"], [(1, 0, 0)],
                                segment_names=("busy", "other", "mem"))
        assert "busy" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            stacked_bar_chart(["x", "y"], [(1, 1, 1)])


class TestSparkline:
    def test_renders_grid(self):
        out = sparkline_series([1, 2, 3, 4], [0.0, 1.0, 2.0, 3.0], height=4,
                               width=20)
        assert out.count("*") >= 1
        assert "stride 1 .. 4" in out

    def test_cap_clips(self):
        out = sparkline_series([1, 2], [1.0, 100.0], y_cap=10.0)
        assert "10.00" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            sparkline_series([], [])
        with pytest.raises(ValueError):
            sparkline_series([1], [1.0, 2.0])

"""Equivalence tests: fast path vs reference cache model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import FullyAssociativeCache, SetAssociativeCache
from repro.cache.fastsim import (
    simulate_fully_associative_misses,
    simulate_misses,
    simulate_misses_reference,
)
from repro.hashing import (
    PrimeModuloIndexing,
    TraditionalIndexing,
    XorIndexing,
    make_indexing,
)


def reference_misses(indexing, blocks, assoc):
    cache = SetAssociativeCache(indexing.n_sets_physical, assoc, indexing)
    for b in blocks:
        cache.access(int(b))
    return cache.stats


class TestEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(0, 4095), min_size=1, max_size=400),
        st.sampled_from(["traditional", "xor", "pmod", "pdisp"]),
        st.sampled_from([1, 2, 4]),
    )
    def test_matches_reference_model(self, blocks, key, assoc):
        indexing = make_indexing(key, 64)
        blocks = np.asarray(blocks, dtype=np.uint64)
        fast = simulate_misses(indexing, blocks, assoc)
        ref = reference_misses(make_indexing(key, 64), blocks, assoc)
        assert fast.misses == ref.misses
        assert np.array_equal(fast.set_accesses, ref.set_accesses)
        assert np.array_equal(fast.set_misses, ref.set_misses)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 2047), min_size=1, max_size=300),
           st.sampled_from([2, 8, 32]))
    def test_fa_matches_reference(self, blocks, capacity):
        blocks = np.asarray(blocks, dtype=np.uint64)
        fast = simulate_fully_associative_misses(blocks, capacity)
        ref = FullyAssociativeCache(capacity)
        for b in blocks:
            ref.access(int(b))
        assert fast.misses == ref.stats.misses

    def test_workload_scale_equivalence(self):
        """A real workload trace at modest scale: both paths agree."""
        from repro.workloads import get_workload
        trace = get_workload("tree").trace(scale=0.05, seed=0)
        blocks = trace.block_addresses(64)
        indexing = PrimeModuloIndexing(2048)
        fast = simulate_misses(indexing, blocks, 4)
        ref = reference_misses(PrimeModuloIndexing(2048), blocks, 4)
        assert fast.misses == ref.misses


class TestVectorizedVsReference:
    """The numpy path must be bit-identical to the per-access loop."""

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(0, 1 << 16), min_size=1, max_size=600),
        st.sampled_from(["traditional", "xor", "pmod", "pdisp"]),
        st.sampled_from([1, 2, 4, 8]),
    )
    def test_bit_identical_to_loop(self, blocks, key, assoc):
        indexing = make_indexing(key, 128)
        blocks = np.asarray(blocks, dtype=np.uint64)
        fast = simulate_misses(indexing, blocks, assoc)
        ref = simulate_misses_reference(indexing, blocks, assoc)
        assert fast.misses == ref.misses
        assert np.array_equal(fast.set_accesses, ref.set_accesses)
        assert np.array_equal(fast.set_misses, ref.set_misses)

    def test_strided_pathologies(self):
        """Power-of-two strides concentrate sets; the windows get long
        and exercise the chunked band loop."""
        indexing = make_indexing("traditional", 2048)
        oracle = make_indexing("traditional", 2048)
        for stride in (2048, 4096, 1024):
            blocks = (np.arange(30000, dtype=np.uint64) * stride) % (1 << 24)
            fast = simulate_misses(indexing, blocks, 4)
            ref = simulate_misses_reference(oracle, blocks, 4)
            assert fast.misses == ref.misses
            assert np.array_equal(fast.set_misses, ref.set_misses)

    def test_workload_trace_identical(self):
        """A real workload trace at the paper's L2 geometry."""
        from repro.workloads import get_workload
        trace = get_workload("tree").trace(scale=0.1, seed=0)
        blocks = trace.block_addresses(64)
        fast = simulate_misses(PrimeModuloIndexing(2048), blocks, 4)
        ref = simulate_misses_reference(PrimeModuloIndexing(2048), blocks, 4)
        assert fast.misses == ref.misses
        assert np.array_equal(fast.set_accesses, ref.set_accesses)
        assert np.array_equal(fast.set_misses, ref.set_misses)


class TestInterface:
    def test_validation(self):
        idx = TraditionalIndexing(16)
        with pytest.raises(ValueError):
            simulate_misses(idx, np.zeros(4, dtype=np.uint64), 0)
        with pytest.raises(ValueError):
            simulate_misses(idx, np.zeros((2, 2), dtype=np.uint64), 2)
        with pytest.raises(ValueError):
            simulate_fully_associative_misses(np.zeros(4, dtype=np.uint64), 0)

    def test_counters_optional(self):
        idx = XorIndexing(16)
        result = simulate_misses(idx, np.arange(100, dtype=np.uint64), 2,
                                 per_set_counters=False)
        assert result.set_accesses is None
        assert result.misses > 0

    def test_derived_metrics(self):
        idx = TraditionalIndexing(16)
        result = simulate_misses(idx, np.zeros(10, dtype=np.uint64), 2)
        assert result.hits == 9
        assert result.miss_rate == pytest.approx(0.1)

    def test_is_actually_faster(self):
        """The fast path must beat the reference model on a real sweep."""
        import time
        idx_fast = PrimeModuloIndexing(2048)
        idx_ref = PrimeModuloIndexing(2048)
        rng = np.random.default_rng(1)
        blocks = rng.integers(0, 1 << 20, size=60000, dtype=np.uint64)
        t0 = time.perf_counter()
        simulate_misses(idx_fast, blocks, 4, per_set_counters=False)
        fast_t = time.perf_counter() - t0
        t0 = time.perf_counter()
        reference_misses(idx_ref, blocks, 4)
        ref_t = time.perf_counter() - t0
        assert fast_t < ref_t

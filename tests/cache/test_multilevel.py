"""Tests for the N-level hierarchy."""

import pytest

from repro.cache import SetAssociativeCache
from repro.cache.multilevel import MultiLevelHierarchy
from repro.hashing import TraditionalIndexing


def make_three_level():
    l1 = SetAssociativeCache(4, 2, TraditionalIndexing(4), name="L1")
    l2 = SetAssociativeCache(16, 2, TraditionalIndexing(16), name="L2")
    l3 = SetAssociativeCache(64, 2, TraditionalIndexing(64), name="L3")
    return MultiLevelHierarchy([(l1, 32), (l2, 64), (l3, 64)])


class TestConstruction:
    def test_needs_levels(self):
        with pytest.raises(ValueError):
            MultiLevelHierarchy([])

    def test_rejects_shrinking_lines(self):
        l1 = SetAssociativeCache(4, 2, TraditionalIndexing(4))
        l2 = SetAssociativeCache(16, 2, TraditionalIndexing(16))
        with pytest.raises(ValueError):
            MultiLevelHierarchy([(l1, 64), (l2, 32)])

    def test_repr_names_levels(self):
        assert "L1 -> L2 -> L3" in repr(make_three_level())


class TestAccessFlow:
    def test_cold_goes_to_memory(self):
        h = make_three_level()
        out = h.access(0x1000)
        assert out.level == "mem"
        assert out.memory_reads == [0x1000 >> 6]

    def test_warm_hits_l1(self):
        h = make_three_level()
        h.access(0x1000)
        assert h.access(0x1000).level == "l1"

    def test_l2_hit_after_l1_eviction(self):
        h = make_three_level()
        # L1 blocks 0, 4, 8 share L1 set 0; L2 blocks 0, 2, 4 differ.
        h.access(0)
        h.access(128)
        out = h.access(256)
        assert out.level == "mem"
        assert h.access(0).level == "l2"

    def test_l3_hit_after_l2_eviction(self):
        h = make_three_level()
        # L2 blocks 0, 16, 32 share L2 set 0 (16 sets); L3 (64 sets)
        # keeps them in sets 0, 16, 32.  L1 blocks 0, 32, 64 share set 0.
        h.access(0)
        h.access(1024)
        h.access(2048)          # evicts block 0 from L1 and L2
        out = h.access(0)
        assert out.level == "l3"
        assert not out.touched_memory

    def test_negative_address(self):
        with pytest.raises(ValueError):
            make_three_level().access(-1)


class TestWritebacks:
    def test_dirty_chain_to_memory(self):
        h = make_three_level()
        h.access(0, is_write=True)
        # Storm every level's set 0 aliases to push block 0 out of all
        # three levels; 64-set L3 with 2 ways -> aliases 4096B apart.
        for i in range(1, 9):
            h.access(i * 4096)
        writes = []
        for i in range(9, 12):
            writes += h.access(i * 4096).memory_writes
        # Block 0 (dirty) must eventually reach memory exactly once.
        total_writes = writes
        h2 = make_three_level()  # sanity: clean run produces no writes
        for i in range(12):
            assert not h2.access(i * 4096 + 64).memory_writes

    def test_memory_reads_match_l3_misses_for_reads(self):
        h = make_three_level()
        reads = 0
        for i in range(500):
            reads += len(h.access(i * 96).memory_reads)
        assert reads == h.caches[2].stats.misses


class TestAgainstTwoLevel:
    def test_degenerates_to_cache_hierarchy(self):
        """With two levels it must match CacheHierarchy access levels."""
        from repro.cache import CacheHierarchy
        l1a = SetAssociativeCache(4, 2, TraditionalIndexing(4))
        l2a = SetAssociativeCache(16, 2, TraditionalIndexing(16))
        two = CacheHierarchy(l1a, l2a, 32, 64)
        l1b = SetAssociativeCache(4, 2, TraditionalIndexing(4))
        l2b = SetAssociativeCache(16, 2, TraditionalIndexing(16))
        multi = MultiLevelHierarchy([(l1b, 32), (l2b, 64)])
        import numpy as np
        rng = np.random.default_rng(4)
        for addr in rng.integers(0, 1 << 14, size=2000):
            a = two.access(int(addr), bool(addr % 5 == 0))
            b = multi.access(int(addr), bool(addr % 5 == 0))
            assert a.level == b.level
            assert a.memory_reads == b.memory_reads
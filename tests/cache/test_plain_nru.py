"""Tests for the plain-NRU skewed bank policy."""

import numpy as np
import pytest

from repro.cache import SkewedAssociativeCache
from repro.hashing import SkewedXorFamily


class TestPlainNru:
    def make(self):
        return SkewedAssociativeCache(SkewedXorFamily(64, 4),
                                      replacement="nru")

    def test_registered(self):
        assert type(self.make().policy).__name__ == "PlainNruPolicy"

    def test_basic_hit_miss(self):
        cache = self.make()
        assert not cache.access(100).hit
        assert cache.access(100).hit

    def test_clears_candidate_bits_when_saturated(self):
        cache = self.make()
        fam = cache.family
        target = fam.indices(0)
        collisions = [a for a in range(100000)
                      if fam.indices(a) == target][:5]
        if len(collisions) < 5:
            pytest.skip("not enough full-collision addresses in range")
        for a in collisions[:4]:
            cache.access(a)  # all four frames filled and RU=1
        cache.access(collisions[4])  # forces clear-and-choose
        cold = [not cache.recently_used[b][target[b]] for b in range(4)]
        # Exactly the refilled frame is marked again; others cleared.
        assert sum(cold) == 3

    def test_accounting_conserved(self):
        cache = self.make()
        rng = np.random.default_rng(8)
        n = 3000
        for a in rng.integers(0, 4000, size=n):
            cache.access(int(a))
        assert cache.stats.hits + cache.stats.misses == n

    def test_behaves_like_enru_in_the_ballpark(self):
        """The pseudo-LRU family tracks itself: plain NRU's miss count
        stays within ~35% of ENRU's on random traffic."""
        rng = np.random.default_rng(9)
        addrs = rng.integers(0, 2000, size=20000)
        results = {}
        for policy in ("enru", "nru"):
            cache = SkewedAssociativeCache(SkewedXorFamily(64, 4),
                                           replacement=policy)
            for a in addrs:
                cache.access(int(a))
            results[policy] = cache.stats.misses
        ratio = results["nru"] / results["enru"]
        assert 0.7 < ratio < 1.35

"""Tests for the victim cache."""

import pytest

from repro.cache import SetAssociativeCache, VictimCache
from repro.hashing import TraditionalIndexing


def make(n_sets=16, assoc=1, entries=2):
    main = SetAssociativeCache(n_sets, assoc, TraditionalIndexing(n_sets))
    return VictimCache(main, n_victim_entries=entries)


class TestVictimCache:
    def test_rejects_empty_buffer(self):
        with pytest.raises(ValueError):
            make(entries=0)

    def test_cold_miss(self):
        vc = make()
        assert not vc.access(0).hit

    def test_recent_eviction_hits_buffer(self):
        vc = make()
        vc.access(0)
        vc.access(16)        # evicts 0 into the buffer
        result = vc.access(0)  # victim hit: counts as a hit
        assert result.hit
        assert vc.victim_hits == 1

    def test_two_block_pingpong_fully_absorbed(self):
        """The canonical victim-cache win: two conflicting lines
        alternate; after warmup every access hits."""
        vc = make()
        for _ in range(20):
            vc.access(0)
            vc.access(16)
        stats = vc.stats
        assert stats.misses == 2          # the two cold misses only
        assert stats.hits == 38

    def test_wide_conflict_overwhelms_buffer(self):
        """More conflicting lines than buffer entries: the buffer can't
        keep up — exactly why indexing beats buffering at scale."""
        vc = make(entries=2)
        lines = [0, 16, 32, 48, 64]       # 5 aliases, 1 way + 2 entries
        for _ in range(10):
            for line in lines:
                vc.access(line)
        assert vc.stats.miss_rate > 0.9

    def test_buffer_overflow_surfaces_as_eviction(self):
        vc = make(entries=1)
        vc.access(0)
        vc.access(16)                     # 0 -> buffer
        result = vc.access(32)            # 16 -> buffer, 0 overflows
        assert result.victim_block == 0

    def test_dirty_travels_through_buffer(self):
        vc = make(entries=1)
        vc.access(0, is_write=True)
        vc.access(16)                     # dirty 0 -> buffer
        vc.access(0)                      # promoted back, still dirty
        vc.access(16)                     # 0 evicted again, dirty
        result = vc.access(32)            # 0 overflows: must write back
        assert result.victim_block == 0
        assert result.writeback

    def test_contains_covers_buffer(self):
        vc = make()
        vc.access(0)
        vc.access(16)
        assert vc.contains(0)             # in buffer
        assert vc.contains(16)            # in main

    def test_capacity_accounts_buffer(self):
        assert make(n_sets=16, assoc=1, entries=2).n_blocks == 18

    def test_stats_stay_consistent(self):
        vc = make(entries=4)
        n = 0
        for i in range(300):
            vc.access((i * 16) % 128)
            n += 1
        s = vc.stats
        assert s.hits + s.misses == n

    def test_works_as_l2_in_hierarchy(self):
        from repro.cache import CacheHierarchy
        l1 = SetAssociativeCache(4, 2, TraditionalIndexing(4))
        vc = make(n_sets=16, assoc=2, entries=4)
        h = CacheHierarchy(l1, vc, l1_block_bytes=32, l2_block_bytes=64)
        out = h.access(0x4000)
        assert out.level == "mem"
        assert h.access(0x4000).level == "l1"

"""Tests for the two-level write-back hierarchy."""

import pytest

from repro.cache import (
    CacheHierarchy,
    FullyAssociativeCache,
    SetAssociativeCache,
    SkewedAssociativeCache,
)
from repro.hashing import SkewedXorFamily, TraditionalIndexing


def make_hierarchy(l2=None):
    """Small hierarchy: L1 4 sets x 2 way x 32B; L2 16 sets x 2 way x 64B."""
    l1 = SetAssociativeCache(4, 2, TraditionalIndexing(4), name="L1")
    if l2 is None:
        l2 = SetAssociativeCache(16, 2, TraditionalIndexing(16), name="L2")
    return CacheHierarchy(l1, l2, l1_block_bytes=32, l2_block_bytes=64)


class TestLevels:
    def test_cold_access_goes_to_memory(self):
        h = make_hierarchy()
        outcome = h.access(0x1000)
        assert outcome.level == "mem"
        assert outcome.memory_reads == [0x1000 >> 6]

    def test_second_access_hits_l1(self):
        h = make_hierarchy()
        h.access(0x1000)
        assert h.access(0x1000).level == "l1"

    def test_l2_hit_after_l1_eviction(self):
        h = make_hierarchy()
        # L1 blocks 0, 4, 8 all map to L1 set 0; L2 blocks 0, 2, 4 map
        # to distinct L2 sets, so block 0 survives in L2.
        h.access(0)
        h.access(128)
        h.access(256)             # evicts L1 block 0
        outcome = h.access(0)
        assert outcome.level == "l2"
        assert not outcome.touched_memory

    def test_same_l2_block_two_l1_blocks(self):
        """Two adjacent 32B lines share one 64B L2 line."""
        h = make_hierarchy()
        h.access(0)
        outcome = h.access(32)
        assert outcome.level == "l2"  # L1 miss, L2 hit (same 64B block)

    def test_rejects_negative_address(self):
        h = make_hierarchy()
        with pytest.raises(ValueError):
            h.access(-1)

    def test_rejects_l2_lines_smaller_than_l1(self):
        l1 = SetAssociativeCache(4, 2, TraditionalIndexing(4))
        l2 = SetAssociativeCache(16, 2, TraditionalIndexing(16))
        with pytest.raises(ValueError):
            CacheHierarchy(l1, l2, l1_block_bytes=64, l2_block_bytes=32)


class TestWritebackFlow:
    def test_dirty_l1_victim_written_to_l2(self):
        h = make_hierarchy()
        h.access(0, is_write=True)
        h.access(4096)
        before = h.l2.stats.writes
        h.access(8192)  # evicts dirty L1 block 0 -> L2 write
        assert h.l2.stats.writes == before + 1

    def test_dirty_l2_victim_goes_to_memory(self):
        h = make_hierarchy()
        h.access(0, is_write=True)
        # Evict block 0 from L1 (dirty -> L2 now dirty), then storm L2
        # set 0 to evict it from L2.
        h.access(4096)
        h.access(8192)
        writes = []
        for i in range(1, 8):
            out = h.access(i * 1024)  # L2 set 0 under traditional (16 sets*64B)
            writes += out.memory_writes
        assert 0 in writes  # block 0 eventually written back to DRAM

    def test_l1_victim_allocating_in_l2_fetches_from_memory(self):
        """A dirty L1 victim that misses L2 must allocate: memory read."""
        h = make_hierarchy()
        h.access(0, is_write=True)   # L1 block 0 dirty; L2 block 0 resident
        h.l2.invalidate(0)           # model L2 losing the line
        h.access(128)                # L1 set 0 fills second way
        out = h.access(256)          # evicts dirty L1 block 0 -> L2 write miss
        assert 0 in out.memory_reads  # write-allocate fill


class TestAlternativeL2s:
    def test_fully_associative_l2(self):
        l2 = FullyAssociativeCache(32)
        h = make_hierarchy(l2=l2)
        h.access(0)
        h.access(4096)
        h.access(8192)
        assert h.access(0).level == "l2"

    def test_skewed_l2(self):
        l2 = SkewedAssociativeCache(SkewedXorFamily(8, 4))
        h = make_hierarchy(l2=l2)
        out = h.access(0x2040)
        assert out.level == "mem"
        h.access(0x2040)
        assert h.access(0x2040).level == "l1"

    def test_memory_traffic_conservation(self):
        """Every memory read corresponds to an L2 miss (incl. allocate-on-
        write misses)."""
        h = make_hierarchy()
        reads = 0
        for a in range(0, 65536, 32):
            reads += len(h.access(a, is_write=(a % 96 == 0)).memory_reads)
        assert reads == h.l2.stats.misses

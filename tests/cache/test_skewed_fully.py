"""Tests for the skewed associative and fully associative caches."""

import numpy as np
import pytest

from repro.cache import (
    FullyAssociativeCache,
    SetAssociativeCache,
    SkewedAssociativeCache,
)
from repro.hashing import (
    SkewedPrimeDisplacementFamily,
    SkewedXorFamily,
    TraditionalIndexing,
)


class TestFullyAssociative:
    def test_lru_over_whole_cache(self):
        fa = FullyAssociativeCache(3)
        for a in (1, 2, 3):
            fa.access(a)
        fa.access(1)          # refresh 1; LRU is now 2
        result = fa.access(4)
        assert result.victim_block == 2

    def test_no_conflict_misses(self):
        """Any footprint that fits incurs only compulsory misses."""
        fa = FullyAssociativeCache(64)
        footprint = [i * 4096 for i in range(64)]  # horrible for set-assoc
        for _ in range(5):
            for a in footprint:
                fa.access(a)
        assert fa.stats.misses == 64

    def test_writeback_on_dirty_eviction(self):
        fa = FullyAssociativeCache(1)
        fa.access(1, is_write=True)
        result = fa.access(2)
        assert result.writeback and result.victim_block == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            FullyAssociativeCache(0)

    def test_contains(self):
        fa = FullyAssociativeCache(2)
        fa.access(7)
        assert fa.contains(7)
        assert not fa.contains(8)


class TestSkewedAssociative:
    @pytest.fixture(params=["enru", "nrunrw"])
    def cache(self, request):
        return SkewedAssociativeCache(
            SkewedPrimeDisplacementFamily(64, 4), replacement=request.param
        )

    def test_cold_miss_then_hit(self, cache):
        assert not cache.access(1000).hit
        assert cache.access(1000).hit

    def test_unknown_policy(self):
        with pytest.raises(KeyError, match="unknown skewed replacement"):
            SkewedAssociativeCache(SkewedXorFamily(64, 4), replacement="lru")

    def test_capacity(self, cache):
        assert cache.n_blocks == 256

    def test_write_then_evict_writes_back(self):
        """Fill one candidate frame dirty, then force eviction pressure."""
        cache = SkewedAssociativeCache(SkewedXorFamily(16, 2))
        cache.access(5, is_write=True)
        # Saturate the cache so 5's frames get reclaimed eventually.
        for a in range(6, 600):
            cache.access(a)
        assert cache.stats.writebacks >= 1

    def test_skewing_beats_conventional_on_conflict_storm(self):
        """Blocks that all collide in a 4-way conventional cache spread
        across banks in a skewed cache: the motivating behavior."""
        n_sets = 64
        conventional = SetAssociativeCache(n_sets, 4, TraditionalIndexing(n_sets))
        skewed = SkewedAssociativeCache(SkewedPrimeDisplacementFamily(n_sets, 4))
        footprint = [i * n_sets for i in range(8)]  # 8 blocks, one set
        for _ in range(50):
            for a in footprint:
                conventional.access(a)
                skewed.access(a)
        assert skewed.stats.misses < conventional.stats.misses

    def test_stats_conserved(self, cache):
        rng = np.random.default_rng(2)
        n = 2000
        for a in rng.integers(0, 5000, size=n):
            cache.access(int(a))
        s = cache.stats
        assert s.hits + s.misses == n
        assert s.set_accesses.sum() == n

    def test_hit_refreshes_recency(self):
        cache = SkewedAssociativeCache(SkewedXorFamily(16, 2), replacement="enru")
        cache.access(3)
        idx = cache.family.indices(3)
        # The filled frame is marked recently used in whichever bank holds it.
        assert any(
            cache.recently_used[b][idx[b]] and cache.contains(3)
            for b in range(2)
        )

    def test_nrunrw_prefers_clean_victims(self):
        """With one dirty and one clean candidate, NRUNRW must evict the
        clean one once RU bits tie."""
        fam = SkewedXorFamily(4, 2)
        cache = SkewedAssociativeCache(fam, replacement="nrunrw")
        # Find three blocks with identical (bank0, bank1) index pairs.
        target = fam.indices(0)
        collisions = [a for a in range(4096) if fam.indices(a) == target]
        a, b, c = collisions[:3]
        cache.access(a, is_write=True)   # dirty
        cache.access(b)                  # clean, fills the other bank
        # Sweep RU bits so both candidates are cold.
        for bank_ru in cache.recently_used:
            for i in range(len(bank_ru)):
                bank_ru[i] = False
        result = cache.access(c)
        assert result.victim_block == b  # the clean one
        assert not result.writeback

"""Tests for the conventional set-associative cache."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import SetAssociativeCache
from repro.hashing import (
    PrimeModuloIndexing,
    TraditionalIndexing,
    XorIndexing,
)


def make_cache(n_sets=16, assoc=2, indexing_cls=TraditionalIndexing, **kw):
    return SetAssociativeCache(n_sets, assoc, indexing_cls(n_sets), **kw)


class TestBasics:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        assert not cache.access(100).hit
        assert cache.access(100).hit

    def test_geometry_validation(self):
        with pytest.raises(ValueError, match="physical"):
            SetAssociativeCache(32, 2, TraditionalIndexing(16))
        with pytest.raises(ValueError, match="associativity"):
            make_cache(assoc=0)

    def test_n_blocks(self):
        assert make_cache(n_sets=16, assoc=2).n_blocks == 32

    def test_conflict_eviction_direct_mapped(self):
        cache = make_cache(n_sets=16, assoc=1)
        cache.access(0)
        result = cache.access(16)  # same set under traditional indexing
        assert not result.hit
        assert result.victim_block == 0
        assert not cache.access(0).hit  # evicted

    def test_associativity_prevents_conflict(self):
        cache = make_cache(n_sets=16, assoc=2)
        cache.access(0)
        cache.access(16)
        assert cache.access(0).hit
        assert cache.access(16).hit

    def test_lru_within_set(self):
        cache = make_cache(n_sets=16, assoc=2)
        cache.access(0)
        cache.access(16)
        cache.access(0)        # 16 is now LRU
        result = cache.access(32)
        assert result.victim_block == 16

    def test_contains_is_side_effect_free(self):
        cache = make_cache()
        cache.access(5)
        before = cache.stats.accesses
        assert cache.contains(5)
        assert not cache.contains(6)
        assert cache.stats.accesses == before

    def test_invalidate(self):
        cache = make_cache()
        cache.access(5, is_write=True)
        assert cache.invalidate(5) is True  # was dirty
        assert not cache.contains(5)
        assert cache.invalidate(5) is False


class TestWriteback:
    def test_clean_eviction_no_writeback(self):
        cache = make_cache(n_sets=16, assoc=1)
        cache.access(0)
        result = cache.access(16)
        assert not result.writeback

    def test_dirty_eviction_writes_back(self):
        cache = make_cache(n_sets=16, assoc=1)
        cache.access(0, is_write=True)
        result = cache.access(16)
        assert result.writeback
        assert cache.stats.writebacks == 1

    def test_write_hit_marks_dirty(self):
        cache = make_cache(n_sets=16, assoc=1)
        cache.access(0)
        cache.access(0, is_write=True)
        assert cache.access(16).writeback

    def test_read_after_dirty_fill_keeps_dirty(self):
        cache = make_cache(n_sets=16, assoc=1)
        cache.access(0, is_write=True)
        cache.access(0)  # read hit must not clear dirty
        assert cache.access(16).writeback


class TestStats:
    def test_counts(self):
        cache = make_cache()
        cache.access(0)
        cache.access(0)
        cache.access(1, is_write=True)
        s = cache.stats
        assert s.reads == 2 and s.writes == 1
        assert s.hits == 1 and s.misses == 2
        assert s.miss_rate == pytest.approx(2 / 3)

    def test_per_set_counters(self):
        cache = make_cache(n_sets=16, assoc=1)
        cache.access(3)
        cache.access(3)
        cache.access(19)
        assert cache.stats.set_accesses[3] == 3
        assert cache.stats.set_misses[3] == 2

    def test_reset(self):
        cache = make_cache()
        cache.access(0)
        cache.stats.reset()
        assert cache.stats.accesses == 0
        assert cache.stats.set_accesses.sum() == 0


class TestPrimeModuloCache:
    def test_uses_only_prime_sets(self):
        pm = PrimeModuloIndexing(16, n_sets=13)
        cache = SetAssociativeCache(16, 2, pm)
        for addr in range(200):
            cache.access(addr)
        assert len(cache.stats.set_accesses) == 13

    def test_conflict_free_power_of_two_stride(self):
        """The headline behavior: power-of-two strides thrash a
        traditional cache but spread perfectly under prime modulo."""
        trad = make_cache(n_sets=64, assoc=2)
        pm = SetAssociativeCache(64, 2, PrimeModuloIndexing(64))
        footprint = [i * 64 for i in range(64)]  # 64 blocks, all -> set 0
        for _ in range(10):
            for addr in footprint:
                trad.access(addr)
                pm.access(addr)
        assert trad.stats.miss_rate == 1.0           # pure thrashing
        assert pm.stats.hits > pm.stats.misses       # mostly hits after warmup


class TestEquivalenceAcrossIndexing:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 4095), st.booleans()),
                    min_size=1, max_size=300))
    def test_total_accesses_conserved(self, trace):
        """Whatever the indexing, every access is counted exactly once
        and hits + misses == accesses."""
        for idx_cls in (TraditionalIndexing, XorIndexing, PrimeModuloIndexing):
            cache = SetAssociativeCache(16, 2, idx_cls(16))
            for addr, w in trace:
                cache.access(addr, is_write=w)
            s = cache.stats
            assert s.hits + s.misses == len(trace)
            assert s.set_accesses.sum() == len(trace)
            assert s.set_misses.sum() == s.misses

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 1023), min_size=1, max_size=300))
    def test_residency_matches_rereference(self, addrs):
        """contains() after the trace agrees with an immediate re-access
        hitting (for a read-only trace)."""
        cache = SetAssociativeCache(16, 4, PrimeModuloIndexing(16))
        for a in addrs:
            cache.access(a)
        for a in set(addrs):
            resident = cache.contains(a)
            hit = cache.access(a).hit
            if resident:
                assert hit

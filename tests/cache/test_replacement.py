"""Tests for the per-set replacement policies."""

import pytest

from repro.cache import (
    FIFOPolicy,
    LRUPolicy,
    NRUPolicy,
    RandomPolicy,
    TreePLRUPolicy,
    make_replacement,
)


class TestMakeReplacement:
    def test_known_keys(self):
        for key in ("lru", "plru", "nru", "fifo", "random"):
            assert make_replacement(key, 4, 4).assoc == 4

    def test_unknown_key(self):
        with pytest.raises(KeyError, match="unknown replacement"):
            make_replacement("belady", 4, 4)

    def test_rejects_degenerate_geometry(self):
        with pytest.raises(ValueError):
            LRUPolicy(0, 4)
        with pytest.raises(ValueError):
            LRUPolicy(4, 0)


class TestLRU:
    def test_victim_is_least_recent(self):
        lru = LRUPolicy(1, 4)
        for way in (0, 1, 2, 3):
            lru.on_fill(0, way)
        lru.on_hit(0, 0)
        assert lru.victim(0) == 1

    def test_sets_are_independent(self):
        lru = LRUPolicy(2, 2)
        lru.on_hit(0, 1)
        assert lru.victim(1) == 0

    def test_full_access_cycle(self):
        lru = LRUPolicy(1, 3)
        lru.on_fill(0, 0)
        lru.on_fill(0, 1)
        lru.on_fill(0, 2)
        assert lru.victim(0) == 0
        lru.on_hit(0, 0)
        assert lru.victim(0) == 1


class TestTreePLRU:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            TreePLRUPolicy(1, 3)

    def test_victim_avoids_recent(self):
        plru = TreePLRUPolicy(1, 4)
        plru.on_hit(0, 2)
        assert plru.victim(0) != 2

    def test_round_robin_like_coverage(self):
        """Touching each victim in turn must cycle through all ways."""
        plru = TreePLRUPolicy(1, 8)
        seen = set()
        for _ in range(8):
            v = plru.victim(0)
            seen.add(v)
            plru.on_fill(0, v)
        assert seen == set(range(8))

    def test_direct_mapped_degenerate(self):
        plru = TreePLRUPolicy(1, 1)
        plru.on_hit(0, 0)
        assert plru.victim(0) == 0


class TestNRU:
    def test_prefers_unreferenced(self):
        nru = NRUPolicy(1, 4)
        nru.on_fill(0, 0)
        nru.on_fill(0, 1)
        assert nru.victim(0) == 2

    def test_clears_when_all_referenced(self):
        nru = NRUPolicy(1, 2)
        nru.on_fill(0, 0)
        nru.on_fill(0, 1)  # all marked -> sweep, keeping way 1
        assert nru.victim(0) == 0


class TestFIFO:
    def test_ignores_hits(self):
        fifo = FIFOPolicy(1, 2)
        fifo.on_fill(0, 0)
        fifo.on_hit(0, 1)  # no effect
        assert fifo.victim(0) == 1

    def test_cycles(self):
        fifo = FIFOPolicy(1, 3)
        for expected in (0, 1, 2, 0):
            v = fifo.victim(0)
            assert v == expected
            fifo.on_fill(0, v)


class TestRandom:
    def test_deterministic_sequence(self):
        a = RandomPolicy(1, 4)
        b = RandomPolicy(1, 4)
        assert [a.victim(0) for _ in range(20)] == [b.victim(0) for _ in range(20)]

    def test_in_range(self):
        rnd = RandomPolicy(1, 4)
        assert all(0 <= rnd.victim(0) < 4 for _ in range(100))

    def test_covers_all_ways(self):
        rnd = RandomPolicy(1, 4)
        assert {rnd.victim(0) for _ in range(200)} == {0, 1, 2, 3}

"""Walk through the paper's fast prime-modulo hardware (Section 3.1).

Demonstrates, for the paper's 2048-set / 2039-prime L2 geometry:

1. the polynomial method computing an index with shifts, adds and a
   2-input subtract&select (Figures 3-4), checked against true modulo;
2. Theorem 1's iteration bounds for the iterative linear method on
   32- and 64-bit machines;
3. the TLB-cached variant that leaves almost no work on the L1-miss
   path (Section 3.1.1);
4. the adder-cost comparison across schemes.

Run:  python examples/hardware_walkthrough.py
"""

from repro.hardware import (
    IterativeLinearUnit,
    PolynomialModUnit,
    TlbCachedPrimeModulo,
    iterations_required,
    prime_displacement_cost,
    prime_modulo_iterative_cost,
    prime_modulo_polynomial_cost,
    traditional_cost,
    xor_cost,
)
from repro.mathutil import split_address


def polynomial_walkthrough() -> None:
    unit = PolynomialModUnit(2048, address_bits=32, block_bytes=64)
    block_address = 0x2AB_CDEF % (1 << 26)
    x, chunks = split_address(block_address, 11, 26)
    print("Polynomial method (Equation 4):")
    print(f"  block address  = {block_address:#x}")
    print(f"  x  (bits 0-10) = {x}")
    for j, t in enumerate(chunks, start=1):
        print(f"  t{j} chunk      = {t}  (contributes t{j} * Δ^{j} "
              f"= {t} * 9^{j})")
    index = unit.compute(block_address)
    print(f"  index          = {index}   (true modulo: "
          f"{block_address % 2039})")
    s = unit.last_stats
    print(f"  hardware work: {s.adds} adds, {s.shifts} wired shifts, "
          f"{s.folds} carry folds, {unit.selector.n_inputs}-input selector\n")


def theorem_walkthrough() -> None:
    print("Theorem 1 (iterative linear iteration bounds):")
    for bits, sel in ((32, 3), (64, 3), (64, 258)):
        iters = iterations_required(bits, 64, 2048, selector_inputs=sel)
        print(f"  {bits}-bit machine, {sel}-input selector: "
              f"{iters} iteration(s)")
    unit = IterativeLinearUnit(2048, address_bits=64, block_bytes=64,
                               selector_inputs=3)
    unit.compute((1 << 57) + 12345)
    print(f"  (measured on a 58-bit block address: "
          f"{unit.last_counts.iterations} iterations)\n")


def tlb_walkthrough() -> None:
    tlb = TlbCachedPrimeModulo(2048, page_bytes=4096, block_bytes=64,
                               tlb_entries=64)
    for addr in (0x1000_0040, 0x1000_0080, 0x2000_0040, 0x1000_00C0):
        idx = tlb.index_for_address(addr)
        print(f"  address {addr:#x} -> L2 set {idx}")
    print(f"TLB-cached path: {tlb.stats.hits} hits / "
          f"{tlb.stats.misses} misses; on an L1 miss only one narrow add "
          f"+ a {tlb.selector.n_inputs}-input select remains.\n")


def cost_comparison() -> None:
    print("Adder-cost comparison (32-bit / 64-bit machines):")
    print(f"  {'scheme':18s} {'adders32':>9s} {'stages32':>9s} "
          f"{'adders64':>9s} {'stages64':>9s}")
    rows = [
        ("Base", traditional_cost(2048), traditional_cost(2048)),
        ("XOR", xor_cost(2048), xor_cost(2048)),
        ("pDisp", prime_displacement_cost(2048),
         prime_displacement_cost(2048)),
        ("pMod/polynomial", prime_modulo_polynomial_cost(2048, 32),
         prime_modulo_polynomial_cost(2048, 64)),
        ("pMod/iterative", prime_modulo_iterative_cost(2048, 32),
         prime_modulo_iterative_cost(2048, 64)),
    ]
    for name, c32, c64 in rows:
        print(f"  {name:18s} {c32.adders:9d} {c32.adder_stages:9d} "
              f"{c64.adders:9d} {c64.adder_stages:9d}")
    print("\npDisp's cost is width-independent (Section 3.2); pMod pays "
          "more on 64-bit machines but stays a handful of narrow adds.")


def main() -> None:
    polynomial_walkthrough()
    theorem_walkthrough()
    print("TLB-cached prime modulo (Section 3.1.1):")
    tlb_walkthrough()
    cost_comparison()


if __name__ == "__main__":
    main()

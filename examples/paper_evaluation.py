"""Run the paper's full evaluation pipeline end to end (scaled down).

Regenerates every table and figure at a reduced trace scale so the
whole thing completes in a few minutes; pass ``--scale 1.0`` for the
full-length traces used by EXPERIMENTS.md.

Run:  python examples/paper_evaluation.py [--scale 0.25] [--seed 0]
      [--jobs 4] [--cache-dir .repro-cache]
"""

from repro.experiments import (
    fragmentation,
    machine,
    miss_distribution,
    miss_reduction,
    multi_hash,
    qualitative,
    single_hash,
    stride_sweep,
    summary,
)
from repro.experiments.common import context_from_args, standard_argparser


def main() -> None:
    parser = standard_argparser(__doc__)
    parser.set_defaults(scale=0.25)
    parser.add_argument("--parallel", type=int, default=0, metavar="N",
                        help="deprecated alias for --jobs N")
    args = parser.parse_args()
    if args.parallel and not (args.jobs and args.jobs > 1):
        args.jobs = args.parallel
    engine = context_from_args(args).engine
    config = engine.config
    if engine.jobs > 1:
        from repro.cpu import SCHEMES
        from repro.workloads import all_workload_names
        print(f"Pre-simulating the 23x{len(SCHEMES)} grid with "
              f"{engine.jobs} workers...")
        engine.run_grid(all_workload_names(), SCHEMES)
    store = engine  # shared across all simulation figures

    print(fragmentation.render(fragmentation.run()), "\n")
    print(qualitative.render(qualitative.run()), "\n")
    print(machine.render(), "\n")

    print("Running stride sweeps (Figures 5-6)...")
    # An odd step samples both parities (an even step would only ever
    # hit odd strides and hide traditional indexing's failures).
    print(stride_sweep.render(stride_sweep.run(stride_step=3)), "\n")

    print(f"Simulating 23 workloads x 8 cache schemes "
          f"(scale {config.scale}); this is the long part...")
    fig7, fig8 = single_hash.run(config, store)
    print(single_hash.render(fig7), "\n")
    print(single_hash.render(fig8), "\n")

    fig9, fig10 = multi_hash.run(config, store)
    print(single_hash.render(fig9), "\n")
    print(single_hash.render(fig10), "\n")

    fig11, fig12 = miss_reduction.run(config, store)
    print(miss_reduction.render(fig11), "\n")
    print(miss_reduction.render(fig12), "\n")

    print(miss_distribution.render(miss_distribution.run(config)), "\n")
    print(summary.render(summary.run(config, store)))


if __name__ == "__main__":
    main()

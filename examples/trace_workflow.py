"""Trace workflow: generate, persist, exchange, and re-simulate traces.

Shows the trace I/O surface: caching a generated workload trace as a
compressed .npz, exporting it in the classic Dinero text format for
other cache simulators, and importing a Dinero trace to drive this one.

Run:  python examples/trace_workflow.py
"""

import io
import tempfile
from pathlib import Path

from repro.cpu import simulate_scheme
from repro.trace import (
    load_trace_npz,
    read_dinero,
    save_trace_npz,
    write_dinero,
)
from repro.workloads import get_workload


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-traces-"))

    # 1. Generate a deterministic workload trace and cache it on disk.
    trace = get_workload("mcf").trace(scale=0.1, seed=42)
    npz_path = workdir / "mcf.npz"
    save_trace_npz(trace, npz_path)
    reloaded = load_trace_npz(npz_path)
    print(f"Cached {reloaded!r} -> {npz_path} "
          f"({npz_path.stat().st_size / 1024:.0f} KiB)")

    # 2. Export for another simulator (Dinero 'label address' format).
    din_path = workdir / "mcf.din"
    with open(din_path, "w") as stream:
        records = write_dinero(reloaded, stream)
    print(f"Exported {records} Dinero records -> {din_path}")
    print("First lines:")
    with open(din_path) as stream:
        for _ in range(3):
            print("  " + next(stream).rstrip())

    # 3. Import a (here: hand-written) Dinero trace and simulate it:
    # 32 lines spaced 128 KB apart, revisited 60 times — all aliases of
    # one traditional set.
    lines = [f"{i % 3 == 0:d} {i * 131072:x}" for i in range(1, 33)]
    foreign = io.StringIO("\n".join(lines * 60))
    imported = read_dinero(foreign, name="foreign-trace")
    base = simulate_scheme(imported, "base")
    pmod = simulate_scheme(imported, "pmod")
    print(f"\nImported trace: {imported!r}")
    print(f"  Base  L2 misses: {base.l2_misses}")
    print(f"  pMod  L2 misses: {pmod.l2_misses}")
    print(f"  (128 KB-strided writes: the classic set-alias pattern "
          f"pMod untangles: {base.l2_misses / max(1, pmod.l2_misses):.1f}x)")


if __name__ == "__main__":
    main()

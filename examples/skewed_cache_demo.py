"""Skewed associative caches: when one hashing function is not enough.

Reproduces Section 5.3's observation in miniature: an over-capacity
cyclic working set defeats *every* single-hash LRU cache (LRU's worst
case), but a skewed associative cache with pseudo-LRU replacement
retains most of it — while the same imprecise replacement hurts a
well-behaved resident working set (the pathological flip side).

Run:  python examples/skewed_cache_demo.py
"""

from repro.cache import SetAssociativeCache, SkewedAssociativeCache
from repro.hashing import (
    PrimeModuloIndexing,
    SkewedPrimeDisplacementFamily,
    TraditionalIndexing,
)
from repro.workloads.patterns import cyclic_sweep, shuffled_cycles


def build_caches():
    n_sets, banks = 2048, 4
    return {
        "Base (LRU)": SetAssociativeCache(n_sets, 4, TraditionalIndexing(n_sets)),
        "pMod (LRU)": SetAssociativeCache(n_sets, 4, PrimeModuloIndexing(n_sets)),
        "skw+pDisp (ENRU)": SkewedAssociativeCache(
            SkewedPrimeDisplacementFamily(n_sets, banks)
        ),
    }


def drive(caches, addresses, label, warmup=None):
    if warmup is not None:
        for address in warmup:
            for cache in caches.values():
                cache.access(int(address) >> 6)
    for cache in caches.values():
        cache.stats.reset()
    for address in addresses:
        block = int(address) >> 6
        for cache in caches.values():
            cache.access(block)
    print(f"\n{label}")
    for name, cache in caches.items():
        print(f"  {name:18s} miss rate {cache.stats.miss_rate:7.1%}")


def main() -> None:
    print("All caches: 512 KB (8192 blocks), 4 ways/banks.")

    # Case 1: cyclic sweep of 9000 blocks (1.1x capacity): LRU evicts
    # every block moments before its reuse; ENRU's imprecision saves it.
    caches = build_caches()
    sweep = cyclic_sweep(9000, repeats=6, permute_seed=7)
    drive(caches, sweep, "Over-capacity cyclic sweep (9000 blocks x 6):")
    print("  -> only the skewed cache escapes LRU's worst case "
          "(cg/mst, Section 5.3)")

    # Case 2: well-behaved resident working set: LRU keeps it perfectly,
    # pseudo-LRU randomly evicts live lines.
    caches = build_caches()
    resident = shuffled_cycles(6144, count=60000, seed=11)
    warmup = shuffled_cycles(6144, count=6144, seed=10)
    drive(caches, resident,
          "Resident working set (6144 blocks, reused, after warm-up):",
          warmup=warmup)
    print("  -> pseudo-LRU pays: the pathological behavior of skewed "
          "caches on uniform apps (Figures 10/12)")


if __name__ == "__main__":
    main()

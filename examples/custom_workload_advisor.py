"""Model your own kernel, get an indexing recommendation, verify it.

Workflow a cache architect would actually use:

1. Describe the kernel's access structure declaratively
   (CompositeWorkload).
2. Extract its stride spectrum and score every indexing function
   against it (the Section 2 metrics as a *predictor*).
3. Verify the prediction with a full hierarchy simulation.

Run:  python examples/custom_workload_advisor.py
"""

from repro.cpu import simulate_scheme
from repro.hashing import score_indexings, stride_spectrum
from repro.workloads import CompositeWorkload


def main() -> None:
    # A made-up stencil kernel: resident coefficient table, two big
    # streams, and a power-of-two-pitched transpose that aliases sets.
    spec = [
        {"kind": "resident_gather", "share": 0.35, "blocks": 3000},
        {"kind": "stream", "share": 0.40, "arrays": 2, "array_kb": 4096,
         "element_bytes": 64},
        {"kind": "alias_columns", "share": 0.25, "rows": 12, "repeats": 5},
    ]
    workload = CompositeWorkload("stencil3d", spec, write_fraction=0.3)
    trace = workload.trace(scale=0.4, seed=7)
    print(f"Modeled kernel: {trace!r}\n")

    # 2. Predict from the stride spectrum.
    spectrum = stride_spectrum(trace.block_addresses(64))
    print("Dominant block strides:")
    for component in spectrum[:5]:
        print(f"  stride {component.stride:6d} blocks "
              f"({component.weight:.0%} of transitions)")
    scores = score_indexings(spectrum)
    print("\nPredicted quality score per indexing (1.0 = ideal):")
    for key, score in sorted(scores.items(), key=lambda kv: kv[1]):
        print(f"  {key:12s} {score:10.2f}")

    # 3. Verify with the simulator.
    print("\nSimulated execution (normalized to Base):")
    base = simulate_scheme(trace, "base")
    for scheme in ("8way", "xor", "pmod", "pdisp"):
        result = simulate_scheme(trace, scheme)
        print(f"  {scheme:6s} speedup {result.speedup_over(base):5.2f}, "
              f"misses {result.l2_misses / base.l2_misses:5.2f} of Base")
    print("\nThe spectrum predicted the winner without running a "
          "simulation — that is the paper's Section 2 analysis at work.")


if __name__ == "__main__":
    main()

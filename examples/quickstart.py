"""Quickstart: see prime modulo indexing eliminate conflict misses.

Builds two identical 512 KB L2 caches — one with traditional
power-of-two indexing, one with prime modulo indexing — and drives both
with a power-of-two strided access pattern (the pathological case for
traditional caches: every block lands in the same set).

Run:  python examples/quickstart.py
"""

from repro.cache import SetAssociativeCache
from repro.hashing import PrimeModuloIndexing, TraditionalIndexing
from repro.trace import strided_stream


def main() -> None:
    n_sets, assoc = 2048, 4

    base = SetAssociativeCache(n_sets, assoc, TraditionalIndexing(n_sets))
    pmod = SetAssociativeCache(n_sets, assoc, PrimeModuloIndexing(n_sets))
    print(f"Base cache: {base.n_blocks} blocks over {n_sets} sets "
          f"(traditional indexing)")
    print(f"pMod cache: {pmod.n_blocks} blocks over "
          f"{pmod.indexing.n_sets} usable sets "
          f"(fragmentation {pmod.indexing.fragmentation:.2%})")

    # 32 blocks spaced exactly one set-alias apart (128 KB): under
    # traditional indexing they all map to set 0 and thrash its 4 ways.
    footprint = strided_stream(base=0, stride_bytes=n_sets * 64, count=32)
    print(f"\nFootprint: 32 blocks, 128 KB apart, revisited 50 times")

    for _ in range(50):
        for address in footprint:
            block = int(address) >> 6
            base.access(block)
            pmod.access(block)

    print(f"\n{'':12s} {'accesses':>10s} {'misses':>10s} {'miss rate':>10s}")
    for cache in (base, pmod):
        stats = cache.stats
        print(f"{cache.name:12s} {stats.accesses:10d} {stats.misses:10d} "
              f"{stats.miss_rate:10.1%}")

    speeddown = base.stats.misses / max(1, pmod.stats.misses)
    print(f"\nPrime modulo indexing removed "
          f"{1 - pmod.stats.misses / base.stats.misses:.1%} of the misses "
          f"({speeddown:.0f}x fewer).")
    print("The same 32 blocks that fought over one traditional set spread "
          "across 32 prime-modulo sets.")


if __name__ == "__main__":
    main()

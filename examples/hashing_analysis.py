"""Analyze hashing quality for your own access pattern.

Shows the Section 2 metrics — balance and concentration — plus the
sequence-invariance property for all four single-hash functions on a
user-definable stride, and sweeps the stride range to find each
function's weak spots (the content of Figures 5-6).

Run:  python examples/hashing_analysis.py [stride]
"""

import sys

from repro.experiments.stride_sweep import default_hashes, run, render
from repro.hashing import (
    balance,
    concentration,
    is_sequence_invariant,
    strided_addresses,
)


def analyze_one_stride(stride: int) -> None:
    addrs = strided_addresses(stride, 32768)
    print(f"Stride {stride} ({32768} distinct block addresses), "
          f"2048 physical sets:\n")
    print(f"{'hash':12s} {'balance':>10s} {'concentration':>14s} "
          f"{'seq.invariant':>14s}")
    for name, h in default_hashes().items():
        b = balance(h, addrs)
        c = concentration(h, addrs)
        inv = is_sequence_invariant(h, addrs[:8192])
        print(f"{name:12s} {b:10.3f} {c:14.1f} {str(inv):>14s}")
    print("\nbalance: 1.0 is ideal (even spread); "
          "concentration: 0.0 is ideal (no bursts).")


def sweep_all_strides() -> None:
    print("\nSweeping strides 1..2047 (Figures 5 and 6)...\n")
    # Odd step: samples both stride parities (even steps never hit the
    # even strides where traditional indexing fails).
    results = run(max_stride=2047, n_addresses=8192, stride_step=3)
    print(render(results))
    print("\nWorst balance strides per hash:")
    for name, sweepres in results.items():
        print(f"  {name:12s} {sweepres.worst_balance_strides(3)}")


def main() -> None:
    stride = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
    analyze_one_stride(stride)
    sweep_all_strides()


if __name__ == "__main__":
    main()

"""Diagnose *which data* is fighting over your cache sets.

Uses the conflict-diagnosis tools on the tree workload: find the
hottest sets under traditional indexing, name the blocks crowding them
(arena-aligned tree cells), verify prime modulo disperses them, and
check the skewed families' inter-bank dispersion.

Run:  python examples/conflict_diagnosis.py
"""

from repro.hashing import (
    PrimeModuloIndexing,
    SkewedPrimeDisplacementFamily,
    SkewedXorFamily,
    TraditionalIndexing,
    inter_bank_dispersion,
    top_conflict_sets,
)
from repro.workloads import get_workload


def main() -> None:
    trace = get_workload("tree").trace(scale=0.2, seed=0)
    blocks = trace.block_addresses(64)

    print("Hottest traditional L2 sets for the tree workload:")
    for group in top_conflict_sets(TraditionalIndexing(2048), blocks, top=3,
                                   max_blocks_listed=64):
        sample = ", ".join(f"{b * 64:#x}" for b in group.blocks[:5])
        print(f"  set {group.set_index:4d}: {group.accesses:6d} accesses, "
              f"{group.pressure:3d} distinct lines (e.g. {sample}, ...)")
    print("  -> addresses 4 KB apart: the arena-aligned tree cells.\n")

    print("Same trace under prime modulo indexing:")
    for group in top_conflict_sets(PrimeModuloIndexing(2048), blocks, top=3):
        print(f"  set {group.set_index:4d}: {group.accesses:6d} accesses, "
              f"{group.pressure:3d} distinct lines")
    print("  -> pressure per set collapses to around the associativity.\n")

    print("Inter-bank dispersion of the skewed families "
          "(how often a bank-0 conflict persists elsewhere):")
    for family in (SkewedXorFamily(2048, 4),
                   SkewedPrimeDisplacementFamily(2048, 4)):
        report = inter_bank_dispersion(family, n_samples=30000)
        print(f"  {family.name:10s} {report.same_set_pair_rate:.3%} of "
              f"{report.pairs_tested} colliding pairs")
    print("  -> well under 5%: conflicting blocks almost always get a "
          "second chance in another bank (Section 3.3).")


if __name__ == "__main__":
    main()
